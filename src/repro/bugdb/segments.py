"""LSM-style segmented text index for million-report archives.

:class:`~repro.bugdb.textindex.TextIndex` is a single in-memory
inverted index: fine at 44k messages, hopeless at 1M+.  This module
keeps the same query semantics but stores postings in **immutable
on-disk segments**, LSM-tree style:

* Each parse shard writes one *write-ahead segment* — sorted
  ``token\\tid,id,...`` lines over the shard's **local** doc ids
  (0..n-1) — without knowing how many records earlier shards hold.
* The **manifest** (``manifest.json``, replaced atomically) assigns
  every segment a ``doc_base``; a segment's global ids are
  ``doc_base + local_id``.  Staged segments are committed in shard
  order with cumulative bases, so the segmented index is
  query-identical to indexing the whole archive serially.
* Every segment carries a ``.toc`` sidecar sampling every
  :data:`TOC_SAMPLE_EVERY`-th token with its byte offset; queries
  binary-search the samples, ``seek`` into the segment, and scan a
  bounded run of lines.  Memory per query is O(matched postings), not
  O(index).
* **Size-tiered compaction** merges segments whose sizes fall in the
  same power-of-two tier once a tier holds ``tier_fanout`` of them
  (or everything, with ``full=True``).  Merging is a streaming k-way
  merge over segment files — bounded memory at any corpus size — and
  the merged segment keeps global ids stable by adopting the smallest
  constituent ``doc_base``.

A small in-memory *memtable* (a plain :class:`TextIndex`) absorbs
incremental :meth:`SegmentedTextIndex.add` calls and is flushed to a
segment explicitly or when it exceeds ``memtable_limit`` documents.
"""

from __future__ import annotations

import bisect
import heapq
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Iterator

from .textindex import TextIndex

MANIFEST_NAME = "manifest.json"
MANIFEST_VERSION = 1
SEGMENT_SUFFIX = ".seg"
TOC_SUFFIX = ".toc"
TOC_SAMPLE_EVERY = 128
DEFAULT_MEMTABLE_LIMIT = 50_000
DEFAULT_TIER_FANOUT = 4


class SegmentError(RuntimeError):
    """A segment store is missing, corrupt, or inconsistently staged."""


@dataclass(frozen=True)
class SegmentInfo:
    """One immutable segment as recorded in the manifest."""

    name: str
    doc_base: int
    doc_count: int
    token_count: int
    size_bytes: int

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "doc_base": self.doc_base,
            "doc_count": self.doc_count,
            "token_count": self.token_count,
            "size_bytes": self.size_bytes,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SegmentInfo":
        return cls(
            name=str(payload["name"]),
            doc_base=int(payload["doc_base"]),
            doc_count=int(payload["doc_count"]),
            token_count=int(payload["token_count"]),
            size_bytes=int(payload["size_bytes"]),
        )


@dataclass(frozen=True)
class CompactionStats:
    """What one :meth:`SegmentedTextIndex.compact` call did."""

    merged_segments: int
    produced_segments: int
    bytes_read: int
    bytes_written: int

    @property
    def compacted(self) -> bool:
        return self.merged_segments > 0


def _write_segment_file(
    path: Path, postings: Iterable[tuple[str, list[int]]]
) -> tuple[int, int, list[tuple[str, int]]]:
    """Write sorted postings lines; return (tokens, bytes, toc samples)."""
    samples: list[tuple[str, int]] = []
    tokens = 0
    offset = 0
    with open(path, "wb") as handle:
        for token, doc_ids in postings:
            if tokens % TOC_SAMPLE_EVERY == 0:
                samples.append((token, offset))
            line = ("%s\t%s\n" % (token, ",".join(map(str, doc_ids)))).encode("utf-8")
            handle.write(line)
            offset += len(line)
            tokens += 1
    return tokens, offset, samples


def _write_toc(path: Path, *, doc_count: int, token_count: int, size_bytes: int, samples: list[tuple[str, int]]) -> None:
    payload = {
        "doc_count": doc_count,
        "token_count": token_count,
        "size_bytes": size_bytes,
        "samples": [[token, offset] for token, offset in samples],
    }
    path.write_text(json.dumps(payload), encoding="utf-8")


def _parse_line(line: bytes) -> tuple[str, list[int]]:
    token, _, ids = line.rstrip(b"\n").partition(b"\t")
    return token.decode("utf-8"), [int(part) for part in ids.split(b",")] if ids else []


def write_segment(
    directory: Path, name: str, postings: Iterable[tuple[str, list[int]]], *, doc_count: int
) -> SegmentInfo:
    """Write one immutable segment (+ TOC sidecar) under ``directory``.

    ``postings`` must yield ``(token, sorted local doc ids)`` in
    ascending token order — exactly what
    :meth:`TextIndex.iter_postings` produces.  The segment is *staged*:
    it exists on disk but is not in any manifest until a
    :class:`SegmentedTextIndex` commits it with a ``doc_base``.
    """
    seg_path = directory / (name + SEGMENT_SUFFIX)
    token_count, size_bytes, samples = _write_segment_file(seg_path, postings)
    _write_toc(
        directory / (name + TOC_SUFFIX),
        doc_count=doc_count,
        token_count=token_count,
        size_bytes=size_bytes,
        samples=samples,
    )
    return SegmentInfo(
        name=name,
        doc_base=0,
        doc_count=doc_count,
        token_count=token_count,
        size_bytes=size_bytes,
    )


def segment_from_index(
    directory: Path, name: str, index: TextIndex[int], *, doc_count: int | None = None
) -> SegmentInfo:
    """Stage a segment from an in-memory :class:`TextIndex`.

    This is the per-shard write-ahead path: a parse worker indexes its
    byte-range under local positional ids, dumps the index here, and
    reports only the segment name + record count back to the parent.
    """
    count = index.document_count if doc_count is None else doc_count
    return write_segment(directory, name, index.iter_postings(), doc_count=count)


class _SegmentReader:
    """Seek + scan access to one immutable segment file."""

    def __init__(self, directory: Path, info: SegmentInfo):
        self.info = info
        self._path = directory / (info.name + SEGMENT_SUFFIX)
        toc_path = directory / (info.name + TOC_SUFFIX)
        try:
            payload = json.loads(toc_path.read_text(encoding="utf-8"))
        except FileNotFoundError as error:
            raise SegmentError(f"segment {info.name} has no TOC sidecar") from error
        self._sample_tokens = [str(token) for token, _ in payload["samples"]]
        self._sample_offsets = [int(offset) for _, offset in payload["samples"]]

    def _scan_from(self, token: str) -> Iterator[tuple[str, list[int]]]:
        """Yield (token, ids) lines starting at the sampled block for ``token``."""
        if not self._sample_tokens:
            return
        slot = bisect.bisect_right(self._sample_tokens, token) - 1
        offset = self._sample_offsets[slot] if slot >= 0 else 0
        with open(self._path, "rb") as handle:
            handle.seek(offset)
            for line in handle:
                yield _parse_line(line)

    def lookup(self, token: str) -> list[int]:
        """Local doc ids containing the exact token."""
        for found, ids in self._scan_from(token):
            if found == token:
                return ids
            if found > token:
                break
        return []

    def lookup_prefix(self, prefix: str) -> set[int]:
        """Local doc ids containing any token starting with ``prefix``."""
        matched: set[int] = set()
        for found, ids in self._scan_from(prefix):
            if found < prefix:
                continue
            if not found.startswith(prefix):
                break
            matched.update(ids)
        return matched

    def iter_postings(self) -> Iterator[tuple[str, list[int]]]:
        with open(self._path, "rb") as handle:
            for line in handle:
                yield _parse_line(line)


class SegmentedTextIndex:
    """Query-equivalent to :class:`TextIndex`, backed by disk segments.

    Doc ids are non-negative ints.  Query results are global ids —
    identical to what a monolithic ``TextIndex`` over the same
    ``(global_id, text)`` stream would return.
    """

    def __init__(
        self,
        root: str | os.PathLike,
        *,
        memtable_limit: int = DEFAULT_MEMTABLE_LIMIT,
    ):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._memtable_limit = memtable_limit
        self._memtable: TextIndex[int] = TextIndex()
        self._memtable_base = 0
        self._readers: dict[str, _SegmentReader] = {}
        self._segments: list[SegmentInfo] = []
        self._next_id = 1
        self._load_manifest()
        self._memtable_base = self.document_count

    # ------------------------------------------------------------------
    # manifest

    @property
    def _manifest_path(self) -> Path:
        return self.root / MANIFEST_NAME

    def _load_manifest(self) -> None:
        try:
            payload = json.loads(self._manifest_path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            self._segments = []
            return
        if payload.get("version") != MANIFEST_VERSION:
            raise SegmentError(
                f"manifest version {payload.get('version')!r} unsupported"
            )
        self._segments = [SegmentInfo.from_dict(item) for item in payload["segments"]]
        self._next_id = int(payload.get("next_segment_id", len(self._segments) + 1))

    def _store_manifest(self) -> None:
        payload = {
            "version": MANIFEST_VERSION,
            "next_segment_id": self._next_id,
            "segments": [info.to_dict() for info in self._segments],
        }
        tmp = self._manifest_path.with_suffix(".tmp")
        tmp.write_text(json.dumps(payload, indent=1), encoding="utf-8")
        os.replace(tmp, self._manifest_path)

    def _reader(self, info: SegmentInfo) -> _SegmentReader:
        reader = self._readers.get(info.name)
        if reader is None:
            reader = _SegmentReader(self.root, info)
            self._readers[info.name] = reader
        return reader

    def next_segment_name(self) -> str:
        """Mint a fresh segment name from the persistent id counter."""
        name = f"seg-{self._next_id:06d}"
        self._next_id += 1
        return name

    def reserve_segment_names(self, count: int, *, prefix: str = "wal") -> list[str]:
        """Mint ``count`` fresh staged-segment names in one block.

        Names come from the same persistent id counter as
        :meth:`next_segment_name`, so staged write-ahead segments can
        never collide with segments already committed to the manifest —
        re-running a parse against an existing index *extends* it
        instead of silently clobbering earlier runs' postings.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        names = [f"{prefix}-{self._next_id + offset:06d}" for offset in range(count)]
        self._next_id += count
        return names

    # ------------------------------------------------------------------
    # write path

    @property
    def document_count(self) -> int:
        """Distinct documents across segments + memtable."""
        return (
            sum(info.doc_count for info in self._segments)
            + self._memtable.document_count
        )

    @property
    def segment_count(self) -> int:
        return len(self._segments)

    @property
    def segments(self) -> list[SegmentInfo]:
        return list(self._segments)

    def add(self, text: str) -> int:
        """Index one document under the next global id; return that id.

        The document lands in the memtable; once ``memtable_limit``
        documents accumulate the memtable is flushed to a segment.
        """
        local = self._memtable.document_count
        self._memtable.add(local, text)
        global_id = self._memtable_base + local
        if self._memtable.document_count >= self._memtable_limit:
            self.flush()
        return global_id

    def flush(self) -> SegmentInfo | None:
        """Flush the memtable to an immutable segment (no-op if empty)."""
        if self._memtable.document_count == 0:
            return None
        name = self.next_segment_name()
        info = segment_from_index(self.root, name, self._memtable)
        # Clear the memtable before committing: commit_segments refuses
        # to run with memtable documents (their global ids would shift).
        # The staged segment's doc_base lands exactly at the old
        # memtable base, so every id handed out by add() is preserved.
        self._memtable = TextIndex()
        return self.commit_segments([info.name])[0]

    def commit_segments(self, names: list[str]) -> list[SegmentInfo]:
        """Attach staged segments to the manifest **in the given order**.

        Each segment's ``doc_base`` is assigned cumulatively — this is
        the point where per-shard local ids become a single global id
        space.  The commit is atomic: one manifest replace covers all
        names.

        Raises :class:`SegmentError` if the memtable holds documents
        (committing would shift the global ids :meth:`add` already
        returned — call :meth:`flush` first) or if a name is already in
        the manifest (committing it again would re-read the same file
        under two doc bases).
        """
        if self._memtable.document_count:
            raise SegmentError(
                "cannot commit segments while the memtable holds "
                f"{self._memtable.document_count} document(s); flush() first"
            )
        existing = {info.name for info in self._segments}
        for name in names:
            if name in existing:
                raise SegmentError(f"segment {name} is already committed")
            existing.add(name)
        committed: list[SegmentInfo] = []
        base = sum(info.doc_count for info in self._segments)
        for name in names:
            toc_path = self.root / (name + TOC_SUFFIX)
            try:
                payload = json.loads(toc_path.read_text(encoding="utf-8"))
            except FileNotFoundError as error:
                raise SegmentError(f"staged segment {name} not found") from error
            info = SegmentInfo(
                name=name,
                doc_base=base,
                doc_count=int(payload["doc_count"]),
                token_count=int(payload["token_count"]),
                size_bytes=int(payload["size_bytes"]),
            )
            committed.append(info)
            base += info.doc_count
        self._segments.extend(committed)
        self._next_id = max(
            self._next_id,
            1 + max(
                (int(info.name.rsplit("-", 1)[-1])
                 for info in self._segments
                 if info.name.rsplit("-", 1)[-1].isdigit()),
                default=0,
            ),
        )
        self._store_manifest()
        self._memtable_base = self.document_count
        return committed

    # ------------------------------------------------------------------
    # query path (mirrors TextIndex)

    def lookup(self, token: str) -> set[int]:
        """Global doc ids containing the exact token."""
        token = token.lower()
        matched: set[int] = set()
        for info in self._segments:
            reader = self._reader(info)
            for local in reader.lookup(token):
                matched.add(info.doc_base + local)
        for local in self._memtable.lookup(token):
            matched.add(self._memtable_base + local)
        return matched

    def lookup_prefix(self, prefix: str) -> set[int]:
        """Global doc ids containing any token starting with ``prefix``."""
        prefix = prefix.lower()
        matched: set[int] = set()
        for info in self._segments:
            reader = self._reader(info)
            for local in reader.lookup_prefix(prefix):
                matched.add(info.doc_base + local)
        for local in self._memtable.lookup_prefix(prefix):
            matched.add(self._memtable_base + local)
        return matched

    def search_any(self, keywords: Iterable[str], *, prefix: bool = True) -> set[int]:
        """Documents matching any keyword (prefix semantics by default)."""
        matched: set[int] = set()
        for keyword in keywords:
            matched |= self.lookup_prefix(keyword) if prefix else self.lookup(keyword)
        return matched

    def search_all(self, keywords: Iterable[str], *, prefix: bool = True) -> set[int]:
        """Documents matching every keyword."""
        result: set[int] | None = None
        for keyword in keywords:
            hits = self.lookup_prefix(keyword) if prefix else self.lookup(keyword)
            result = hits if result is None else (result & hits)
            if not result:
                return set()
        return result or set()

    def iter_postings(self) -> Iterator[tuple[str, list[int]]]:
        """Global ``(token, sorted doc ids)`` pairs, k-way merged."""

        def rebased(
            postings: Iterable[tuple[str, list[int]]], base: int
        ) -> Iterator[tuple[str, list[int]]]:
            for token, ids in postings:
                yield token, [base + local for local in ids]

        sources: list[Iterator[tuple[str, list[int]]]] = []
        for info in self._segments:
            sources.append(
                rebased(self._reader(info).iter_postings(), info.doc_base)
            )
        if self._memtable.document_count:
            sources.append(
                rebased(self._memtable.iter_postings(), self._memtable_base)
            )
        merged = heapq.merge(*sources, key=lambda item: item[0])
        current: str | None = None
        bucket: list[int] = []
        for token, ids in merged:
            if token != current:
                if current is not None:
                    yield current, sorted(set(bucket))
                current, bucket = token, []
            bucket.extend(ids)
        if current is not None:
            yield current, sorted(set(bucket))

    # ------------------------------------------------------------------
    # compaction

    def _merge_to_segment(self, group: list[SegmentInfo]) -> tuple[SegmentInfo, int]:
        """K-way merge ``group`` into one staged segment; return (info, bytes read)."""
        new_base = min(info.doc_base for info in group)

        def rebased(info: SegmentInfo) -> Iterator[tuple[str, list[int]]]:
            shift = info.doc_base - new_base
            for token, ids in self._reader(info).iter_postings():
                yield token, [shift + local for local in ids]

        merged = heapq.merge(
            *(rebased(info) for info in group), key=lambda item: item[0]
        )

        def coalesced() -> Iterator[tuple[str, list[int]]]:
            current: str | None = None
            bucket: list[int] = []
            for token, ids in merged:
                if token != current:
                    if current is not None:
                        yield current, sorted(set(bucket))
                    current, bucket = token, []
                bucket.extend(ids)
            if current is not None:
                yield current, sorted(set(bucket))

        name = self.next_segment_name()
        doc_count = sum(info.doc_count for info in group)
        staged = write_segment(self.root, name, coalesced(), doc_count=doc_count)
        info = SegmentInfo(
            name=staged.name,
            doc_base=new_base,
            doc_count=doc_count,
            token_count=staged.token_count,
            size_bytes=staged.size_bytes,
        )
        return info, sum(item.size_bytes for item in group)

    def _replace_segments(self, group: list[SegmentInfo], merged: SegmentInfo) -> None:
        names = {info.name for info in group}
        remaining = [info for info in self._segments if info.name not in names]
        remaining.append(merged)
        remaining.sort(key=lambda info: info.doc_base)
        self._segments = remaining
        self._store_manifest()
        for info in group:
            self._readers.pop(info.name, None)
            for suffix in (SEGMENT_SUFFIX, TOC_SUFFIX):
                try:
                    os.unlink(self.root / (info.name + suffix))
                except FileNotFoundError:
                    pass

    def compaction_candidates(
        self, *, tier_fanout: int = DEFAULT_TIER_FANOUT
    ) -> list[list[SegmentInfo]]:
        """Size tiers holding >= ``tier_fanout`` segments (smallest first)."""
        tiers: dict[int, list[SegmentInfo]] = {}
        for info in self._segments:
            tiers.setdefault(max(info.size_bytes, 1).bit_length(), []).append(info)
        return [
            group
            for _, group in sorted(tiers.items())
            if len(group) >= tier_fanout
        ]

    def compact(
        self, *, full: bool = False, tier_fanout: int = DEFAULT_TIER_FANOUT
    ) -> CompactionStats:
        """Merge segments per the size-tiered policy (or all, if ``full``).

        Runs the policy to a fixed point: merging a tier produces a
        larger segment that may itself complete a higher tier.  The
        memtable is flushed first so compaction covers every document.
        """
        self.flush()
        merged_total = 0
        produced = 0
        bytes_read = 0
        bytes_written = 0
        if full:
            if len(self._segments) > 1:
                group = list(self._segments)
                info, read = self._merge_to_segment(group)
                self._replace_segments(group, info)
                merged_total += len(group)
                produced += 1
                bytes_read += read
                bytes_written += info.size_bytes
        else:
            while True:
                candidates = self.compaction_candidates(tier_fanout=tier_fanout)
                if not candidates:
                    break
                group = candidates[0]
                info, read = self._merge_to_segment(group)
                self._replace_segments(group, info)
                merged_total += len(group)
                produced += 1
                bytes_read += read
                bytes_written += info.size_bytes
        return CompactionStats(
            merged_segments=merged_total,
            produced_segments=produced,
            bytes_read=bytes_read,
            bytes_written=bytes_written,
        )

    # ------------------------------------------------------------------
    # status

    def status(self) -> dict:
        """Summary for ``repro index status`` (JSON-safe)."""
        return {
            "root": str(self.root),
            "documents": self.document_count,
            "segments": [info.to_dict() for info in self._segments],
            "segment_count": len(self._segments),
            "size_bytes": sum(info.size_bytes for info in self._segments),
            "memtable_documents": self._memtable.document_count,
            "compaction_candidates": [
                [info.name for info in group]
                for group in self.compaction_candidates()
            ],
        }


def segmented_equal_to_monolithic(
    segmented: SegmentedTextIndex,
    monolithic: TextIndex[int],
    *,
    probes: Iterable[str],
    prefix: bool = True,
    on_mismatch: Callable[[str], None] | None = None,
) -> bool:
    """True when every probe keyword returns identical doc-id sets.

    The equivalence check used by tests and the scale benchmark: the
    segmented index must answer exactly like the monolithic one for
    every probe (prefix semantics by default, matching the mining
    keyword filter).
    """
    equal = True
    for keyword in probes:
        seg_hits = (
            segmented.lookup_prefix(keyword) if prefix else segmented.lookup(keyword)
        )
        mono_hits = (
            monolithic.lookup_prefix(keyword) if prefix else monolithic.lookup(keyword)
        )
        if seg_hits != mono_hits:
            equal = False
            if on_mismatch is not None:
                on_mismatch(keyword)
    return equal
