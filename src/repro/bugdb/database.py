"""In-memory indexed bug database.

:class:`BugDatabase` holds the reports of one or more archives and keeps
secondary indexes (by application, component, version, severity) so the
mining pipeline's filters don't rescan the whole archive for each
predicate.  The geocrawler MySQL archive alone contains ~44,000 messages,
so index-backed candidate narrowing matters.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Iterable, Iterator

from repro.bugdb.enums import Application, Severity
from repro.bugdb.model import BugReport
from repro.errors import CorpusError


class BugDatabase:
    """An indexed, in-memory collection of :class:`BugReport` records.

    Reports are keyed by ``(application, report_id)``; inserting a second
    report with the same key raises :class:`~repro.errors.CorpusError`.
    """

    def __init__(self, reports: Iterable[BugReport] = ()):
        self._reports: dict[tuple[Application, str], BugReport] = {}
        self._by_application: dict[Application, list[BugReport]] = defaultdict(list)
        self._by_component: dict[tuple[Application, str], list[BugReport]] = defaultdict(list)
        self._by_version: dict[tuple[Application, str], list[BugReport]] = defaultdict(list)
        self._by_severity: dict[Severity, list[BugReport]] = defaultdict(list)
        for report in reports:
            self.add(report)

    def __len__(self) -> int:
        return len(self._reports)

    def __iter__(self) -> Iterator[BugReport]:
        return iter(self._reports.values())

    def __contains__(self, key: tuple[Application, str]) -> bool:
        return key in self._reports

    def add(self, report: BugReport) -> None:
        """Insert a report, updating all indexes.

        Raises:
            CorpusError: if a report with the same (application, report_id)
                already exists.
        """
        key = (report.application, report.report_id)
        if key in self._reports:
            raise CorpusError(
                f"duplicate report id {report.report_id!r} for {report.application.value}"
            )
        self._reports[key] = report
        self._by_application[report.application].append(report)
        self._by_component[(report.application, report.component)].append(report)
        self._by_version[(report.application, report.version)].append(report)
        self._by_severity[report.severity].append(report)

    def add_all(self, reports: Iterable[BugReport]) -> None:
        """Insert many reports."""
        for report in reports:
            self.add(report)

    def get(self, application: Application, report_id: str) -> BugReport:
        """Fetch one report by key.

        Raises:
            KeyError: if no such report exists.
        """
        return self._reports[(application, report_id)]

    def for_application(self, application: Application) -> list[BugReport]:
        """All reports for one application, in insertion order."""
        return list(self._by_application.get(application, ()))

    def for_component(self, application: Application, component: str) -> list[BugReport]:
        """All reports against one component."""
        return list(self._by_component.get((application, component), ()))

    def for_version(self, application: Application, version: str) -> list[BugReport]:
        """All reports against one release."""
        return list(self._by_version.get((application, version), ()))

    def at_least_severity(self, severity: Severity) -> list[BugReport]:
        """All reports at or above a severity level."""
        matched: list[BugReport] = []
        for level, reports in self._by_severity.items():
            if level >= severity:
                matched.extend(reports)
        return matched

    def select(self, predicate: Callable[[BugReport], bool]) -> list[BugReport]:
        """All reports satisfying an arbitrary predicate (full scan)."""
        return [report for report in self if predicate(report)]

    def applications(self) -> list[Application]:
        """Applications present in the database."""
        return [app for app, reports in self._by_application.items() if reports]

    def versions(self, application: Application) -> list[str]:
        """Distinct versions reported against, for one application."""
        seen: dict[str, None] = {}
        for report in self._by_application.get(application, ()):
            seen.setdefault(report.version, None)
        return list(seen)
