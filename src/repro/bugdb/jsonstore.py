"""JSON persistence for bug databases.

Archives parsed from the 1999-style formats (or generated corpora) can
be saved to a single JSON file and reloaded without re-parsing.  The
format is versioned; structured trigger evidence round-trips, unlike the
raw archive formats (which deliberately drop it).
"""

from __future__ import annotations

import datetime as _dt
import json
from pathlib import Path
from typing import Any

from repro.bugdb.database import BugDatabase
from repro.bugdb.enums import (
    Application,
    Resolution,
    Severity,
    Status,
    Symptom,
    TriggerKind,
)
from repro.bugdb.model import BugReport, Comment, TriggerEvidence
from repro.errors import ParseError

FORMAT_VERSION = 1


def report_to_dict(report: BugReport) -> dict[str, Any]:
    """Serialize one report to plain JSON-compatible data."""
    return {
        "report_id": report.report_id,
        "application": report.application.value,
        "component": report.component,
        "version": report.version,
        "date": report.date.isoformat(),
        "reporter": report.reporter,
        "synopsis": report.synopsis,
        "severity": report.severity.name.lower(),
        "status": report.status.value,
        "resolution": report.resolution.value,
        "symptom": report.symptom.value if report.symptom else None,
        "description": report.description,
        "how_to_repeat": report.how_to_repeat,
        "environment": report.environment,
        "comments": [
            {"author": c.author, "date": c.date.isoformat(), "text": c.text}
            for c in report.comments
        ],
        "fix_summary": report.fix_summary,
        "duplicate_of": report.duplicate_of,
        "is_production_version": report.is_production_version,
        "evidence": (
            {
                "trigger": report.evidence.trigger.value,
                "reproducible": report.evidence.reproducible_on_developer_machine,
                "workload_dependent_timing": report.evidence.workload_dependent_timing,
                "resource": report.evidence.resource,
                "notes": report.evidence.notes,
            }
            if report.evidence is not None
            else None
        ),
    }


def report_from_dict(data: dict[str, Any]) -> BugReport:
    """Deserialize one report.

    Raises:
        ParseError: on missing fields or bad enum values.
    """
    try:
        evidence = None
        if data.get("evidence") is not None:
            raw = data["evidence"]
            evidence = TriggerEvidence(
                trigger=TriggerKind(raw["trigger"]),
                reproducible_on_developer_machine=raw["reproducible"],
                workload_dependent_timing=raw["workload_dependent_timing"],
                resource=raw.get("resource", ""),
                notes=raw.get("notes", ""),
            )
        return BugReport(
            report_id=data["report_id"],
            application=Application(data["application"]),
            component=data["component"],
            version=data["version"],
            date=_dt.date.fromisoformat(data["date"]),
            reporter=data["reporter"],
            synopsis=data["synopsis"],
            severity=Severity[data["severity"].upper()],
            status=Status(data["status"]),
            resolution=Resolution(data["resolution"]),
            symptom=Symptom(data["symptom"]) if data.get("symptom") else None,
            description=data.get("description", ""),
            how_to_repeat=data.get("how_to_repeat", ""),
            environment=data.get("environment", ""),
            comments=[
                Comment(
                    author=c["author"],
                    date=_dt.date.fromisoformat(c["date"]),
                    text=c["text"],
                )
                for c in data.get("comments", [])
            ],
            fix_summary=data.get("fix_summary", ""),
            duplicate_of=data.get("duplicate_of"),
            is_production_version=data.get("is_production_version", True),
            evidence=evidence,
        )
    except (KeyError, ValueError) as exc:
        raise ParseError(f"bad report record: {exc}", source="jsonstore") from exc


def dump_database(db: BugDatabase, path: str | Path) -> None:
    """Write a database to a JSON file."""
    payload = {
        "format_version": FORMAT_VERSION,
        "reports": [report_to_dict(report) for report in db],
    }
    Path(path).write_text(json.dumps(payload, indent=1), encoding="utf-8")


def load_database(path: str | Path) -> BugDatabase:
    """Read a database from a JSON file.

    Raises:
        ParseError: on version mismatch or malformed records.
    """
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ParseError(f"invalid JSON: {exc}", source=str(path)) from exc
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise ParseError(
            f"unsupported format version {version!r} (expected {FORMAT_VERSION})",
            source=str(path),
        )
    return BugDatabase(report_from_dict(record) for record in payload.get("reports", []))
