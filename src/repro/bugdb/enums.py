"""Enumerations shared across the bug-report data model.

The values mirror the vocabulary of the paper and of late-1990s bug
trackers: GNATS severities (critical / serious / non-critical), report
lifecycle states, failure symptoms, and the paper's three-way fault
taxonomy with the environmental trigger kinds it itemises in Section 5.
"""

from __future__ import annotations

import enum


class Application(enum.Enum):
    """The three open-source applications studied by the paper."""

    APACHE = "apache"
    GNOME = "gnome"
    MYSQL = "mysql"

    @property
    def display_name(self) -> str:
        """Human-readable name as used in the paper's tables."""
        return {"apache": "Apache", "gnome": "GNOME", "mysql": "MySQL"}[self.value]


class Severity(enum.IntEnum):
    """Report severity, ordered so comparisons mean "at least as severe".

    The paper keeps only reports "categorized as severe or critical" on
    production versions (Section 4).
    """

    ENHANCEMENT = 0
    NON_CRITICAL = 1
    SERIOUS = 2
    CRITICAL = 3

    @classmethod
    def from_text(cls, text: str) -> "Severity":
        """Parse a severity string as found in raw archives (case-insensitive)."""
        normalized = text.strip().lower().replace("-", "_")
        aliases = {
            "enhancement": cls.ENHANCEMENT,
            "wishlist": cls.ENHANCEMENT,
            "non_critical": cls.NON_CRITICAL,
            "normal": cls.NON_CRITICAL,
            "minor": cls.NON_CRITICAL,
            "serious": cls.SERIOUS,
            "severe": cls.SERIOUS,
            "important": cls.SERIOUS,
            "grave": cls.CRITICAL,
            "critical": cls.CRITICAL,
        }
        try:
            return aliases[normalized]
        except KeyError:
            raise ValueError(f"unknown severity: {text!r}") from None


class Status(enum.Enum):
    """Lifecycle state of a bug report."""

    OPEN = "open"
    ANALYZED = "analyzed"
    FEEDBACK = "feedback"
    SUSPENDED = "suspended"
    CLOSED = "closed"


class Resolution(enum.Enum):
    """How a closed report was resolved."""

    UNRESOLVED = "unresolved"
    FIXED = "fixed"
    DUPLICATE = "duplicate"
    WORKS_FOR_ME = "works-for-me"
    WONT_FIX = "wont-fix"
    INVALID = "invalid"


class Symptom(enum.Enum):
    """High-impact failure symptom categories (Section 4).

    The paper concentrates on faults "that cause the software to crash,
    return an error condition, cause security problems, or stop
    responding".
    """

    CRASH = "crash"
    HANG = "hang"
    ERROR_RETURN = "error-return"
    SECURITY = "security"
    RESOURCE_LEAK = "resource-leak"
    DATA_CORRUPTION = "data-corruption"

    @property
    def is_high_impact(self) -> bool:
        """Whether this symptom is in the paper's high-impact subset."""
        return True


class FaultClass(enum.Enum):
    """The paper's three-way fault taxonomy (Section 3)."""

    ENV_INDEPENDENT = "environment-independent"
    ENV_DEP_NONTRANSIENT = "environment-dependent-nontransient"
    ENV_DEP_TRANSIENT = "environment-dependent-transient"

    @property
    def is_deterministic(self) -> bool:
        """Environment-independent faults are completely deterministic."""
        return self is FaultClass.ENV_INDEPENDENT

    @property
    def generic_recovery_likely(self) -> bool:
        """Whether application-generic recovery is likely to survive the fault."""
        return self is FaultClass.ENV_DEP_TRANSIENT


class TriggerKind(enum.Enum):
    """Environmental trigger categories itemised in Section 5.

    Each environment-dependent fault in the paper is triggered by one of
    these operating-environment conditions.  ``NONE`` marks faults whose
    trigger lies entirely inside the application (environment-independent).
    """

    NONE = "none"
    # --- conditions that tend to persist on retry (nontransient) ---
    RESOURCE_LEAK = "resource-leak"
    FILE_DESCRIPTOR_EXHAUSTION = "file-descriptor-exhaustion"
    DISK_FULL = "disk-full"
    FILE_SIZE_LIMIT = "file-size-limit"
    DISK_CACHE_FULL = "disk-cache-full"
    NETWORK_RESOURCE_EXHAUSTION = "network-resource-exhaustion"
    HARDWARE_REMOVAL = "hardware-removal"
    HOST_CONFIG_CHANGE = "host-config-change"
    DNS_MISCONFIGURED = "dns-misconfigured"
    CORRUPT_EXTERNAL_STATE = "corrupt-external-state"
    # --- conditions that tend to clear on retry (transient) ---
    RACE_CONDITION = "race-condition"
    SIGNAL_TIMING = "signal-timing"
    DNS_ERROR = "dns-error"
    DNS_SLOW = "dns-slow"
    NETWORK_SLOW = "network-slow"
    PROCESS_TABLE_FULL = "process-table-full"
    PORT_IN_USE = "port-in-use"
    WORKLOAD_TIMING = "workload-timing"
    ENTROPY_EXHAUSTION = "entropy-exhaustion"
    UNKNOWN_TRANSIENT = "unknown-transient"
