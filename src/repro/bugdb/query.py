"""A small composable query layer over :class:`~repro.bugdb.database.BugDatabase`.

Queries are immutable builders: each refinement returns a new
:class:`Query`.  Evaluation picks the most selective index available
(application, then version/component/severity) and applies the remaining
predicates as a scan over the candidate list.  This mirrors how the
paper's authors narrowed thousands of raw reports with successive filters.
"""

from __future__ import annotations

import dataclasses
import datetime as _dt
from typing import Callable, Iterable, Sequence

from repro.bugdb.database import BugDatabase
from repro.bugdb.enums import Application, Severity, Status, Symptom
from repro.bugdb.model import BugReport

Predicate = Callable[[BugReport], bool]


@dataclasses.dataclass(frozen=True)
class Query:
    """An immutable query over a bug database.

    Build with the ``where_*`` refinements and evaluate with
    :meth:`run`.  Example::

        critical = (
            Query()
            .where_application(Application.APACHE)
            .where_min_severity(Severity.SERIOUS)
            .where_production_only()
            .run(db)
        )
    """

    application: Application | None = None
    min_severity: Severity | None = None
    statuses: tuple[Status, ...] = ()
    symptoms: tuple[Symptom, ...] = ()
    components: tuple[str, ...] = ()
    versions: tuple[str, ...] = ()
    keywords: tuple[str, ...] = ()
    production_only: bool = False
    exclude_duplicates: bool = False
    date_from: _dt.date | None = None
    date_to: _dt.date | None = None
    extra_predicates: tuple[Predicate, ...] = ()

    # ------------------------------------------------------------------ #
    # refinements
    # ------------------------------------------------------------------ #

    def where_application(self, application: Application) -> "Query":
        """Restrict to one application's archive."""
        return dataclasses.replace(self, application=application)

    def where_min_severity(self, severity: Severity) -> "Query":
        """Restrict to reports at or above a severity."""
        return dataclasses.replace(self, min_severity=severity)

    def where_status(self, *statuses: Status) -> "Query":
        """Restrict to reports in any of the given lifecycle states."""
        return dataclasses.replace(self, statuses=tuple(statuses))

    def where_symptom(self, *symptoms: Symptom) -> "Query":
        """Restrict to reports with any of the given high-impact symptoms."""
        return dataclasses.replace(self, symptoms=tuple(symptoms))

    def where_component(self, *components: str) -> "Query":
        """Restrict to reports against any of the given components."""
        return dataclasses.replace(self, components=tuple(components))

    def where_version(self, *versions: str) -> "Query":
        """Restrict to reports against any of the given releases."""
        return dataclasses.replace(self, versions=tuple(versions))

    def where_keywords(self, *keywords: str) -> "Query":
        """Restrict to reports whose text contains any keyword."""
        return dataclasses.replace(self, keywords=tuple(keywords))

    def where_production_only(self) -> "Query":
        """Restrict to reports against production (stable) versions."""
        return dataclasses.replace(self, production_only=True)

    def where_not_duplicate(self) -> "Query":
        """Exclude reports marked as duplicates of another report."""
        return dataclasses.replace(self, exclude_duplicates=True)

    def where_date_between(self, date_from: _dt.date, date_to: _dt.date) -> "Query":
        """Restrict to reports submitted in [date_from, date_to] inclusive."""
        return dataclasses.replace(self, date_from=date_from, date_to=date_to)

    def where(self, predicate: Predicate) -> "Query":
        """Attach an arbitrary extra predicate."""
        return dataclasses.replace(
            self, extra_predicates=self.extra_predicates + (predicate,)
        )

    # ------------------------------------------------------------------ #
    # evaluation
    # ------------------------------------------------------------------ #

    def run(self, db: BugDatabase) -> list[BugReport]:
        """Evaluate against a database, using indexes where possible."""
        candidates = self._candidates(db)
        return [report for report in candidates if self._matches(report)]

    def count(self, db: BugDatabase) -> int:
        """Number of matching reports."""
        return len(self.run(db))

    def _candidates(self, db: BugDatabase) -> Sequence[BugReport] | Iterable[BugReport]:
        if self.application is not None and len(self.versions) == 1:
            return db.for_version(self.application, self.versions[0])
        if self.application is not None and len(self.components) == 1:
            return db.for_component(self.application, self.components[0])
        if self.application is not None:
            return db.for_application(self.application)
        if self.min_severity is not None:
            return db.at_least_severity(self.min_severity)
        return db

    def _matches(self, report: BugReport) -> bool:
        if self.application is not None and report.application is not self.application:
            return False
        if self.min_severity is not None and report.severity < self.min_severity:
            return False
        if self.statuses and report.status not in self.statuses:
            return False
        if self.symptoms and report.symptom not in self.symptoms:
            return False
        if self.components and report.component not in self.components:
            return False
        if self.versions and report.version not in self.versions:
            return False
        if self.production_only and not report.is_production_version:
            return False
        if self.exclude_duplicates and report.is_duplicate:
            return False
        if self.date_from is not None and report.date < self.date_from:
            return False
        if self.date_to is not None and report.date > self.date_to:
            return False
        if self.keywords and not report.matches_keywords(self.keywords):
            return False
        return all(predicate(report) for predicate in self.extra_predicates)
