"""Inverted text index for large archives.

The MySQL archive holds ~44,000 messages; scanning every message body
per keyword query is what the paper's authors effectively did by hand,
but a library should do better.  :class:`TextIndex` builds an inverted
index (token -> document ids) with the same word-boundary semantics as
:class:`~repro.mining.keywords.KeywordMatcher`, supporting prefix
queries so ``crash`` finds ``crashed`` and ``crashes``.
"""

from __future__ import annotations

import bisect
import re
from typing import Generic, Hashable, Iterable, TypeVar

_TOKEN = re.compile(r"[a-z0-9]+")

DocId = TypeVar("DocId", bound=Hashable)


class TextIndex(Generic[DocId]):
    """An inverted index over (doc_id, text) pairs.

    Tokens are lowercased alphanumeric runs; queries match whole tokens
    or token prefixes.
    """

    def __init__(self):
        self._postings: dict[str, set[DocId]] = {}
        self._sorted_tokens: list[str] | None = None
        self._documents = 0

    @property
    def document_count(self) -> int:
        """Number of indexed documents."""
        return self._documents

    @property
    def token_count(self) -> int:
        """Number of distinct tokens."""
        return len(self._postings)

    def add(self, doc_id: DocId, text: str) -> None:
        """Index one document (repeat calls extend the same document)."""
        self._documents += 1
        self._sorted_tokens = None
        for token in set(_TOKEN.findall(text.lower())):
            self._postings.setdefault(token, set()).add(doc_id)

    def add_all(self, documents: Iterable[tuple[DocId, str]]) -> None:
        """Index many (doc_id, text) pairs."""
        for doc_id, text in documents:
            self.add(doc_id, text)

    def merge(self, other: "TextIndex[DocId]") -> None:
        """Fold another index's postings into this one.

        Used to combine per-shard partial indexes built in parallel:
        each shard indexes its documents under globally unique ids, and
        the merged index is identical to indexing every document
        serially.  Document counts add, so callers are responsible for
        keeping id spaces disjoint (shared ids merge into one document's
        posting set but still count twice).
        """
        for token, documents in other._postings.items():
            self._postings.setdefault(token, set()).update(documents)
        self._documents += other._documents
        self._sorted_tokens = None

    def lookup(self, token: str) -> set[DocId]:
        """Documents containing the exact token."""
        return set(self._postings.get(token.lower(), ()))

    def lookup_prefix(self, prefix: str) -> set[DocId]:
        """Documents containing any token starting with ``prefix``."""
        prefix = prefix.lower()
        if self._sorted_tokens is None:
            self._sorted_tokens = sorted(self._postings)
        start = bisect.bisect_left(self._sorted_tokens, prefix)
        matched: set[DocId] = set()
        for index in range(start, len(self._sorted_tokens)):
            token = self._sorted_tokens[index]
            if not token.startswith(prefix):
                break
            matched |= self._postings[token]
        return matched

    def search_any(self, keywords: Iterable[str], *, prefix: bool = True) -> set[DocId]:
        """Documents matching any keyword (prefix semantics by default).

        This mirrors the mining keyword filter: ``search_any(("crash",
        "race"))`` finds documents containing crash/crashed/crashes or
        race/races, but never 'trace' (tokens are whole words).
        """
        matched: set[DocId] = set()
        for keyword in keywords:
            if prefix:
                matched |= self.lookup_prefix(keyword)
            else:
                matched |= self.lookup(keyword)
        return matched

    def search_all(self, keywords: Iterable[str], *, prefix: bool = True) -> set[DocId]:
        """Documents matching every keyword."""
        result: set[DocId] | None = None
        for keyword in keywords:
            hits = self.lookup_prefix(keyword) if prefix else self.lookup(keyword)
            result = hits if result is None else (result & hits)
            if not result:
                return set()
        return result or set()
