"""Inverted text index for large archives.

The MySQL archive holds ~44,000 messages; scanning every message body
per keyword query is what the paper's authors effectively did by hand,
but a library should do better.  :class:`TextIndex` builds an inverted
index (token -> document ids) with the same word-boundary semantics as
:class:`~repro.mining.keywords.KeywordMatcher`, supporting prefix
queries so ``crash`` finds ``crashed`` and ``crashes``.
"""

from __future__ import annotations

import bisect
import re
from typing import Generic, Hashable, Iterable, TypeVar

_TOKEN = re.compile(r"[a-z0-9]+")

DocId = TypeVar("DocId", bound=Hashable)


class TextIndex(Generic[DocId]):
    """An inverted index over (doc_id, text) pairs.

    Tokens are lowercased alphanumeric runs; queries match whole tokens
    or token prefixes.
    """

    def __init__(self):
        self._postings: dict[str, set[DocId]] = {}
        self._sorted_tokens: list[str] | None = None
        self._doc_ids: set[DocId] = set()

    @property
    def document_count(self) -> int:
        """Number of distinct indexed documents."""
        return len(self._doc_ids)

    @property
    def token_count(self) -> int:
        """Number of distinct tokens."""
        return len(self._postings)

    def add(self, doc_id: DocId, text: str) -> None:
        """Index one document (repeat calls extend the same document).

        The sorted-token cache behind prefix queries survives adds that
        introduce no new token; a genuinely new token is inserted into
        the cache in place, so interleaved add/query workloads never
        rebuild the full sorted list.
        """
        self._doc_ids.add(doc_id)
        for token in set(_TOKEN.findall(text.lower())):
            postings = self._postings.get(token)
            if postings is not None:
                postings.add(doc_id)
                continue
            self._postings[token] = {doc_id}
            if self._sorted_tokens is not None:
                bisect.insort(self._sorted_tokens, token)

    def add_all(self, documents: Iterable[tuple[DocId, str]]) -> None:
        """Index many (doc_id, text) pairs."""
        for doc_id, text in documents:
            self.add(doc_id, text)

    def merge(self, other: "TextIndex[DocId]") -> None:
        """Fold another index's postings into this one.

        Used to combine per-shard partial indexes built in parallel:
        each shard indexes its documents under globally unique ids, and
        the merged index is identical to indexing every document
        serially.  Document counts are exact for any id spaces: a doc id
        present on both sides merges into one document (its postings
        union), never counting twice.
        """
        new_tokens = False
        for token, documents in other._postings.items():
            postings = self._postings.get(token)
            if postings is not None:
                postings.update(documents)
            else:
                self._postings[token] = set(documents)
                new_tokens = True
        self._doc_ids |= other._doc_ids
        if new_tokens:
            self._sorted_tokens = None

    def iter_postings(self) -> Iterable[tuple[str, list[DocId]]]:
        """``(token, sorted doc ids)`` pairs in ascending token order.

        This is the export surface segment writers consume
        (:mod:`repro.bugdb.segments`): every posting list is sorted, so
        dumping an index to an immutable on-disk segment is one linear
        pass.  Doc ids must be orderable (the segmented index uses
        ints).
        """
        for token in sorted(self._postings):
            yield token, sorted(self._postings[token])

    def lookup(self, token: str) -> set[DocId]:
        """Documents containing the exact token."""
        return set(self._postings.get(token.lower(), ()))

    def lookup_prefix(self, prefix: str) -> set[DocId]:
        """Documents containing any token starting with ``prefix``."""
        prefix = prefix.lower()
        if self._sorted_tokens is None:
            self._sorted_tokens = sorted(self._postings)
        start = bisect.bisect_left(self._sorted_tokens, prefix)
        matched: set[DocId] = set()
        for index in range(start, len(self._sorted_tokens)):
            token = self._sorted_tokens[index]
            if not token.startswith(prefix):
                break
            matched |= self._postings[token]
        return matched

    def search_any(self, keywords: Iterable[str], *, prefix: bool = True) -> set[DocId]:
        """Documents matching any keyword (prefix semantics by default).

        This mirrors the mining keyword filter: ``search_any(("crash",
        "race"))`` finds documents containing crash/crashed/crashes or
        race/races, but never 'trace' (tokens are whole words).
        """
        matched: set[DocId] = set()
        for keyword in keywords:
            if prefix:
                matched |= self.lookup_prefix(keyword)
            else:
                matched |= self.lookup(keyword)
        return matched

    def search_all(self, keywords: Iterable[str], *, prefix: bool = True) -> set[DocId]:
        """Documents matching every keyword."""
        result: set[DocId] | None = None
        for keyword in keywords:
            hits = self.lookup_prefix(keyword) if prefix else self.lookup(keyword)
            result = hits if result is None else (result & hits)
            if not result:
                return set()
        return result or set()
