"""Canonical keys and similarity for duplicate-report detection.

The paper repeatedly "narrows" raw reports to *unique* bugs; real archives
are full of re-reports of the same underlying fault.  Two strategies are
provided (and ablated in the benchmarks):

* an exact canonical key over normalized synopsis text, and
* a token-based Jaccard similarity for fuzzy matching.
"""

from __future__ import annotations

import re
import string

_PUNCTUATION_TABLE = str.maketrans("", "", string.punctuation)
_VERSION_PATTERN = re.compile(r"\b\d+(?:\.\d+)+[a-z]?\b")

# Words so common in bug synopses that they carry no identity.
_STOPWORDS = frozenset(
    """a an and are as at be bug but by crash crashes error fails failure for
    from has have i if in is it my not of on or problem report server so
    that the then this to when will with""".split()
)


def normalize_synopsis(synopsis: str) -> str:
    """Normalize a synopsis for exact duplicate keying.

    Lowercases, removes punctuation and version numbers, drops stopwords,
    and sorts the remaining tokens so word order doesn't matter.
    """
    text = _VERSION_PATTERN.sub("", synopsis.lower())
    text = text.translate(_PUNCTUATION_TABLE)
    tokens = sorted(set(text.split()) - _STOPWORDS)
    return " ".join(tokens)


def content_tokens(text: str) -> frozenset[str]:
    """Content-bearing tokens of a free-text blob (for fuzzy matching)."""
    stripped = _VERSION_PATTERN.sub("", text.lower()).translate(_PUNCTUATION_TABLE)
    return frozenset(stripped.split()) - _STOPWORDS


def jaccard_similarity(left: frozenset[str], right: frozenset[str]) -> float:
    """Jaccard similarity of two token sets, in [0, 1].

    Two empty sets are defined to have similarity 0 (an empty synopsis
    tells us nothing about identity).
    """
    if not left or not right:
        return 0.0
    intersection = len(left & right)
    union = len(left | right)
    return intersection / union
