"""Per-application archive format descriptors for the fast archive path.

An :class:`ArchiveFormat` bundles everything the pipeline needs to treat
one application's 1999-style archive uniformly: how to render it from a
curated corpus, how to split it into per-record chunks (cheaply, without
parsing), how to parse one chunk, how to mine the parsed records, and
how to serialize records for the content-addressed cache.

Version tags are part of every cache key: bump ``parser_version`` when
parse output changes shape or semantics, ``miner_version`` when the
narrowing changes, and stale entries become unreachable (content-
addressed stores never serve a mixed-version entry).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable

from repro.bugdb import debbugs, gnats, mbox
from repro.bugdb.enums import Application
from repro.bugdb.textindex import TextIndex
from repro.corpus.render import (
    apache_raw_archive,
    gnome_raw_archive,
    mysql_raw_archive,
)
from repro.corpus.studyspec import StudyCorpus
from repro.mining import mine_apache, mine_gnome, mine_mysql
from repro.mining.gnome import GNOME_STUDY_COMPONENTS
from repro.mining.mysql import message_search_text
from repro.mining.pipeline import MiningResult
from repro.pipeline import records as _records


@dataclasses.dataclass(frozen=True)
class ArchiveFormat:
    """Everything the pipeline needs to know about one archive format.

    Attributes:
        application: the application this format belongs to.
        parser_version: cache tag component; bump on parse changes.
        miner_version: cache tag component; bump on mining changes.
        render: ``(corpus, scale) -> archive text``.
        split: ``archive text -> per-record chunks`` (cheap boundary
            scan; no record parsing).
        parse_record: ``chunk -> record``; applying it to every chunk of
            :meth:`split` is, by construction, the serial
            ``parse_archive`` reference path.
        mine: ``(records, index) -> MiningResult``; ``index`` is a
            positional :class:`TextIndex` or None (only the MySQL miner
            uses one).
        record_to_dict / record_from_dict: JSON codec for cached parse
            entries (the raw parsed records).
        item_to_dict / item_from_dict: JSON codec for cached mine
            entries.  Mined items are always :class:`~repro.bugdb.model.
            BugReport` -- even for MySQL, whose *records* are mail
            messages but whose miner folds threads into reports.
        index_text: when set, the text to index per record -- the
            sharded parser then builds per-shard partial indexes as a
            parse by-product and merges them for :attr:`mine`.
        boundary_marker: the record-boundary marker :attr:`split` cuts
            on, as text -- lets :mod:`repro.pipeline.streamsplit` find
            the same boundaries as byte offsets in a file without
            loading it.  None means the format has no streaming path.
        boundary_line_anchored: the marker only counts at a line start
            (mbox ``^From ``); False means plain substring semantics
            (gnats/debbugs ``str.split``).
    """

    application: Application
    parser_version: str
    miner_version: str
    render: Callable[[StudyCorpus, int | None], str]
    split: Callable[[str], list[str]]
    parse_record: Callable[[str], Any]
    mine: Callable[[list[Any], TextIndex | None], MiningResult]
    record_to_dict: Callable[[Any], dict[str, Any]]
    record_from_dict: Callable[[dict[str, Any]], Any]
    item_to_dict: Callable[[Any], dict[str, Any]] = _records.report_to_dict
    item_from_dict: Callable[[dict[str, Any]], Any] = _records.report_from_dict
    index_text: Callable[[Any], str] | None = None
    boundary_marker: str | None = None
    boundary_line_anchored: bool = False

    @property
    def parse_tag(self) -> str:
        """Cache tag for parsed-archive entries."""
        return f"parse.{self.application.value}.v{self.parser_version}"

    @property
    def mine_tag(self) -> str:
        """Cache tag for mined-result entries."""
        return (
            f"mine.{self.application.value}"
            f".p{self.parser_version}.m{self.miner_version}"
        )

    def parse(self, text: str) -> list[Any]:
        """Serial reference parse: split then parse every chunk."""
        return [self.parse_record(chunk) for chunk in self.split(text)]


def _render_apache(corpus: StudyCorpus, scale: int | None) -> str:
    return apache_raw_archive(corpus, total_reports=scale)


def _render_gnome(corpus: StudyCorpus, scale: int | None) -> str:
    return gnome_raw_archive(
        corpus, total_reports=scale, study_components=GNOME_STUDY_COMPONENTS
    )


def _render_mysql(corpus: StudyCorpus, scale: int | None) -> str:
    return mysql_raw_archive(corpus, total_messages=scale)


def _mine_apache(records: list[Any], index: TextIndex | None) -> MiningResult:
    return mine_apache(records)


def _mine_gnome(records: list[Any], index: TextIndex | None) -> MiningResult:
    return mine_gnome(records)


def _mine_mysql(records: list[Any], index: TextIndex | None) -> MiningResult:
    return mine_mysql(records, index=index)


FORMATS: dict[Application, ArchiveFormat] = {
    Application.APACHE: ArchiveFormat(
        application=Application.APACHE,
        parser_version="1",
        miner_version="1",
        render=_render_apache,
        split=gnats.split_archive,
        parse_record=gnats.parse_pr,
        mine=_mine_apache,
        record_to_dict=_records.report_to_dict,
        record_from_dict=_records.report_from_dict,
        boundary_marker="=" * 72,
    ),
    Application.GNOME: ArchiveFormat(
        application=Application.GNOME,
        parser_version="1",
        miner_version="1",
        render=_render_gnome,
        split=debbugs.split_archive,
        parse_record=debbugs.parse_report,
        mine=_mine_gnome,
        record_to_dict=_records.report_to_dict,
        record_from_dict=_records.report_from_dict,
        boundary_marker="\x0c",
    ),
    Application.MYSQL: ArchiveFormat(
        application=Application.MYSQL,
        parser_version="1",
        miner_version="1",
        render=_render_mysql,
        split=mbox.split_archive,
        parse_record=mbox.parse_message,
        mine=_mine_mysql,
        record_to_dict=_records.message_to_dict,
        record_from_dict=_records.message_from_dict,
        index_text=message_search_text,
        boundary_marker="From ",
        boundary_line_anchored=True,
    ),
}


def format_for(application: Application) -> ArchiveFormat:
    """The archive format descriptor for ``application``."""
    return FORMATS[application]
