"""repro.pipeline: the fast archive path (parallel, cached, indexed).

The paper's Section 4 narrowing (5220 Apache reports -> 50, ~500 GNOME
-> 45, ~44,000 MySQL messages -> 44) is the repo's biggest hot path.
This package makes ``render -> parse_archive -> mine_*`` parallel,
cached, and index-backed while keeping mined bug sets and narrowing
traces bit-identical to the serial path:

* :mod:`~repro.pipeline.formats` -- per-application
  :class:`~repro.pipeline.formats.ArchiveFormat` descriptors (render,
  record-boundary split, chunk parse, mine, cache codec, version tags);
* :mod:`~repro.pipeline.shardparse` -- sharded parsing on the fork-based
  :mod:`repro.harness` pool with order-preserving merge, building
  partial inverted indexes as a parse by-product;
* :mod:`~repro.pipeline.streamsplit` -- byte-offset record boundaries
  over archive *files*: record-aligned shard byte-ranges scanned with
  bounded memory, so multi-GB archives stream through
  :func:`~repro.pipeline.shardparse.parse_archive_streamed` and land in
  an LSM-style :class:`~repro.bugdb.segments.SegmentedTextIndex`;
* :mod:`~repro.pipeline.cache` -- content-addressed (SHA-256 + version
  tag) on-disk parse/mine store with explicit invalidation;
* :mod:`~repro.pipeline.records` -- JSON codecs for cached records;
* :mod:`~repro.pipeline.runner` -- :func:`mine_archive_text` /
  :func:`mine_application`, tying the stages together with
  :class:`~repro.harness.telemetry.Telemetry`.

**Equivalence contract**: for every application, any worker count, and
any cache state, the pipeline's :class:`~repro.mining.pipeline.
MiningResult` (items and trace) is identical to the serial cold path.
"""

from repro.pipeline.cache import CACHE_FORMAT_VERSION, ParseMineCache, archive_digest
from repro.pipeline.formats import FORMATS, ArchiveFormat, format_for
from repro.pipeline.runner import PipelineRun, mine_application, mine_archive_text
from repro.pipeline.shardparse import (
    KIND_PARSE_SHARD,
    KIND_STREAM_SHARD,
    ParsedArchive,
    StreamedParse,
    parse_archive_sharded,
    parse_archive_streamed,
)
from repro.pipeline.streamsplit import (
    ByteRange,
    format_byte_ranges,
    read_range,
    shard_byte_ranges,
    split_file,
)

__all__ = [
    "ArchiveFormat",
    "ByteRange",
    "CACHE_FORMAT_VERSION",
    "FORMATS",
    "KIND_PARSE_SHARD",
    "KIND_STREAM_SHARD",
    "ParseMineCache",
    "ParsedArchive",
    "PipelineRun",
    "StreamedParse",
    "archive_digest",
    "format_byte_ranges",
    "format_for",
    "mine_application",
    "mine_archive_text",
    "parse_archive_sharded",
    "parse_archive_streamed",
    "read_range",
    "shard_byte_ranges",
    "split_file",
]
