"""Byte-offset record boundaries for streaming archive ingestion.

The in-memory splitters in :mod:`repro.bugdb` need the whole archive as
one ``str``; at 1M+ reports (multi-GB) that alone blows the memory
budget.  This module finds the same record boundaries **as byte offsets
in a file**, scanning block-by-block with bounded memory, and cuts the
file into *shard byte-ranges* that each start exactly on a record
boundary.

The equivalence contract (asserted in tests on the full 44k archives):
for any ``max_shard_bytes``, reading each range, splitting it with the
format's in-memory splitter, and concatenating the per-range record
lists yields records byte-identical to splitting the whole archive in
memory.  That holds because:

* gnats/debbugs split on a **substring marker** (``"="*72`` /
  ``"\\x0c"``) with ``str.split`` semantics — left-to-right,
  non-overlapping.  :func:`iter_cut_points` reproduces exactly those
  occurrences (it advances past each match), and a range starting at a
  marker splits into a leading empty block that the splitter's
  strip-and-filter drops, just as it drops the empty block between
  adjacent separators in the whole text.
* mbox splits on a **line-anchored marker** (``^From ``).  Ranges cut
  at boundary offsets start at a line start, so the range-local
  ``^From `` scan finds precisely the whole-text boundaries; the
  preamble check only ever sees real content in the first range.

Markers are ASCII, and UTF-8 is self-synchronizing, so byte offsets of
marker occurrences always fall on character boundaries — each range
decodes independently.
"""

from __future__ import annotations

import dataclasses
import os
from pathlib import Path
from typing import Any, BinaryIO, Iterator

DEFAULT_BLOCK_SIZE = 1 << 20
DEFAULT_MAX_SHARD_BYTES = 8 << 20


@dataclasses.dataclass(frozen=True)
class ByteRange:
    """One shard byte-range, cut on a record boundary."""

    start: int
    end: int

    @property
    def size(self) -> int:
        return self.end - self.start


def iter_cut_points(
    handle: BinaryIO,
    marker: bytes,
    *,
    line_anchored: bool = False,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> Iterator[int]:
    """Absolute byte offsets of record-boundary marker occurrences.

    Substring mode reproduces ``str.split`` semantics (left-to-right,
    non-overlapping: the scan resumes *after* each match).  With
    ``line_anchored`` a match only counts at offset 0 or right after a
    newline (``re.MULTILINE`` ``^`` semantics).  The scan holds one
    block plus a marker-sized carry — memory is O(block_size)
    regardless of file size.
    """
    if not marker:
        raise ValueError("marker must be non-empty")
    marker_len = len(marker)
    anchor = 1 if line_anchored else 0
    buffer = b""
    base = 0  # absolute offset of buffer[0]
    scan = 0  # next in-buffer scan position
    while True:
        block = handle.read(block_size)
        if not block:
            return
        buffer += block
        while True:
            found = buffer.find(marker, scan)
            if found < 0:
                break
            absolute = base + found
            if line_anchored and absolute != 0 and buffer[found - 1 : found] != b"\n":
                scan = found + 1
                continue
            yield absolute
            scan = found + marker_len
        # Keep the unsearchable tail (a marker may straddle blocks) and,
        # when line-anchored, one extra byte for the newline check.
        tail_start = max(scan - anchor, len(buffer) - (marker_len - 1) - anchor)
        if tail_start > 0:
            buffer = buffer[tail_start:]
            base += tail_start
            scan = max(scan - tail_start, 0)


def scan_cut_points(
    path: str | os.PathLike,
    marker: bytes,
    *,
    line_anchored: bool = False,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> Iterator[int]:
    """:func:`iter_cut_points` over a file path."""
    with open(path, "rb") as handle:
        yield from iter_cut_points(
            handle, marker, line_anchored=line_anchored, block_size=block_size
        )


def shard_byte_ranges(
    path: str | os.PathLike,
    marker: bytes,
    *,
    line_anchored: bool = False,
    max_shard_bytes: int = DEFAULT_MAX_SHARD_BYTES,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> list[ByteRange]:
    """Cut a file into record-aligned ranges of at most ``max_shard_bytes``.

    Every range starts at byte 0 or at a boundary marker offset, so each
    can be read, decoded, and split independently.  A range only exceeds
    ``max_shard_bytes`` when a *single record* does — records are never
    split mid-body.
    """
    if max_shard_bytes <= 0:
        raise ValueError("max_shard_bytes must be positive")
    total = os.path.getsize(path)
    ranges: list[ByteRange] = []
    start = 0
    pending: int | None = None  # last cut seen after `start`, not yet closed on
    for cut in scan_cut_points(
        path, marker, line_anchored=line_anchored, block_size=block_size
    ):
        if cut <= start:
            continue
        if cut - start > max_shard_bytes:
            if pending is not None:
                ranges.append(ByteRange(start, pending))
                start = pending
                pending = None
            if cut - start > max_shard_bytes:
                # A single oversized record (or head) gets its own range.
                ranges.append(ByteRange(start, cut))
                start = cut
                continue
        pending = cut
    if total > start:
        if pending is not None and total - start > max_shard_bytes:
            # Close at the last boundary first so only a single
            # oversized tail record can ever exceed the budget.
            ranges.append(ByteRange(start, pending))
            start = pending
        ranges.append(ByteRange(start, total))
    return ranges


def read_range(path: str | os.PathLike, byte_range: ByteRange) -> str:
    """Read and decode one shard byte-range."""
    with open(path, "rb") as handle:
        handle.seek(byte_range.start)
        payload = handle.read(byte_range.size)
    return payload.decode("utf-8")


def split_file(
    fmt: Any,
    path: str | os.PathLike,
    *,
    max_shard_bytes: int = DEFAULT_MAX_SHARD_BYTES,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> Iterator[list[str]]:
    """Stream an archive file as per-range record-chunk lists.

    Concatenating the yielded lists equals ``fmt.split`` of the whole
    file — with memory bounded by the largest range, not the archive.
    """
    for byte_range in format_byte_ranges(
        fmt, path, max_shard_bytes=max_shard_bytes, block_size=block_size
    ):
        yield fmt.split(read_range(path, byte_range))


def format_byte_ranges(
    fmt: Any,
    path: str | os.PathLike,
    *,
    max_shard_bytes: int = DEFAULT_MAX_SHARD_BYTES,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> list[ByteRange]:
    """Shard byte-ranges for a format that declares a boundary marker."""
    if fmt.boundary_marker is None:
        raise ValueError(
            f"format {fmt.application.value} declares no record-boundary marker"
        )
    return shard_byte_ranges(
        Path(path),
        fmt.boundary_marker.encode("utf-8"),
        line_anchored=fmt.boundary_line_anchored,
        max_shard_bytes=max_shard_bytes,
        block_size=block_size,
    )
