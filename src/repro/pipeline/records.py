"""Record (de)serialization for the on-disk parse/mine cache.

The cache (:mod:`repro.pipeline.cache`) stores parsed archives and mined
results as plain JSON so entries survive interpreter upgrades and are
inspectable with standard tools.  :class:`~repro.bugdb.model.BugReport`
already has a JSON codec in :mod:`repro.bugdb.jsonstore`; this module
adds the :class:`~repro.bugdb.mbox.MailMessage` codec and the
:class:`~repro.mining.pipeline.NarrowingTrace` row form, and re-exports
the report codec so cache payload code has one import site.
"""

from __future__ import annotations

import datetime as _dt
from typing import Any

from repro.bugdb.jsonstore import report_from_dict, report_to_dict
from repro.bugdb.mbox import MailMessage
from repro.errors import ParseError
from repro.mining.pipeline import MiningResult, NarrowingTrace

__all__ = [
    "message_from_dict",
    "message_to_dict",
    "report_from_dict",
    "report_to_dict",
    "result_from_payload",
    "result_to_payload",
    "trace_from_rows",
    "trace_to_rows",
]


def message_to_dict(message: MailMessage) -> dict[str, Any]:
    """Serialize one mail message to plain JSON-compatible data."""
    return {
        "message_id": message.message_id,
        "sender": message.sender,
        "date": message.date.isoformat(),
        "subject": message.subject,
        "body": message.body,
        "in_reply_to": message.in_reply_to,
    }


def message_from_dict(data: dict[str, Any]) -> MailMessage:
    """Deserialize one mail message.

    Raises:
        ParseError: on missing fields or a malformed date.
    """
    try:
        return MailMessage(
            message_id=data["message_id"],
            sender=data["sender"],
            date=_dt.date.fromisoformat(data["date"]),
            subject=data["subject"],
            body=data["body"],
            in_reply_to=data.get("in_reply_to"),
        )
    except (KeyError, ValueError) as exc:
        raise ParseError(f"bad message record: {exc}", source="pipeline-cache") from exc


def trace_to_rows(trace: NarrowingTrace) -> list[list[Any]]:
    """Narrowing trace as ``[stage name, survivors]`` rows."""
    return [[name, survivors] for name, survivors in trace.as_rows()]


def trace_from_rows(rows: list[list[Any]]) -> NarrowingTrace:
    """Inverse of :func:`trace_to_rows`."""
    trace = NarrowingTrace()
    for name, survivors in rows:
        trace.record(name, int(survivors))
    return trace


def result_to_payload(result: MiningResult, record_to_dict: Any) -> dict[str, Any]:
    """Serialize a mining result (items plus trace) for the cache."""
    return {
        "items": [record_to_dict(item) for item in result.items],
        "trace": trace_to_rows(result.trace),
    }


def result_from_payload(payload: dict[str, Any], record_from_dict: Any) -> MiningResult:
    """Inverse of :func:`result_to_payload`.

    Raises:
        ParseError: on malformed item records.
    """
    return MiningResult(
        items=[record_from_dict(item) for item in payload.get("items", [])],
        trace=trace_from_rows(payload.get("trace", [])),
    )
