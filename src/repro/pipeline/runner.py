"""The end-to-end fast archive path: render -> parse -> mine, cached.

:func:`mine_archive_text` is the pipeline's core: given raw archive
text, it returns the mined study set exactly as the serial
``parse_archive`` + ``mine_*`` path would, but parses in parallel
shards, prefilters keywords through the inverted index built as a parse
by-product, and short-circuits through the content-addressed cache when
the same bytes were mined before.  :func:`mine_application` is the
render-first convenience used by the CLI and benchmarks.

Equivalence contract: for every application, any worker count, and any
cache state, the returned :class:`~repro.mining.pipeline.MiningResult`
(items and narrowing trace) is identical to the serial cold path.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path

from repro import obs
from repro.bugdb.enums import Application
from repro.bugdb.segments import SegmentedTextIndex
from repro.corpus.loader import full_study
from repro.corpus.studyspec import StudyCorpus
from repro.harness.telemetry import Telemetry
from repro.mining.pipeline import MiningResult
from repro.pipeline import records as _records
from repro.pipeline.cache import ParseMineCache, archive_digest, archive_file_digest
from repro.pipeline.formats import ArchiveFormat, format_for
from repro.pipeline.shardparse import parse_archive_sharded, parse_archive_streamed
from repro.pipeline.streamsplit import DEFAULT_MAX_SHARD_BYTES


@dataclasses.dataclass
class PipelineRun:
    """One execution of the archive pipeline.

    Attributes:
        application: the mined application.
        result: the mined study set plus narrowing trace (identical to
            the serial cold path, whatever ``workers`` or cache state).
        digest: SHA-256 of the raw archive text.
        mine_cache_hit: the mined result came straight from the cache.
        parse_cache_hit: the parsed records came from the cache (only
            meaningful when ``mine_cache_hit`` is False).
        telemetry: timers/counters/gauges recorded during the run.
    """

    application: Application
    result: MiningResult
    digest: str
    mine_cache_hit: bool
    parse_cache_hit: bool
    telemetry: Telemetry

    def summary_lines(self) -> list[str]:
        """Human-readable pipeline footer for the CLI."""
        lines = []
        parse = self.telemetry.timer("parse.wall")
        if parse.count:
            lines.append(
                f"parse: {parse.total * 1000:.1f} ms across "
                f"{self.telemetry.gauge_value('parse.shards'):.0f} shard(s), "
                f"{self.telemetry.gauge_value('parse.worker_processes'):.0f} "
                f"worker process(es) "
                f"({self.telemetry.gauge_value('parse.shard_utilization'):.0%} "
                "shard utilization)"
            )
        stream = self.telemetry.timer("stream.wall")
        if stream.count:
            mb = self.telemetry.counter("stream.bytes") / (1024 * 1024)
            records = self.telemetry.counter("stream.records")
            wall = stream.total
            rate = f", {mb / wall:.1f} MB/s, {records / wall:.0f} records/s" if wall > 0 else ""
            lines.append(
                f"stream: {wall * 1000:.1f} ms over "
                f"{self.telemetry.counter('stream.ranges'):.0f} byte-range(s), "
                f"{mb:.1f} MB, {records:.0f} record(s){rate}"
            )
        mine = self.telemetry.timer("mine.wall")
        if mine.count:
            lines.append(f"mine: {mine.total * 1000:.1f} ms")
        if self.mine_cache_hit:
            lines.append("cache: mine hit")
        elif self.telemetry.counter("cache.lookups"):
            parse_state = "hit" if self.parse_cache_hit else "miss"
            lines.append(f"cache: mine miss, parse {parse_state} (entries stored)")
        else:
            lines.append("cache: disabled")
        total = self.telemetry.timer("pipeline.wall")
        if total.count:
            lines.append(f"pipeline total: {total.total * 1000:.1f} ms")
        return lines


def mine_archive_text(
    application: Application,
    text: str,
    *,
    workers: int = 1,
    cache: ParseMineCache | None = None,
    telemetry: Telemetry | None = None,
) -> PipelineRun:
    """Mine raw archive text through the fast path.

    Args:
        application: which archive format/miner to use.
        text: the raw archive.
        workers: parse-shard worker processes (1 = serial reference).
        cache: optional content-addressed store; hits skip parse+mine.
        telemetry: optional sink (one is created when omitted).
    """
    fmt = format_for(application)
    telemetry = telemetry if telemetry is not None else Telemetry()
    digest = archive_digest(text)
    mine_cache_hit = False
    parse_cache_hit = False

    with telemetry.timed("pipeline.wall"), obs.span(
        f"pipeline:{application.value}", workers=workers
    ) as pipeline_span:
        if cache is not None:
            telemetry.count("cache.lookups")
            payload = cache.load(digest, fmt.mine_tag)
            if payload is not None:
                telemetry.count("cache.mine.hits")
                pipeline_span.set(mine_cache_hit=True)
                result = _records.result_from_payload(payload, fmt.item_from_dict)
                return PipelineRun(
                    application=application,
                    result=result,
                    digest=digest,
                    mine_cache_hit=True,
                    parse_cache_hit=False,
                    telemetry=telemetry,
                )
            telemetry.count("cache.mine.misses")

        records = None
        index = None
        if cache is not None:
            payload = cache.load(digest, fmt.parse_tag)
            if payload is not None:
                telemetry.count("cache.parse.hits")
                parse_cache_hit = True
                pipeline_span.set(parse_cache_hit=True)
                with telemetry.timed("parse.decode"):
                    records = [
                        fmt.record_from_dict(data)
                        for data in payload.get("records", [])
                    ]
            else:
                telemetry.count("cache.parse.misses")

        if records is None:
            parsed = parse_archive_sharded(
                fmt, text, workers=workers, telemetry=telemetry
            )
            records, index = parsed.records, parsed.index
            if cache is not None:
                with telemetry.timed("cache.store.parse"):
                    cache.store(
                        digest,
                        fmt.parse_tag,
                        {"records": [fmt.record_to_dict(r) for r in records]},
                    )

        with telemetry.timed("mine.wall"), obs.span(
            f"mine:{application.value}", records=len(records)
        ):
            result = fmt.mine(records, index)

        if cache is not None:
            with telemetry.timed("cache.store.mine"):
                cache.store(
                    digest,
                    fmt.mine_tag,
                    _records.result_to_payload(result, fmt.item_to_dict),
                )

    return PipelineRun(
        application=application,
        result=result,
        digest=digest,
        mine_cache_hit=mine_cache_hit,
        parse_cache_hit=parse_cache_hit,
        telemetry=telemetry,
    )


def mine_archive_file(
    application: Application,
    path: str | Path,
    *,
    max_shard_bytes: int = DEFAULT_MAX_SHARD_BYTES,
    workers: int = 1,
    cache: ParseMineCache | None = None,
    telemetry: Telemetry | None = None,
    index_dir: str | Path | None = None,
) -> PipelineRun:
    """Mine an archive **file** through the streaming byte-range path.

    The archive text is never loaded whole: shards are record-aligned
    byte-ranges of at most ``max_shard_bytes`` (each worker's memory is
    bounded by the shard budget), and with ``index_dir`` the parse
    appends write-ahead segments to an LSM-style
    :class:`~repro.bugdb.segments.SegmentedTextIndex` that the miner
    then queries in place of the monolithic in-memory index.  Mining
    itself still holds the parsed records; for parse+index-only
    workloads at extreme scale, call
    :func:`~repro.pipeline.shardparse.parse_archive_streamed` directly.

    The mined result is identical to :func:`mine_archive_text` on the
    file's contents, and the two share cache entries (same digest).
    When ``index_dir`` names an index with no documents yet, cache
    *reads* are bypassed so the parse that builds the segmented index
    always runs — otherwise a warm cache would silently skip the
    requested on-disk artifact.  An already-populated index is left
    as-is and cache hits short-circuit as usual.
    """
    fmt = format_for(application)
    telemetry = telemetry if telemetry is not None else Telemetry()
    digest = archive_file_digest(path)
    parse_cache_hit = False

    use_index = index_dir is not None and fmt.index_text is not None
    need_index = (
        use_index and SegmentedTextIndex(index_dir).document_count == 0
    )
    read_cache = None if need_index else cache

    with telemetry.timed("pipeline.wall"), obs.span(
        f"pipeline:{application.value}", workers=workers, streaming=True
    ) as pipeline_span:
        if cache is not None:
            telemetry.count("cache.lookups")
        if read_cache is not None:
            payload = read_cache.load(digest, fmt.mine_tag)
            if payload is not None:
                telemetry.count("cache.mine.hits")
                pipeline_span.set(mine_cache_hit=True)
                result = _records.result_from_payload(payload, fmt.item_from_dict)
                return PipelineRun(
                    application=application,
                    result=result,
                    digest=digest,
                    mine_cache_hit=True,
                    parse_cache_hit=False,
                    telemetry=telemetry,
                )
            telemetry.count("cache.mine.misses")

        records = None
        index = None
        if read_cache is not None:
            payload = read_cache.load(digest, fmt.parse_tag)
            if payload is not None:
                telemetry.count("cache.parse.hits")
                parse_cache_hit = True
                pipeline_span.set(parse_cache_hit=True)
                with telemetry.timed("parse.decode"):
                    records = [
                        fmt.record_from_dict(data)
                        for data in payload.get("records", [])
                    ]
            else:
                telemetry.count("cache.parse.misses")

        if records is None:
            parsed = parse_archive_streamed(
                fmt,
                path,
                max_shard_bytes=max_shard_bytes,
                workers=workers,
                telemetry=telemetry,
                index_dir=index_dir if use_index else None,
                keep_records=True,
            )
            records, index = parsed.records, parsed.index
            if cache is not None:
                with telemetry.timed("cache.store.parse"):
                    cache.store(
                        digest,
                        fmt.parse_tag,
                        {"records": [fmt.record_to_dict(r) for r in records]},
                    )

        with telemetry.timed("mine.wall"), obs.span(
            f"mine:{application.value}", records=len(records)
        ):
            result = fmt.mine(records, index)

        if cache is not None:
            with telemetry.timed("cache.store.mine"):
                cache.store(
                    digest,
                    fmt.mine_tag,
                    _records.result_to_payload(result, fmt.item_to_dict),
                )

    return PipelineRun(
        application=application,
        result=result,
        digest=digest,
        mine_cache_hit=False,
        parse_cache_hit=parse_cache_hit,
        telemetry=telemetry,
    )


def mine_application(
    application: Application,
    *,
    scale: int | None = None,
    workers: int = 1,
    cache_dir: str | Path | None = None,
    use_cache: bool = True,
    telemetry: Telemetry | None = None,
    corpus: StudyCorpus | None = None,
) -> PipelineRun:
    """Render an application's archive and mine it through the fast path.

    Args:
        application: apache | gnome | mysql.
        scale: raw archive size (None = the paper's full scale).
        workers: parse-shard worker processes.
        cache_dir: content-addressed cache directory (None = no cache).
        use_cache: the ``--no-cache`` escape hatch; False ignores
            ``cache_dir`` entirely (no reads, no writes).
        telemetry: optional sink.
        corpus: curated corpus override (defaults to the full study's).
    """
    fmt = format_for(application)
    telemetry = telemetry if telemetry is not None else Telemetry()
    if corpus is None:
        corpus = full_study().corpus(application)
    with telemetry.timed("render.wall"):
        text = fmt.render(corpus, scale)
    cache = ParseMineCache(cache_dir) if (cache_dir is not None and use_cache) else None
    return mine_archive_text(
        application, text, workers=workers, cache=cache, telemetry=telemetry
    )
