"""Parallel sharded archive parsing on the repro.harness worker pool.

The splitters in :mod:`repro.bugdb` cut an archive into per-record
chunks with one cheap boundary scan; this module shards those chunks
contiguously and parses the shards on the fork-based
:class:`~repro.harness.pool.WorkerPool`.  Results are reassembled in
submission order (keyed by work-unit content hash), so the record list
is bit-identical to the serial ``parse_archive`` path for any worker
count -- sharding can reorder *completion*, never *output*.

When the format defines :attr:`~repro.pipeline.formats.ArchiveFormat.
index_text`, every shard also builds a partial inverted index over its
records (keyed by global archive position) as a parse by-product; the
partials merge into one :class:`~repro.bugdb.textindex.TextIndex`
identical to indexing the archive serially.  This is what makes the
index-backed keyword prefilter effectively free on the parallel path.
"""

from __future__ import annotations

import dataclasses
import os
import time
from typing import Any

from repro import obs
from repro.bugdb.textindex import TextIndex
from repro.harness.pool import UnitExecution, WorkerPool
from repro.harness.shard import assemble_results, shard_count_for, shard_units
from repro.harness.telemetry import Telemetry
from repro.harness.workunit import WorkUnit
from repro.pipeline.formats import ArchiveFormat

#: Work-unit kind for parse shards (appears in unit keys and telemetry).
KIND_PARSE_SHARD = "parse-shard"


@dataclasses.dataclass
class ParsedArchive:
    """The outcome of parsing one archive.

    Attributes:
        records: parsed records in archive order (identical to the
            serial ``parse_archive`` output for any worker count).
        index: merged positional inverted index over the records, when
            the format defines ``index_text``; None otherwise.
        shards: number of shards the parse ran in (1 on the serial path).
        workers: worker processes requested.
        worker_pids: distinct process ids that executed shards.
        wall_seconds: end-to-end parse wall time.
    """

    records: list[Any]
    index: TextIndex | None
    shards: int
    workers: int
    worker_pids: tuple[int, ...]
    wall_seconds: float

    @property
    def shard_utilization(self) -> float:
        """Fraction of usable workers that actually executed shards."""
        usable = max(1, min(self.workers, self.shards))
        return len(self.worker_pids) / usable


def _build_partial_index(
    fmt: ArchiveFormat, records: list[Any], start: int
) -> TextIndex | None:
    if fmt.index_text is None:
        return None
    index: TextIndex = TextIndex()
    for offset, record in enumerate(records):
        index.add(start + offset, fmt.index_text(record))
    return index


def _parse_shard_runner(unit: WorkUnit, context: Any) -> dict[str, Any]:
    """Parse one shard of chunks (worker side).

    The chunk shards travel to workers through fork inheritance (the
    pool's context), not pickling, so the archive text is never copied
    through the result queue; only parsed records come back.
    """
    fmt, shards = context
    params = unit.params_dict()
    chunks = shards[params["shard"]]
    records = [fmt.parse_record(chunk) for chunk in chunks]
    return {
        "records": records,
        "index": _build_partial_index(fmt, records, params["start"]),
    }


def parse_archive_sharded(
    fmt: ArchiveFormat,
    text: str,
    *,
    workers: int = 1,
    telemetry: Telemetry | None = None,
) -> ParsedArchive:
    """Parse an archive, in parallel shards when ``workers > 1``.

    Args:
        fmt: the archive's format descriptor.
        text: raw archive text.
        workers: worker processes; 1 (or a platform without fork)
            selects the serial reference path.
        telemetry: optional sink for parse timers/counters/gauges.

    The record list (and merged index) is identical to the serial path
    for any worker count.
    """
    telemetry = telemetry if telemetry is not None else Telemetry()
    with obs.span(
        f"parse:{fmt.application.value}", workers=max(1, workers)
    ) as parse_span:
        started = time.monotonic()
        chunks = fmt.split(text)
        telemetry.observe("parse.split", time.monotonic() - started)
        telemetry.count("parse.chunks", len(chunks))
        parse_span.set(chunks=len(chunks))

        pool = WorkerPool(max(1, workers))
        if not pool.parallel or len(chunks) < 2:
            records = [fmt.parse_record(chunk) for chunk in chunks]
            index = _build_partial_index(fmt, records, 0)
            wall = time.monotonic() - started
            telemetry.observe("parse.wall", wall)
            telemetry.gauge("parse.shards", 1)
            telemetry.gauge("parse.worker_processes", 1)
            telemetry.gauge("parse.shard_utilization", 1.0)
            parse_span.set(shards=1)
            return ParsedArchive(
                records=records,
                index=index,
                shards=1,
                workers=pool.workers,
                worker_pids=(os.getpid(),),
                wall_seconds=wall,
            )

        shards = shard_units(chunks, shard_count_for(len(chunks), pool.workers))
        starts, offset = [], 0
        for shard in shards:
            starts.append(offset)
            offset += len(shard)
        units = [
            WorkUnit.build(
                KIND_PARSE_SHARD,
                f"{fmt.application.value}:shard{position:05d}",
                params={
                    "shard": position,
                    "start": starts[position],
                    "chunks": len(shard),
                },
            )
            for position, shard in enumerate(shards)
        ]

        executions: dict[str, UnitExecution] = {}

        def on_unit(execution: UnitExecution) -> None:
            executions[execution.key] = execution
            telemetry.observe("parse.shard.wall", execution.wall_seconds)
            telemetry.observe("parse.shard.queue", execution.queue_seconds)

        pool.execute(units, _parse_shard_runner, (fmt, shards), on_unit=on_unit)
        ordered = assemble_results(units, executions)

        with obs.span("parse:merge", shards=len(shards)):
            records = []
            index = TextIndex() if fmt.index_text is not None else None
            for execution in ordered:
                records.extend(execution.result["records"])
                if index is not None:
                    index.merge(execution.result["index"])

        pids = tuple(sorted({execution.worker_pid for execution in ordered}))
        wall = time.monotonic() - started
        telemetry.observe("parse.wall", wall)
        telemetry.gauge("parse.shards", len(shards))
        telemetry.gauge("parse.worker_processes", len(pids))
        parse_span.set(shards=len(shards))
        parsed = ParsedArchive(
            records=records,
            index=index,
            shards=len(shards),
            workers=pool.workers,
            worker_pids=pids,
            wall_seconds=wall,
        )
        telemetry.gauge("parse.shard_utilization", parsed.shard_utilization)
        return parsed
