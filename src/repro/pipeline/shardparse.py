"""Parallel sharded archive parsing on the repro.harness worker pool.

The splitters in :mod:`repro.bugdb` cut an archive into per-record
chunks with one cheap boundary scan; this module shards those chunks
contiguously and parses the shards on the fork-based
:class:`~repro.harness.pool.WorkerPool`.  Results are reassembled in
submission order (keyed by work-unit content hash), so the record list
is bit-identical to the serial ``parse_archive`` path for any worker
count -- sharding can reorder *completion*, never *output*.

When the format defines :attr:`~repro.pipeline.formats.ArchiveFormat.
index_text`, every shard also builds a partial inverted index over its
records (keyed by global archive position) as a parse by-product; the
partials merge into one :class:`~repro.bugdb.textindex.TextIndex`
identical to indexing the archive serially.  This is what makes the
index-backed keyword prefilter effectively free on the parallel path.
"""

from __future__ import annotations

import dataclasses
import os
import time
from pathlib import Path
from typing import Any, Callable

from repro import obs
from repro.bugdb.segments import SegmentedTextIndex, segment_from_index
from repro.bugdb.textindex import TextIndex
from repro.harness.pool import UnitExecution, WorkerPool
from repro.harness.shard import assemble_results, shard_count_for, shard_units
from repro.harness.telemetry import Telemetry
from repro.harness.workunit import WorkUnit
from repro.pipeline.formats import ArchiveFormat
from repro.pipeline.streamsplit import (
    DEFAULT_MAX_SHARD_BYTES,
    ByteRange,
    format_byte_ranges,
    read_range,
)

#: Work-unit kind for parse shards (appears in unit keys and telemetry).
KIND_PARSE_SHARD = "parse-shard"

#: Work-unit kind for streaming byte-range shards.
KIND_STREAM_SHARD = "stream-shard"


@dataclasses.dataclass
class ParsedArchive:
    """The outcome of parsing one archive.

    Attributes:
        records: parsed records in archive order (identical to the
            serial ``parse_archive`` output for any worker count).
        index: merged positional inverted index over the records, when
            the format defines ``index_text``; None otherwise.
        shards: number of shards the parse ran in (1 on the serial path).
        workers: worker processes requested.
        worker_pids: distinct process ids that executed shards.
        wall_seconds: end-to-end parse wall time.
    """

    records: list[Any]
    index: TextIndex | None
    shards: int
    workers: int
    worker_pids: tuple[int, ...]
    wall_seconds: float

    @property
    def shard_utilization(self) -> float:
        """Fraction of usable workers that actually executed shards."""
        usable = max(1, min(self.workers, self.shards))
        return len(self.worker_pids) / usable


def _build_partial_index(
    fmt: ArchiveFormat, records: list[Any], start: int
) -> TextIndex | None:
    if fmt.index_text is None:
        return None
    index: TextIndex = TextIndex()
    for offset, record in enumerate(records):
        index.add(start + offset, fmt.index_text(record))
    return index


def _parse_shard_runner(unit: WorkUnit, context: Any) -> dict[str, Any]:
    """Parse one shard of chunks (worker side).

    The chunk shards travel to workers through fork inheritance (the
    pool's context), not pickling, so the archive text is never copied
    through the result queue; only parsed records come back.
    """
    fmt, shards = context
    params = unit.params_dict()
    chunks = shards[params["shard"]]
    records = [fmt.parse_record(chunk) for chunk in chunks]
    return {
        "records": records,
        "index": _build_partial_index(fmt, records, params["start"]),
    }


def parse_archive_sharded(
    fmt: ArchiveFormat,
    text: str,
    *,
    workers: int = 1,
    telemetry: Telemetry | None = None,
) -> ParsedArchive:
    """Parse an archive, in parallel shards when ``workers > 1``.

    Args:
        fmt: the archive's format descriptor.
        text: raw archive text.
        workers: worker processes; 1 (or a platform without fork)
            selects the serial reference path.
        telemetry: optional sink for parse timers/counters/gauges.

    The record list (and merged index) is identical to the serial path
    for any worker count.
    """
    telemetry = telemetry if telemetry is not None else Telemetry()
    with obs.span(
        f"parse:{fmt.application.value}", workers=max(1, workers)
    ) as parse_span:
        started = time.monotonic()
        chunks = fmt.split(text)
        telemetry.observe("parse.split", time.monotonic() - started)
        telemetry.count("parse.chunks", len(chunks))
        parse_span.set(chunks=len(chunks))

        pool = WorkerPool(max(1, workers))
        if not pool.parallel or len(chunks) < 2:
            records = [fmt.parse_record(chunk) for chunk in chunks]
            index = _build_partial_index(fmt, records, 0)
            wall = time.monotonic() - started
            telemetry.observe("parse.wall", wall)
            telemetry.gauge("parse.shards", 1)
            telemetry.gauge("parse.worker_processes", 1)
            telemetry.gauge("parse.shard_utilization", 1.0)
            parse_span.set(shards=1)
            return ParsedArchive(
                records=records,
                index=index,
                shards=1,
                workers=pool.workers,
                worker_pids=(os.getpid(),),
                wall_seconds=wall,
            )

        shards = shard_units(chunks, shard_count_for(len(chunks), pool.workers))
        starts, offset = [], 0
        for shard in shards:
            starts.append(offset)
            offset += len(shard)
        units = [
            WorkUnit.build(
                KIND_PARSE_SHARD,
                f"{fmt.application.value}:shard{position:05d}",
                params={
                    "shard": position,
                    "start": starts[position],
                    "chunks": len(shard),
                },
            )
            for position, shard in enumerate(shards)
        ]

        executions: dict[str, UnitExecution] = {}

        def on_unit(execution: UnitExecution) -> None:
            executions[execution.key] = execution
            telemetry.observe("parse.shard.wall", execution.wall_seconds)
            telemetry.observe("parse.shard.queue", execution.queue_seconds)

        pool.execute(units, _parse_shard_runner, (fmt, shards), on_unit=on_unit)
        ordered = assemble_results(units, executions)

        with obs.span("parse:merge", shards=len(shards)):
            records = []
            index = TextIndex() if fmt.index_text is not None else None
            for execution in ordered:
                records.extend(execution.result["records"])
                if index is not None:
                    index.merge(execution.result["index"])

        pids = tuple(sorted({execution.worker_pid for execution in ordered}))
        wall = time.monotonic() - started
        telemetry.observe("parse.wall", wall)
        telemetry.gauge("parse.shards", len(shards))
        telemetry.gauge("parse.worker_processes", len(pids))
        parse_span.set(shards=len(shards))
        parsed = ParsedArchive(
            records=records,
            index=index,
            shards=len(shards),
            workers=pool.workers,
            worker_pids=pids,
            wall_seconds=wall,
        )
        telemetry.gauge("parse.shard_utilization", parsed.shard_utilization)
        return parsed


@dataclasses.dataclass
class StreamedParse:
    """The outcome of streaming one archive file through the parser.

    Unlike :class:`ParsedArchive`, records are **not retained** unless
    asked for: the streaming path exists so that multi-GB archives parse
    and index with memory bounded by ``max_shard_bytes``, independent of
    corpus size.

    Attributes:
        record_count: records parsed across all byte-ranges.
        bytes_total: archive bytes consumed.
        ranges: shard byte-ranges the file was cut into.
        shards: number of ranges (== ``len(ranges)``).
        workers: worker processes requested.
        worker_pids: distinct process ids that executed ranges.
        wall_seconds: end-to-end wall time.
        index: the :class:`~repro.bugdb.segments.SegmentedTextIndex`
            the parse appended write-ahead segments to, when an
            ``index_dir`` was given; None otherwise.
        records: parsed records in archive order when
            ``keep_records=True`` (byte-identical to the serial
            reference path); None otherwise.
    """

    record_count: int
    bytes_total: int
    ranges: list[ByteRange]
    workers: int
    worker_pids: tuple[int, ...]
    wall_seconds: float
    index: SegmentedTextIndex | None
    records: list[Any] | None

    @property
    def shards(self) -> int:
        return len(self.ranges)

    @property
    def mb_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.bytes_total / (1024 * 1024) / self.wall_seconds

    @property
    def records_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.record_count / self.wall_seconds


def _index_range_records(
    fmt: ArchiveFormat, records: list[Any], index_root: Path, name: str
) -> str | None:
    """Stage one write-ahead segment for a range's records (local ids).

    ``name`` must come from
    :meth:`SegmentedTextIndex.reserve_segment_names` so a re-run against
    an existing index never clobbers previously committed segments.
    """
    if not records:
        return None
    partial: TextIndex[int] = TextIndex()
    for local, record in enumerate(records):
        partial.add(local, fmt.index_text(record))
    segment_from_index(index_root, name, partial)
    return name


def _stream_shard_runner(unit: WorkUnit, context: Any) -> dict[str, Any]:
    """Parse one byte-range (worker side).

    Workers read their own range straight from the file — the archive
    text never crosses the fork or the result queue.  When indexing,
    the worker writes a staged write-ahead segment under local ids and
    sends back only its name; the parent later assigns doc bases by
    committing segments in range order.
    """
    fmt, path, ranges, index_root, wal_names, keep_records = context
    params = unit.params_dict()
    position = params["range"]
    byte_range = ranges[position]
    records = [fmt.parse_record(chunk) for chunk in fmt.split(read_range(path, byte_range))]
    segment = None
    if index_root is not None:
        segment = _index_range_records(fmt, records, index_root, wal_names[position])
    return {
        "count": len(records),
        "segment": segment,
        "records": records if keep_records else None,
    }


def parse_archive_streamed(
    fmt: ArchiveFormat,
    path: str | os.PathLike,
    *,
    max_shard_bytes: int = DEFAULT_MAX_SHARD_BYTES,
    workers: int = 1,
    telemetry: Telemetry | None = None,
    index_dir: str | os.PathLike | None = None,
    keep_records: bool = False,
    consumer: Callable[[int, list[Any]], None] | None = None,
) -> StreamedParse:
    """Parse an archive **file** in byte-range shards with bounded memory.

    Shards are record-aligned byte-ranges of at most ``max_shard_bytes``
    (see :mod:`repro.pipeline.streamsplit`); each is read, split, and
    parsed independently, so peak memory tracks the shard budget — not
    the archive.  With ``index_dir`` (requires the format to define
    ``index_text``), every shard stages a write-ahead index segment and
    the parent commits them in range order: the resulting
    :class:`SegmentedTextIndex` is query-identical to indexing the whole
    archive serially under global positional ids.

    ``consumer(range_index, records)`` receives each range's records in
    archive order.  On the serial path records stream straight to the
    consumer and are dropped; with ``workers > 1`` records return
    through the result queue first (use serial streaming when the
    archive is too large to rematerialize).  ``keep_records=True``
    additionally retains the full record list on the result.
    """
    telemetry = telemetry if telemetry is not None else Telemetry()
    path = Path(path)
    if index_dir is not None and fmt.index_text is None:
        raise ValueError(
            f"format {fmt.application.value} defines no index_text; "
            "cannot build a segmented index"
        )
    index = SegmentedTextIndex(index_dir) if index_dir is not None else None
    index_root = index.root if index is not None else None

    with obs.span(
        f"stream:parse:{fmt.application.value}", workers=max(1, workers)
    ) as stream_span:
        started = time.monotonic()
        with telemetry.timed("stream.split"):
            ranges = format_byte_ranges(fmt, path, max_shard_bytes=max_shard_bytes)
        bytes_total = sum(byte_range.size for byte_range in ranges)
        telemetry.count("stream.ranges", len(ranges))
        telemetry.count("stream.bytes", bytes_total)
        stream_span.set(ranges=len(ranges), bytes=bytes_total)

        pool = WorkerPool(max(1, workers))
        kept: list[Any] | None = [] if keep_records else None
        # Reserve one staged-segment name per range up front: names come
        # from the index's persistent id counter, so a second run against
        # the same index_dir appends new segments instead of overwriting
        # the earlier run's wal-*.seg files.
        wal_names = index.reserve_segment_names(len(ranges)) if index is not None else []
        segment_names: list[str] = []
        record_count = 0

        if not pool.parallel or len(ranges) < 2:
            for position, byte_range in enumerate(ranges):
                with telemetry.timed("stream.range.wall"):
                    records = [
                        fmt.parse_record(chunk)
                        for chunk in fmt.split(read_range(path, byte_range))
                    ]
                    if index_root is not None:
                        name = _index_range_records(
                            fmt, records, index_root, wal_names[position]
                        )
                        if name is not None:
                            segment_names.append(name)
                record_count += len(records)
                if consumer is not None:
                    consumer(position, records)
                if kept is not None:
                    kept.extend(records)
            pids: tuple[int, ...] = (os.getpid(),)
        else:
            units = [
                WorkUnit.build(
                    KIND_STREAM_SHARD,
                    f"{fmt.application.value}:range{position:06d}",
                    params={
                        "range": position,
                        "start": byte_range.start,
                        "end": byte_range.end,
                    },
                )
                for position, byte_range in enumerate(ranges)
            ]
            executions: dict[str, UnitExecution] = {}

            def on_unit(execution: UnitExecution) -> None:
                executions[execution.key] = execution
                telemetry.observe("stream.range.wall", execution.wall_seconds)
                telemetry.observe("stream.range.queue", execution.queue_seconds)

            pool.execute(
                units,
                _stream_shard_runner,
                (
                    fmt,
                    path,
                    ranges,
                    index_root,
                    wal_names,
                    keep_records or consumer is not None,
                ),
                on_unit=on_unit,
            )
            ordered = assemble_results(units, executions)
            for position, execution in enumerate(ordered):
                result = execution.result
                record_count += result["count"]
                if result["segment"] is not None:
                    segment_names.append(result["segment"])
                if consumer is not None:
                    consumer(position, result["records"] or [])
                if kept is not None:
                    kept.extend(result["records"] or [])
            pids = tuple(sorted({execution.worker_pid for execution in ordered}))

        if index is not None and segment_names:
            with obs.span("stream:commit", segments=len(segment_names)):
                index.commit_segments(segment_names)

        wall = time.monotonic() - started
        telemetry.observe("stream.wall", wall)
        telemetry.count("stream.records", record_count)
        telemetry.gauge("stream.worker_processes", len(pids))
        stream_span.set(records=record_count, shards=len(ranges))
        return StreamedParse(
            record_count=record_count,
            bytes_total=bytes_total,
            ranges=ranges,
            workers=pool.workers,
            worker_pids=pids,
            wall_seconds=wall,
            index=index,
            records=kept,
        )
