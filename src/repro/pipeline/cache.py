"""Content-addressed on-disk cache for parsed archives and mined results.

Keys are the SHA-256 of the raw archive text plus a stage *tag* carrying
the application and parser/miner version (see
:class:`~repro.pipeline.formats.ArchiveFormat`).  Identical bytes mined
by identical code hit; anything else -- a changed archive, a bumped
parser, a different application -- misses into a different file.  There
is deliberately no mtime or TTL logic: content addressing plus version
tags *is* the invalidation policy, with :meth:`ParseMineCache.
invalidate` as the explicit escape hatch (and ``repro mine run
--no-cache`` bypassing the cache entirely).

Entries are JSON files under ``cache_dir/<digest[:2]>/<digest>.<tag>.json``,
written atomically (temp file + rename) so a crashed writer can never
leave a half-entry that later reads as a hit.  Corrupt or unreadable
entries are treated as misses, matching the journal's crash-safety
stance in :mod:`repro.harness.journal`.

This mirrors the per-file analysis caches used for whole-kernel sweeps
in *Faults in Linux 2.6* (Palix et al.): re-running over an unchanged
input is a hash lookup, not a re-parse.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any

from repro import obs

#: Cache format version, embedded in every payload for debuggability.
CACHE_FORMAT_VERSION = 1


def archive_digest(text: str) -> str:
    """SHA-256 hex digest of raw archive text (the cache's content key)."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def archive_file_digest(path: str | Path, *, block_size: int = 1 << 20) -> str:
    """SHA-256 of an archive file, streamed in blocks.

    Equals :func:`archive_digest` of the file's decoded text (the file
    is the UTF-8 encoding), so file-fed and text-fed pipeline runs share
    cache entries.
    """
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        while True:
            block = handle.read(block_size)
            if not block:
                break
            digest.update(block)
    return digest.hexdigest()


class ParseMineCache:
    """On-disk parse/mine cache rooted at ``cache_dir``.

    The directory is created lazily on first store, so constructing a
    cache never touches the filesystem.  Hit/miss counts accumulate on
    the instance for telemetry.
    """

    def __init__(self, cache_dir: str | Path):
        self.root = Path(cache_dir)
        self.hits = 0
        self.misses = 0

    def _entry_path(self, digest: str, tag: str) -> Path:
        return self.root / digest[:2] / f"{digest}.{tag}.json"

    def load(self, digest: str, tag: str) -> dict[str, Any] | None:
        """The stored payload for (digest, tag), or None on a miss.

        Corrupt or unreadable entries are misses, never errors.
        """
        path = self._entry_path(digest, tag)
        with obs.span("cache:load", tag=tag) as load_span:
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError, UnicodeDecodeError):
                self.misses += 1
                load_span.set(hit=False)
                return None
            if (
                not isinstance(payload, dict)
                or payload.get("cache_format") != CACHE_FORMAT_VERSION
            ):
                self.misses += 1
                load_span.set(hit=False)
                return None
            self.hits += 1
            load_span.set(hit=True)
            return payload.get("data", {})

    def store(self, digest: str, tag: str, data: dict[str, Any]) -> Path:
        """Atomically write a payload for (digest, tag); returns its path."""
        path = self._entry_path(digest, tag)
        with obs.span("cache:store", tag=tag):
            path.parent.mkdir(parents=True, exist_ok=True)
            payload = {
                "cache_format": CACHE_FORMAT_VERSION,
                "digest": digest,
                "tag": tag,
                "data": data,
            }
            handle, temp_name = tempfile.mkstemp(
                dir=path.parent, prefix=path.name, suffix=".tmp"
            )
            try:
                with os.fdopen(handle, "w", encoding="utf-8") as stream:
                    json.dump(payload, stream, separators=(",", ":"))
                os.replace(temp_name, path)
            except BaseException:
                try:
                    os.unlink(temp_name)
                except OSError:
                    pass
                raise
            return path

    def entry_paths(self, digest: str | None = None) -> list[Path]:
        """All entry files, optionally restricted to one archive digest."""
        if not self.root.is_dir():
            return []
        pattern = f"{digest}.*.json" if digest else "*.json"
        return sorted(
            path for bucket in self.root.iterdir() if bucket.is_dir()
            for path in bucket.glob(pattern)
        )

    def entry_count(self) -> int:
        """Number of cache entries on disk."""
        return len(self.entry_paths())

    def invalidate(self, digest: str | None = None) -> int:
        """Explicitly drop entries; returns how many were removed.

        Args:
            digest: drop only entries for this archive digest; None
                drops every entry under the cache root.
        """
        removed = 0
        for path in self.entry_paths(digest):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def stats(self) -> dict[str, int]:
        """Hit/miss counters accumulated by this instance."""
        return {"hits": self.hits, "misses": self.misses}
