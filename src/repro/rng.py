"""Deterministic random-number helpers.

Every stochastic component in this library (noise-report generation,
thread-scheduler interleaving, environment perturbation on retry) draws
from a :class:`random.Random` instance derived here, never from the global
``random`` module, so that corpora and simulations are reproducible from a
single seed.

Seeds are derived by hashing a parent seed together with a string *label*
(stable across Python processes, unlike ``hash()``), so independent
subsystems get independent, stable streams.
"""

from __future__ import annotations

import hashlib
import random

DEFAULT_SEED = 20000625  # DSN 2000 (June 25-28, 2000)


def derive_seed(parent_seed: int, label: str) -> int:
    """Derive a child seed from ``parent_seed`` and a stable string label.

    Uses SHA-256 so the derivation is stable across processes and Python
    versions (``hash()`` is salted and unsuitable).

    Args:
        parent_seed: the parent stream's seed.
        label: a short, unique name for the child stream.

    Returns:
        A 63-bit non-negative integer seed.
    """
    digest = hashlib.sha256(f"{parent_seed}:{label}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") & 0x7FFF_FFFF_FFFF_FFFF


def make_rng(seed: int = DEFAULT_SEED, label: str = "") -> random.Random:
    """Create an isolated :class:`random.Random` for one subsystem.

    Args:
        seed: parent seed; defaults to the library-wide default.
        label: optional stream label; distinct labels give independent
            streams even under the same parent seed.

    Returns:
        A freshly seeded ``random.Random`` instance.
    """
    if label:
        seed = derive_seed(seed, label)
    return random.Random(seed)
