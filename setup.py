"""Legacy setup shim.

The project is configured through ``pyproject.toml``; this file exists
so editable installs work on machines without network access to build
backends (``pip install -e . --no-build-isolation --no-use-pep517``).
"""

from setuptools import setup

setup()
