"""Availability of a long-running service under each recovery technique.

An extension of the paper's conclusion: since generic recovery survives
only the 5-14% transient slice, the availability of a service protected
by process pairs is dominated by the faults it *cannot* survive.  This
script simulates five years of service with faults drawn from the study
population (common random numbers across techniques) and prints the
availability each recovery technique delivers.

Run with::

    python examples/availability_simulation.py
"""

from repro.corpus import full_study
from repro.recovery import (
    CheckpointRollback,
    ProcessPairs,
    ProgressiveRetry,
    RestartFresh,
    SoftwareRejuvenation,
    replay_study,
    simulate_availability,
)
from repro.recovery.availability import AvailabilityParameters
from repro.reports import format_table


def main() -> None:
    study = full_study()
    parameters = AvailabilityParameters(
        mean_time_between_faults_hours=24 * 7,   # one fault a week
        recovery_attempt_seconds=30.0,
        manual_repair_hours=4.0,
    )

    rows = []
    for factory in (
        ProcessPairs,
        CheckpointRollback,
        ProgressiveRetry,
        RestartFresh,
        SoftwareRejuvenation,
    ):
        report = replay_study(study, factory)
        result = simulate_availability(report, parameters=parameters)
        rows.append(
            [
                result.technique,
                result.fault_arrivals,
                result.automatic_recoveries,
                result.manual_repairs,
                f"{result.availability:.4%}",
                f"{result.nines:.2f}",
            ]
        )

    print(
        format_table(
            ["technique", "faults", "auto-recovered", "operator pages", "availability", "nines"],
            rows,
            title="Five simulated years, one study-distributed fault per week",
        )
    )
    print()
    print(
        "Every technique's availability is within a fraction of a percent of\n"
        "the others: the unsurvivable (mostly environment-independent) fault\n"
        "majority sets the availability budget, exactly as the paper argues.\n"
        "Buying better generic recovery cannot buy another nine; fixing or\n"
        "preventing deterministic bugs can."
    )


if __name__ == "__main__":
    main()
