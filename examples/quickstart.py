"""Quickstart: load the study, print Tables 1-3 and the headline numbers.

Run with::

    python examples/quickstart.py
"""

from repro import Application, FaultClass, full_study
from repro.analysis import aggregate_summary, classification_table
from repro.reports import render_classification_table


def main() -> None:
    study = full_study()

    for application in Application:
        table = classification_table(study.corpus(application))
        print(render_classification_table(table))
        print()

    summary = aggregate_summary(study)
    ei_low, ei_high = summary.fraction_range(FaultClass.ENV_INDEPENDENT)
    edt_low, edt_high = summary.fraction_range(FaultClass.ENV_DEP_TRANSIENT)

    print(f"Total study faults: {summary.total_faults}")
    print(
        f"Environment-dependent-nontransient: "
        f"{summary.counts[FaultClass.ENV_DEP_NONTRANSIENT]} "
        f"({summary.fraction(FaultClass.ENV_DEP_NONTRANSIENT):.0%})"
    )
    print(
        f"Environment-dependent-transient:    "
        f"{summary.counts[FaultClass.ENV_DEP_TRANSIENT]} "
        f"({summary.fraction(FaultClass.ENV_DEP_TRANSIENT):.0%})"
    )
    print(f"Environment-independent share across apps: {ei_low:.0%}-{ei_high:.0%}")
    print(f"Transient (generic-recoverable) share:     {edt_low:.0%}-{edt_high:.0%}")
    print()
    print(
        "Conclusion (matching the paper): classical application-generic "
        "recovery can address only the transient slice -- a small minority "
        "of the faults that ship in released software."
    )


if __name__ == "__main__":
    main()
