"""Why did Tandem's process pairs report 82%?  Section 7, executable.

Lee & Iyer measured 82% process-pair recovery on Tandem GUARDIAN; this
paper estimates only 5-14% of application faults are generically
survivable.  Section 7 reconciles the two: most Tandem recoveries came
from effects a *purely* generic mechanism doesn't have.  This script
shows both halves:

1. the published arithmetic (82% minus the non-generic effects = 29%);
2. the dominant mechanism -- *error latency* -- demonstrated: a backup
   whose checkpoint predates the state corruption "recovers" faults that
   a perfectly synchronised (truly generic) backup re-creates.

Run with::

    python examples/lee_iyer_explained.py
"""

from repro.analysis import lee_iyer_reconciliation
from repro.recovery import (
    LatencyExperiment,
    recovery_rate_with_random_latency,
    sweep_checkpoint_age,
)
from repro.reports import format_table


def main() -> None:
    reconciliation = lee_iyer_reconciliation()
    print(
        format_table(
            ["step", "recovery rate"],
            [[desc, f"{rate:.2f}"] for desc, rate in reconciliation.steps()],
            title="The published reconciliation (Section 7)",
        )
    )
    print()

    experiment = LatencyExperiment(leak_limit=100, task_operations=40)
    outcomes = sweep_checkpoint_age(experiment, ages=tuple(range(0, 101, 10)))
    print(
        format_table(
            ["checkpoint age (ops before crash)", "restored leak", "retry survives"],
            [
                [outcome.checkpoint_age, outcome.restored_leak, "yes" if outcome.survived else "no"]
                for outcome in outcomes
            ],
            title="Error latency: staleness 'recovers' what synchrony re-creates",
        )
    )
    print()

    tight = recovery_rate_with_random_latency(LatencyExperiment(leak_limit=50, task_operations=40))
    loose = recovery_rate_with_random_latency(LatencyExperiment(leak_limit=400, task_operations=40))
    print(
        format_table(
            ["system", "apparent recovery rate"],
            [
                ["tight (corruption crashes fast, limit=50)", f"{tight:.0%}"],
                ["leaky (long error latency, limit=400)", f"{loose:.0%}"],
            ],
            title="Uniform-random checkpoint age (the field-data situation)",
        )
    )
    print()
    print(
        "The leakier system scores higher with zero real fault-tolerance\n"
        "gained -- which is why field process-pair numbers overstate what a\n"
        "purely generic mechanism can do, and why this paper re-reads 82% as\n"
        "29% (and its own data as 5-14%)."
    )


if __name__ == "__main__":
    main()
