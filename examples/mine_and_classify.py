"""Mine the three raw archives end to end and classify the survivors.

This is the paper's whole methodology in one script: render the 1999-style
raw archives (GNATS dump, debbugs log, mbox mailing list) around the study
faults, parse them back, narrow them with each application's mining
pipeline, classify every unique bug from its free text, and print the
narrowing traces plus the resulting Tables 1-3.

Run with::

    python examples/mine_and_classify.py [--full-scale]

``--full-scale`` uses the paper's archive sizes (5220 Apache reports,
~500 GNOME reports, ~44,000 MySQL messages); the default is a 10x-reduced
MySQL archive and ~600-report Apache archive for speed.
"""

import sys

from repro import Application
from repro.analysis import classify_and_tabulate
from repro.bugdb import debbugs, gnats, mbox
from repro.corpus import apache_corpus, gnome_corpus, mysql_corpus
from repro.corpus.render import apache_raw_archive, gnome_raw_archive, mysql_raw_archive
from repro.mining import GNOME_STUDY_COMPONENTS, mine_apache, mine_gnome, mine_mysql
from repro.reports import render_classification_table


def main(full_scale: bool = False) -> None:
    apache_total = None if full_scale else 600
    mysql_total = None if full_scale else 4400

    print("== Apache: GNATS archive ==")
    archive = apache_raw_archive(apache_corpus(), total_reports=apache_total)
    reports = gnats.parse_archive(archive)
    result = mine_apache(reports)
    for stage, survivors in result.trace.as_rows():
        print(f"  {stage:35s} {survivors}")
    table = classify_and_tabulate(Application.APACHE, result.items)
    print(render_classification_table(table))
    print()

    print("== GNOME: debbugs archive ==")
    archive = gnome_raw_archive(gnome_corpus(), study_components=GNOME_STUDY_COMPONENTS)
    reports = debbugs.parse_archive(archive)
    result = mine_gnome(reports)
    for stage, survivors in result.trace.as_rows():
        print(f"  {stage:35s} {survivors}")
    table = classify_and_tabulate(Application.GNOME, result.items)
    print(render_classification_table(table))
    print()

    print("== MySQL: mailing-list mbox archive ==")
    archive = mysql_raw_archive(mysql_corpus(), total_messages=mysql_total)
    messages = mbox.parse_archive(archive)
    result = mine_mysql(messages)
    for stage, survivors in result.trace.as_rows():
        print(f"  {stage:35s} {survivors}")
    table = classify_and_tabulate(Application.MYSQL, result.items)
    print(render_classification_table(table))


if __name__ == "__main__":
    main(full_scale="--full-scale" in sys.argv[1:])
