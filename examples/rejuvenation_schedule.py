"""The administrator's rejuvenation-scheduling problem (Section 6.2).

Apache's leak-style fault ("shared memory segment keeps growing ...")
is environment-dependent-nontransient: generic recovery preserves the
leak, so it cannot help.  What web administrators actually did — and the
paper records it — is *rejuvenation*: restart Apache with a HUP signal
on a schedule.  This script sweeps the schedule and shows the interior
availability optimum: too late and the leak kills the server anyway,
too eager and the planned restarts themselves eat the uptime.

Run with::

    python examples/rejuvenation_schedule.py
"""

from repro.recovery import LeakModel, sweep_rejuvenation_interval
from repro.reports import format_table


def main() -> None:
    leak = LeakModel(
        leak_per_request=1.0,
        failure_threshold=10_000.0,
        requests_per_hour=500.0,  # 20 hours of uptime until the leak kills httpd
    )
    intervals = (None, 0.5, 2.0, 8.0, 15.0, 19.0, 30.0)

    results = sweep_rejuvenation_interval(
        intervals,
        leak,
        rejuvenation_downtime_minutes=10.0,
        crash_repair_hours=1.0,
        duration_hours=24.0 * 90,
    )

    rows = []
    for interval, outcome in results:
        rows.append(
            [
                "never (baseline)" if interval is None else f"every {interval:g} h",
                outcome.crashes,
                outcome.rejuvenations,
                f"{outcome.downtime_hours:.1f} h",
                f"{outcome.availability:.4%}",
            ]
        )

    print(
        format_table(
            ["schedule", "crashes", "rejuvenations", "downtime", "availability"],
            rows,
            title=(
                "90 days of a leaking server (leak kills httpd after 20 h of uptime)"
            ),
        )
    )
    print()
    print(
        "The sweet spot sits just under the time-to-failure: every planned\n"
        "restart replaces an unplanned crash at a fraction of the downtime.\n"
        "This is application-specific recovery -- exactly what the paper says\n"
        "the nontransient majority requires."
    )


if __name__ == "__main__":
    main()
