"""Replay every study fault under each recovery technique (Section 8).

The paper's future work -- "implement applications like Apache and MySQL
using various fault-tolerant techniques and test how well they recover
from the bugs reported in error logs" -- executed against the mini
applications: every curated fault is injected into the matching mini
application, triggered with the environment the bug report describes,
and each recovery technique gets its budget of attempts.

Run with::

    python examples/recovery_replay.py
"""

from repro.bugdb.enums import FaultClass
from repro.corpus import full_study
from repro.recovery import (
    CheckpointRollback,
    ProcessPairs,
    ProgressiveRetry,
    RestartFresh,
    SoftwareRejuvenation,
    replay_study,
)
from repro.reports import format_table


def main() -> None:
    study = full_study()
    factories = (
        ProcessPairs,
        CheckpointRollback,
        ProgressiveRetry,
        RestartFresh,
        SoftwareRejuvenation,
    )

    rows = []
    for factory in factories:
        report = replay_study(study, factory)
        technique = factory()
        rows.append(
            [
                report.technique,
                "yes" if technique.application_generic else "no",
                f"{report.survival_rate(FaultClass.ENV_INDEPENDENT):.0%}",
                f"{report.survival_rate(FaultClass.ENV_DEP_NONTRANSIENT):.0%}",
                f"{report.survival_rate(FaultClass.ENV_DEP_TRANSIENT):.0%}",
                f"{report.survival_rate():.0%}",
            ]
        )

    print(
        format_table(
            ["technique", "generic", "EI survived", "EDN survived", "EDT survived", "overall"],
            rows,
            title="Generic-recovery replay over all 139 study faults",
        )
    )
    print()
    print(
        "Reading: purely generic techniques (process pairs, rollback) survive\n"
        "only the environment-dependent-transient faults -- the paper's point.\n"
        "Techniques that discard state (restart, rejuvenation) also survive the\n"
        "leak-style nontransient faults, which is exactly why Tandem's impure\n"
        "process pairs looked better in Lee & Iyer's field data (Section 7)."
    )


if __name__ == "__main__":
    main()
