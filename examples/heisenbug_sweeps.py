"""Heisenbug survival curves: retry budget and race-window sweeps.

Section 6.3: "retrying the same operation at a later time will usually
succeed" for transient faults.  How usually?  This script sweeps the two
knobs that answer that: the recovery retry budget (survival approaches
certainty geometrically) and the width of the racy interleaving window
(wider windows need bigger budgets).

Run with::

    python examples/heisenbug_sweeps.py
"""

from repro.corpus import full_study
from repro.recovery import CheckpointRollback, sweep_race_window, sweep_retry_budget
from repro.reports import format_table


def main() -> None:
    study = full_study()

    budget_points = sweep_retry_budget(
        study,
        lambda budget: CheckpointRollback(max_attempts=budget),
        budgets=(1, 2, 3, 4, 6, 8),
        race_window=0.5,
        replications=8,
    )
    print(
        format_table(
            ["retry budget", "timing faults survived", "survival rate"],
            [
                [int(point.parameter), f"{point.survived}/{point.total}", f"{point.survival_rate:.0%}"]
                for point in budget_points
            ],
            title="Retry-budget sweep (race window 0.5)",
        )
    )
    print()

    window_points = sweep_race_window(
        study,
        CheckpointRollback,
        windows=(0.05, 0.1, 0.25, 0.5, 0.75, 0.95),
        replications=8,
    )
    print(
        format_table(
            ["race window", "timing faults survived", "survival rate"],
            [
                [point.parameter, f"{point.survived}/{point.total}", f"{point.survival_rate:.0%}"]
                for point in window_points
            ],
            title="Race-window sweep (3 retries)",
        )
    )
    print()
    print(
        "Retry budgets tame Heisenbugs quickly -- but remember the paper's\n"
        "denominator: these curves cover only the 12 of 139 faults that are\n"
        "transient in the first place."
    )


if __name__ == "__main__":
    main()
