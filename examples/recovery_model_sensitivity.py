"""Recovery-model sensitivity: moving the transient/nontransient boundary.

Section 5.4 concedes that "classifying bugs between environment-
dependent-transient and environment-dependent-nontransient classes is
subjective and depends upon the recovery system in place."  This script
makes that dependence concrete: it reclassifies all 139 faults under
different :class:`~repro.classify.recovery_model.RecoveryModel`
assumptions and shows how Tables 1-3 shift -- and that the
environment-independent majority (the paper's main point) never moves.

Run with::

    python examples/recovery_model_sensitivity.py
"""

from repro import Application, FaultClass, TextClassifier, full_study
from repro.classify.recovery_model import (
    ELASTIC_ENVIRONMENT,
    PAPER_DEFAULT,
    RESTART_FRESH,
    RecoveryModel,
)
from repro.reports import format_table

MODELS = (
    ("paper default", PAPER_DEFAULT),
    ("restart-fresh (loses state)", RESTART_FRESH),
    ("elastic environment (6.2 mitigations)", ELASTIC_ENVIRONMENT),
    (
        "pessimal (no process kill, no repair)",
        RecoveryModel(kills_application_processes=False, expects_external_repair=False),
    ),
)


def main() -> None:
    study = full_study()
    rows = []
    for label, model in MODELS:
        classifier = TextClassifier(model)
        counts = {fault_class: 0 for fault_class in FaultClass}
        for application in Application:
            corpus = study.corpus(application)
            for report in corpus.to_reports(attach_evidence=True):
                counts[classifier.classify_report(report).fault_class] += 1
        total = sum(counts.values())
        rows.append(
            [
                label,
                counts[FaultClass.ENV_INDEPENDENT],
                counts[FaultClass.ENV_DEP_NONTRANSIENT],
                counts[FaultClass.ENV_DEP_TRANSIENT],
                f"{counts[FaultClass.ENV_DEP_TRANSIENT] / total:.0%}",
            ]
        )

    print(
        format_table(
            ["recovery model", "EI", "EDN", "EDT", "generic-recoverable"],
            rows,
            title="All 139 faults reclassified under different recovery systems",
        )
    )
    print()
    print(
        "The environment-independent column never moves: no recovery system\n"
        "turns a deterministic bug into a transient one.  Even the most\n"
        "generous environment (elastic storage + OS-resource reclamation)\n"
        "leaves the large environment-independent majority unsurvivable by\n"
        "application-generic recovery."
    )


if __name__ == "__main__":
    main()
