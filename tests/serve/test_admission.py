"""Admission control: buckets, backpressure, quotas, drain -- all on a
fake clock, so every decision is deterministic."""

import pytest

from repro.serve.admission import (
    REASON_DRAINING,
    REASON_QUEUE_FULL,
    REASON_QUOTA,
    AdmissionController,
    TokenBucket,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestTokenBucket:
    def test_burst_then_exhaustion(self):
        clock = FakeClock()
        bucket = TokenBucket(3, 1.0, clock=clock)
        assert all(bucket.try_acquire() for _ in range(3))
        assert not bucket.try_acquire()

    def test_refill_restores_tokens(self):
        clock = FakeClock()
        bucket = TokenBucket(2, 0.5, clock=clock)
        bucket.try_acquire(), bucket.try_acquire()
        assert not bucket.try_acquire()
        clock.advance(2.0)  # 2 s * 0.5/s = 1 token
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_refill_caps_at_capacity(self):
        clock = FakeClock()
        bucket = TokenBucket(2, 10.0, clock=clock)
        clock.advance(100.0)
        assert bucket.available == pytest.approx(2.0)

    def test_zero_refill_never_recovers(self):
        clock = FakeClock()
        bucket = TokenBucket(1, 0.0, clock=clock)
        assert bucket.try_acquire()
        clock.advance(1e6)
        assert not bucket.try_acquire()

    @pytest.mark.parametrize("capacity,rate", [(0, 1.0), (-1, 1.0), (1, -0.1)])
    def test_invalid_parameters(self, capacity, rate):
        with pytest.raises(ValueError):
            TokenBucket(capacity, rate)


class TestBackpressure:
    def test_bound_is_enforced(self):
        controller = AdmissionController(max_pending=2)
        assert controller.admit("a").admitted
        assert controller.admit("b").admitted
        decision = controller.admit("c")
        assert not decision.admitted
        assert decision.reason == REASON_QUEUE_FULL

    def test_release_reopens_a_slot(self):
        controller = AdmissionController(max_pending=1)
        assert controller.admit("a").admitted
        assert not controller.admit("a").admitted
        controller.release()
        assert controller.admit("a").admitted

    def test_unmatched_release_raises(self):
        controller = AdmissionController(max_pending=1)
        with pytest.raises(RuntimeError):
            controller.release()

    def test_max_pending_validated(self):
        with pytest.raises(ValueError):
            AdmissionController(max_pending=0)


class TestQuotas:
    def test_per_client_exhaustion(self):
        clock = FakeClock()
        controller = AdmissionController(
            max_pending=100, quota_capacity=2, clock=clock
        )
        assert controller.admit("greedy").admitted
        assert controller.admit("greedy").admitted
        decision = controller.admit("greedy")
        assert not decision.admitted and decision.reason == REASON_QUOTA

    def test_clients_are_isolated(self):
        clock = FakeClock()
        controller = AdmissionController(
            max_pending=100, quota_capacity=1, clock=clock
        )
        assert controller.admit("greedy").admitted
        assert not controller.admit("greedy").admitted
        assert controller.admit("polite").admitted  # unaffected

    def test_refill_restores_quota(self):
        clock = FakeClock()
        controller = AdmissionController(
            max_pending=100,
            quota_capacity=1,
            quota_refill_per_second=1.0,
            clock=clock,
        )
        assert controller.admit("a").admitted
        assert not controller.admit("a").admitted
        clock.advance(1.0)
        assert controller.admit("a").admitted

    def test_full_queue_does_not_burn_tokens(self):
        clock = FakeClock()
        controller = AdmissionController(
            max_pending=1, quota_capacity=1, clock=clock
        )
        assert controller.admit("a").admitted
        # Queue is full: client b is rejected for backpressure, and the
        # rejection must not consume b's only token.
        decision = controller.admit("b")
        assert decision.reason == REASON_QUEUE_FULL
        controller.release()
        assert controller.admit("b").admitted


class TestDrain:
    def test_drain_rejects_everything(self):
        controller = AdmissionController(max_pending=10)
        assert controller.admit("a").admitted
        controller.begin_drain()
        decision = controller.admit("b")
        assert not decision.admitted and decision.reason == REASON_DRAINING

    def test_drain_wins_over_quota_and_queue(self):
        clock = FakeClock()
        controller = AdmissionController(
            max_pending=1, quota_capacity=1, clock=clock
        )
        assert controller.admit("a").admitted  # queue now full, quota spent
        controller.begin_drain()
        assert controller.admit("a").reason == REASON_DRAINING

    def test_inflight_unaffected(self):
        controller = AdmissionController(max_pending=2)
        controller.admit("a")
        controller.begin_drain()
        assert controller.pending == 1
        controller.release()
        assert controller.pending == 0


class TestSnapshot:
    def test_counters_track_decisions(self):
        clock = FakeClock()
        controller = AdmissionController(
            max_pending=1, quota_capacity=1, clock=clock
        )
        controller.admit("a")       # admitted
        controller.admit("b")       # queue-full
        controller.release()
        controller.admit("a")       # quota-exhausted
        controller.begin_drain()
        controller.admit("a")       # draining
        snapshot = controller.snapshot()
        assert snapshot["admitted"] == 1
        assert snapshot["rejected_queue"] == 1
        assert snapshot["rejected_quota"] == 1
        assert snapshot["rejected_draining"] == 1
        assert snapshot["max_pending"] == 1
        assert snapshot["draining"] is True
        # Only "a" ever reached the quota check ("b" bounced off the
        # full queue first), so only one bucket exists.
        assert snapshot["clients"] == 1
