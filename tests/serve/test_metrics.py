"""The ``metrics`` request kind: exposition shape, exact reconciliation
with a closed-loop loadgen run, and the CLI scrape path."""

import shutil
import tempfile
import time
from pathlib import Path

import pytest

from repro import cli
from repro.envmodel.loadgen import LoadResult, run_closed_loop
from repro.obs.hist import (
    Histogram,
    bucket_percentile,
    exposition_buckets,
    exposition_value,
    parse_exposition,
)
from repro.serve import AdmissionController, StudyServer, StudyService
from repro.serve.protocol import STATUS_REJECTED_BUSY, Request
from repro.serve.service import RequestStats


def scrape(service):
    response = service.handle(Request(kind="metrics"))
    assert response.ok
    assert response.payload["content_type"].startswith("text/plain")
    return response.payload["text"]


class TestRequestStats:
    def test_one_observation_per_request(self):
        stats = RequestStats()
        stats.observe("ping", "ok", latency_seconds=0.001)
        stats.observe("ping", "rejected-busy", latency_seconds=0.0005)
        assert stats.requests_total() == 2
        assert stats.requests_total(kind="ping", status="ok") == 1
        assert stats.latency_histogram("ping").count == 2
        assert stats.latency_histogram("study") is None

    def test_exposition_deterministic(self):
        stats = RequestStats()
        stats.observe("ping", "ok", latency_seconds=0.001, payload_bytes=10)
        stats.observe("study", "ok", latency_seconds=0.1, payload_bytes=99)
        assert stats.exposition() == stats.exposition()

    def test_exposition_parses_strictly(self):
        stats = RequestStats()
        stats.observe("ping", "ok", latency_seconds=0.002, queue_seconds=0.0001)
        samples = parse_exposition(
            stats.exposition(uptime_seconds=1.5, counters={"x_total": 2.0})
        )
        assert exposition_value(samples, "repro_uptime_seconds") == 1.5
        assert exposition_value(samples, "x_total") == 2.0
        assert exposition_value(
            samples, "repro_request_latency_seconds_count", {"kind": "ping"}
        ) == 1


class TestMetricsKind:
    def test_scrape_parses_and_counts_prior_requests(self):
        service = StudyService()
        for _ in range(3):
            assert service.handle(Request(kind="ping")).ok
        samples = parse_exposition(scrape(service))
        assert exposition_value(
            samples, "repro_requests_total", {"kind": "ping", "status": "ok"}
        ) == 3
        assert exposition_value(samples, "repro_uptime_seconds") >= 0

    def test_inflight_scrape_excluded_then_counted(self):
        service = StudyService()
        service.handle(Request(kind="ping"))
        first = parse_exposition(scrape(service))
        assert exposition_value(
            first, "repro_requests_total", {"kind": "metrics", "status": "ok"}
        ) is None
        second = parse_exposition(scrape(service))
        assert exposition_value(
            second, "repro_requests_total", {"kind": "metrics", "status": "ok"}
        ) == 1

    def test_metrics_not_memoized(self):
        service = StudyService()
        service.handle(Request(kind="ping"))
        before = scrape(service)
        after = scrape(service)
        assert before != after  # counters moved: it was recomputed


class TestLoadgenReconciliation:
    def test_counters_reconcile_exactly_with_closed_loop_run(self):
        """The acceptance criterion: requests sent == histogram count,
        client-observed rejections == the rejected-busy counter."""
        service = StudyService(admission=AdmissionController(max_pending=2))

        def slow_ping(request):
            time.sleep(0.002)
            return {"pong": True}

        service.register_handler("ping", slow_ping)
        rejected_client_side = [0]

        def send(index):
            response = service.handle(Request(kind="ping", client=f"c{index % 4}"))
            if response.status == STATUS_REJECTED_BUSY:
                rejected_client_side[0] += 1
            elif not response.ok:
                raise RuntimeError(response.error)

        result = run_closed_loop(send, requests=60, concurrency=6)
        assert result.requests_issued == 60

        samples = parse_exposition(scrape(service))
        histogram_count = exposition_value(
            samples, "repro_request_latency_seconds_count", {"kind": "ping"}
        )
        assert histogram_count == 60
        assert exposition_value(samples, "repro_requests_total", {"kind": "ping"}) == 60
        rejected_counter = exposition_value(samples, "repro_rejected_busy_total")
        assert rejected_counter == rejected_client_side[0]
        ok = exposition_value(
            samples, "repro_requests_total", {"kind": "ping", "status": "ok"}
        ) or 0
        assert ok + rejected_client_side[0] == 60

    def test_client_and_server_percentiles_share_buckets(self):
        """Same latencies, one through LoadResult and one through the
        serve-side stats: identical percentile answers, through text."""
        latencies = [0.0004, 0.0011, 0.0012, 0.0030, 0.0200, 0.0900, 1.2]
        client = LoadResult(requests_issued=len(latencies), latencies=list(latencies))
        stats = RequestStats()
        for value in latencies:
            stats.observe("ping", "ok", latency_seconds=value)
        buckets = exposition_buckets(
            parse_exposition(stats.exposition()),
            "repro_request_latency_seconds",
            {"kind": "ping"},
        )
        for fraction in (0.5, 0.95, 0.99):
            assert bucket_percentile(buckets, fraction) == client.latency_percentile(
                fraction
            )
        assert client.latency_histogram().counts == Histogram.from_values(
            latencies
        ).counts


@pytest.fixture
def sock_dir():
    path = Path(tempfile.mkdtemp(dir="/tmp", prefix="repro-serve-metrics-"))
    yield path
    shutil.rmtree(path, ignore_errors=True)


@pytest.fixture
def server(sock_dir):
    service = StudyService(admission=AdmissionController(max_pending=8))
    server = StudyServer(service, sock_dir / "s.sock")
    server.start()
    yield server
    server.shutdown()


class TestMetricsCli:
    def test_status_metrics_prints_exposition(self, server, capsys):
        assert cli.main(
            ["serve", "request", "ping", "--socket", str(server.socket_path)]
        ) == 0
        capsys.readouterr()
        rc = cli.main(
            ["serve", "status", "--metrics", "--socket", str(server.socket_path)]
        )
        out = capsys.readouterr().out
        assert rc == 0
        samples = parse_exposition(out)  # must parse strictly
        assert exposition_value(
            samples, "repro_requests_total", {"kind": "ping", "status": "ok"}
        ) == 1

    def test_status_metrics_fails_loudly_when_daemon_dead(self, sock_dir, capsys):
        rc = cli.main(
            ["serve", "status", "--metrics", "--socket", str(sock_dir / "nope.sock")]
        )
        assert rc == 1
        assert "metrics scrape failed" in capsys.readouterr().err

    def test_request_kind_metrics(self, server, capsys):
        rc = cli.main(
            ["serve", "request", "metrics", "--socket", str(server.socket_path)]
        )
        assert rc == 0
        parse_exposition(capsys.readouterr().out)
