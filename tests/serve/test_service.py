"""The transport-free service core: digest equality with the batch
path, memoization, admission semantics, and concurrent mixed traffic."""

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import obs
from repro.serve.admission import AdmissionController
from repro.serve.protocol import (
    STATUS_ERROR,
    STATUS_OK,
    STATUS_REJECTED_BUSY,
    STATUS_SHUTTING_DOWN,
    Request,
)
from repro.serve.service import StudyService, request_key


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


@pytest.fixture(scope="module")
def service():
    """One warm cacheless service shared by the read-only tests."""
    service = StudyService(workers=1)
    service.warm()
    return service


def batch_node(name, overrides=None):
    """The batch path the CLIs use: fresh context, same study graph."""
    from repro.studygraph.context import StudyContext
    from repro.studygraph.registry import default_registry
    from repro.studygraph.scheduler import run_study

    registry = default_registry()
    if overrides:
        registry = registry.with_overrides(overrides)
    context = StudyContext.default(cache_dir=None)
    result = run_study(context, nodes=[name], outputs=[name], registry=registry)
    return result.runs[name].digest, result.outputs[name]


class TestDigestEquality:
    def test_study_matches_batch(self, service):
        response = service.handle(Request(kind="study", params={"node": "T1"}))
        assert response.ok
        digest, payload = batch_node("T1")
        assert response.payload["digest"] == digest
        assert response.payload["text"] == payload["text"]

    def test_mine_matches_batch(self, service):
        response = service.handle(
            Request(kind="mine", params={"application": "apache"})
        )
        assert response.ok
        digest, _ = batch_node("mine.apache")
        assert response.payload["digest"] == digest

    def test_replay_matches_batch(self, service):
        techniques = "restart-fresh,checkpoint-rollback"
        response = service.handle(
            Request(kind="replay", params={"techniques": techniques})
        )
        assert response.ok
        digest, _ = batch_node("E1", {"E1": {"techniques": techniques}})
        assert response.payload["digest"] == digest

    def test_study_with_overrides(self, service):
        overrides = {"E1": {"techniques": "restart-fresh"}}
        response = service.handle(
            Request(kind="study", params={"node": "E1", "overrides": overrides})
        )
        assert response.ok
        digest, _ = batch_node("E1", overrides)
        assert response.payload["digest"] == digest


class TestGridFamilies:
    def test_warm_summary_counts_grid_families(self, service):
        summary = service.warm()
        assert summary["grids"] == 5
        assert summary["grid_points"] == 105

    def test_grid_point_request_matches_batch_and_memoizes(self, service):
        params = {"node": "sweep.recovery-model[model=restart-fresh]"}
        first = service.handle(Request(kind="study", params=params))
        assert first.ok
        digest, payload = batch_node(params["node"])
        assert first.payload["digest"] == digest
        assert first.payload["text"] == payload["text"]
        before = service._counters["memo_hits"]
        second = service.handle(Request(kind="study", params=params))
        assert second.payload == first.payload
        assert service._counters["memo_hits"] == before + 1


class TestMemoization:
    def test_repeat_request_is_a_memo_hit(self, service):
        params = {"node": "catalog"}
        first = service.handle(Request(kind="study", params=params))
        before = service._counters["memo_hits"]
        second = service.handle(Request(kind="study", params=params))
        assert second.payload == first.payload
        assert service._counters["memo_hits"] == before + 1

    def test_key_is_order_insensitive(self):
        assert request_key("study", {"a": 1, "b": 2}) == request_key(
            "study", {"b": 2, "a": 1}
        )

    def test_status_is_never_memoized(self, service):
        first = service.handle(Request(kind="status"))
        second = service.handle(Request(kind="status"))
        assert first.ok and second.ok
        counted = second.payload["requests"]["requests"]
        assert counted > first.payload["requests"]["requests"]


class TestErrors:
    def test_handler_error_is_a_response(self, service):
        response = service.handle(Request(kind="study", params={}))
        assert response.status == STATUS_ERROR
        assert "node" in response.error
        # The daemon survives and keeps serving.
        assert service.handle(Request(kind="ping")).ok

    def test_unknown_node(self, service):
        response = service.handle(
            Request(kind="study", params={"node": "no-such-node"})
        )
        assert response.status == STATUS_ERROR
        assert "no-such-node" in response.error

    def test_bad_application(self, service):
        response = service.handle(
            Request(kind="mine", params={"application": "httpd"})
        )
        assert response.status == STATUS_ERROR

    def test_bad_technique(self, service):
        response = service.handle(
            Request(kind="replay", params={"techniques": "magic"})
        )
        assert response.status == STATUS_ERROR

    def test_missing_trace_file(self, service, tmp_path):
        response = service.handle(
            Request(kind="trace-summary", params={"path": str(tmp_path / "no.jsonl")})
        )
        assert response.status == STATUS_ERROR


class TestTraceSummary:
    def test_summarizes_a_recorded_trace(self, tmp_path):
        path = tmp_path / "run.trace"
        with obs.tracing(path):
            with obs.span("root"):
                with obs.span("node:inner"):
                    pass
        service = StudyService()
        response = service.handle(
            Request(kind="trace-summary", params={"path": str(path)})
        )
        assert response.ok
        assert response.payload["spans"] == 2
        assert response.payload["root"] == "root"


class TestAdmissionIntegration:
    def test_quota_exhaustion_rejects_busy(self):
        clock = FakeClock()
        service = StudyService(
            admission=AdmissionController(
                max_pending=100, quota_capacity=2, clock=clock
            )
        )
        assert service.handle(Request(kind="ping", client="g")).ok
        assert service.handle(Request(kind="ping", client="g")).ok
        rejected = service.handle(Request(kind="ping", client="g"))
        assert rejected.status == STATUS_REJECTED_BUSY
        assert rejected.error == "quota-exhausted"
        # Another client is untouched.
        assert service.handle(Request(kind="ping", client="other")).ok

    def test_backpressure_when_full(self):
        service = StudyService(admission=AdmissionController(max_pending=2))
        gate = threading.Event()
        entered = threading.Barrier(3)

        def slow(request):
            entered.wait(timeout=5)
            gate.wait(timeout=5)
            return {"slow": True}

        service.register_handler("ping", slow)
        with ThreadPoolExecutor(max_workers=2) as pool:
            futures = [
                pool.submit(service.handle, Request(kind="ping"))
                for _ in range(2)
            ]
            entered.wait(timeout=5)  # both requests hold a slot
            rejected = service.handle(Request(kind="status"))
            assert rejected.status == STATUS_REJECTED_BUSY
            assert rejected.error == "queue-full"
            gate.set()
            assert all(f.result(timeout=5).ok for f in futures)
        # Slots were released: the service admits again.
        service.register_handler("ping", lambda request: {"pong": True})
        assert service.handle(Request(kind="ping")).ok

    def test_drain_answers_shutting_down(self):
        service = StudyService()
        assert service.handle(Request(kind="ping")).ok
        service.begin_drain()
        response = service.handle(Request(kind="ping"))
        assert response.status == STATUS_SHUTTING_DOWN
        assert response.error == "draining"

    def test_error_releases_slot(self):
        service = StudyService(admission=AdmissionController(max_pending=1))
        service.register_handler("ping", lambda request: 1 / 0)
        assert service.handle(Request(kind="ping")).status == STATUS_ERROR
        assert service.admission.pending == 0


class TestConcurrentTraffic:
    def test_mixed_requests_match_serial_baseline(self, service):
        requests = [
            Request(kind="study", params={"node": "T1"}),
            Request(kind="study", params={"node": "catalog"}),
            Request(kind="mine", params={"application": "apache"}),
            Request(kind="replay", params={"techniques": "restart-fresh"}),
        ] * 4
        baseline = {}
        for request in requests:
            key = request_key(request.kind, request.params)
            if key not in baseline:
                response = service.handle(request)
                assert response.ok
                baseline[key] = response.payload["digest"]
        with ThreadPoolExecutor(max_workers=8) as pool:
            responses = list(pool.map(service.handle, requests))
        assert all(response.ok for response in responses)
        for request, response in zip(requests, responses):
            key = request_key(request.kind, request.params)
            assert response.payload["digest"] == baseline[key]

    def test_concurrent_cold_start_builds_once(self):
        service = StudyService()
        with ThreadPoolExecutor(max_workers=8) as pool:
            responses = list(
                pool.map(
                    service.handle,
                    [Request(kind="study", params={"node": "catalog"})] * 8,
                )
            )
        assert all(response.ok for response in responses)
        digests = {response.payload["digest"] for response in responses}
        assert len(digests) == 1


class TestStatusAndMonitor:
    def test_status_reports_health_and_counters(self, tmp_path):
        monitor = obs.RunMonitor(tmp_path / "live.json", label="serve")
        monitor.run_started(total=0, workers=1, pending=[])
        service = StudyService(monitor=monitor)
        service.handle(Request(kind="ping"))
        response = service.handle(Request(kind="status"))
        assert response.ok
        payload = response.payload
        assert payload["healthz"]["healthy"] is True
        assert payload["requests"]["ok"] >= 1
        assert payload["admission"]["max_pending"] >= 1
        assert payload["warm"]["faults"] > 0

    def test_monitor_heartbeats_per_request(self, tmp_path):
        monitor = obs.RunMonitor(
            tmp_path / "live.json", label="serve", interval=0.0
        )
        monitor.run_started(total=0, workers=1, pending=[])
        service = StudyService(monitor=monitor)
        service.handle(Request(kind="ping"))
        snapshot = obs.read_snapshot(tmp_path / "live.json")
        assert snapshot["done"] == 1
        assert snapshot["info"]["queue_depth"] == 0
