"""The unix-socket daemon: wire round trips, concurrent clients,
backpressure under load, graceful drain, and stale-socket recovery.

Socket paths live under a short ``/tmp`` directory, not ``tmp_path``:
the OS caps ``AF_UNIX`` paths near 100 bytes and pytest's tmp paths can
exceed that.
"""

import shutil
import tempfile
import threading
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import pytest

from repro import obs
from repro.serve import (
    AdmissionController,
    ServeClient,
    ServeConnectionError,
    StudyServer,
    StudyService,
    pid_path_for,
    status_path_for,
    wait_for_server,
)
from repro.serve.protocol import (
    STATUS_REJECTED_BUSY,
    STATUS_SHUTTING_DOWN,
)


@pytest.fixture
def sock_dir():
    path = Path(tempfile.mkdtemp(dir="/tmp", prefix="repro-serve-"))
    yield path
    shutil.rmtree(path, ignore_errors=True)


@pytest.fixture
def server(sock_dir):
    service = StudyService(admission=AdmissionController(max_pending=8))
    server = StudyServer(service, sock_dir / "s.sock")
    server.start()
    yield server
    server.shutdown()


class TestLifecycle:
    def test_start_serves_ping(self, server):
        assert wait_for_server(server.socket_path, timeout=5)
        with ServeClient(server.socket_path) as client:
            response = client.request("ping")
        assert response.ok and response.payload["pong"] is True

    def test_pidfile_and_status_file_exist(self, server):
        assert pid_path_for(server.socket_path).exists()
        snapshot = obs.read_snapshot(status_path_for(server.socket_path))
        assert obs.healthz_view(snapshot)["healthy"] is True

    def test_shutdown_removes_socket_and_pidfile(self, sock_dir):
        server = StudyServer(StudyService(), sock_dir / "s.sock")
        server.start()
        server.shutdown()
        assert not server.socket_path.exists()
        assert not pid_path_for(server.socket_path).exists()
        # Terminal snapshot survives for post-mortem status.
        snapshot = obs.read_snapshot(status_path_for(server.socket_path))
        assert snapshot["state"] == "finished"

    def test_shutdown_is_idempotent(self, sock_dir):
        server = StudyServer(StudyService(), sock_dir / "s.sock")
        server.start()
        server.shutdown()
        server.shutdown()

    def test_stale_socket_is_replaced(self, sock_dir):
        path = sock_dir / "s.sock"
        path.write_text("", encoding="utf-8")  # nobody listening
        server = StudyServer(StudyService(), path)
        server.start()
        try:
            assert wait_for_server(path, timeout=5)
        finally:
            server.shutdown()

    def test_second_daemon_refuses_to_bind(self, server):
        with pytest.raises(FileExistsError):
            StudyServer(StudyService(), server.socket_path).start()

    def test_wait_for_server_times_out(self, sock_dir):
        assert not wait_for_server(sock_dir / "absent.sock", timeout=0.3)


class TestWireRequests:
    def test_malformed_line_answers_error(self, server):
        import socket as socket_mod

        raw = socket_mod.socket(socket_mod.AF_UNIX, socket_mod.SOCK_STREAM)
        raw.settimeout(5)
        raw.connect(str(server.socket_path))
        raw.sendall(b"this is not json\n")
        line = raw.makefile("rb").readline()
        raw.close()
        from repro.serve.protocol import decode_response

        response = decode_response(line)
        assert response.status == "error"
        assert "JSON" in response.error

    def test_connection_reuse(self, server):
        with ServeClient(server.socket_path) as client:
            ids = [client.request("ping").id for _ in range(5)]
        assert len(set(ids)) == 5  # one connection, distinct correlation ids

    def test_concurrent_clients_get_consistent_digests(self, server):
        def one_client(index):
            with ServeClient(
                server.socket_path, client=f"c{index}"
            ) as client:
                response = client.request("study", {"node": "catalog"})
                assert response.ok
                return response.payload["digest"]

        with ThreadPoolExecutor(max_workers=6) as pool:
            digests = set(pool.map(one_client, range(6)))
        assert len(digests) == 1

    def test_quota_rejection_over_the_wire(self, sock_dir):
        service = StudyService(
            admission=AdmissionController(
                max_pending=8, quota_capacity=2, quota_refill_per_second=0.0
            )
        )
        server = StudyServer(service, sock_dir / "s.sock")
        server.start()
        try:
            with ServeClient(server.socket_path, client="greedy") as client:
                assert client.request("ping").ok
                assert client.request("ping").ok
                rejected = client.request("ping")
                assert rejected.status == STATUS_REJECTED_BUSY
                assert rejected.error == "quota-exhausted"
            with ServeClient(server.socket_path, client="polite") as client:
                assert client.request("ping").ok
        finally:
            server.shutdown()


class TestBackpressureOnTheWire:
    def test_full_queue_rejects_busy(self, sock_dir):
        service = StudyService(admission=AdmissionController(max_pending=2))
        gate = threading.Event()
        entered = threading.Barrier(3, timeout=10)

        def slow(request):
            entered.wait()
            gate.wait(timeout=10)
            return {"slow": True}

        service.register_handler("ping", slow)
        server = StudyServer(service, sock_dir / "s.sock")
        server.start()
        try:
            def blocked_ping():
                with ServeClient(server.socket_path, timeout=15) as client:
                    return client.request("ping")

            with ThreadPoolExecutor(max_workers=2) as pool:
                futures = [pool.submit(blocked_ping) for _ in range(2)]
                entered.wait()  # both slots held server-side
                with ServeClient(server.socket_path) as client:
                    rejected = client.request("status")
                assert rejected.status == STATUS_REJECTED_BUSY
                assert rejected.error == "queue-full"
                gate.set()
                assert all(f.result(timeout=10).ok for f in futures)
        finally:
            gate.set()
            server.shutdown()


class TestGracefulDrain:
    def test_inflight_completes_and_new_work_is_refused(self, sock_dir):
        service = StudyService()
        entered = threading.Event()
        gate = threading.Event()

        def slow(request):
            entered.set()
            gate.wait(timeout=10)
            return {"slow": True}

        service.register_handler("ping", slow)
        server = StudyServer(service, sock_dir / "s.sock", drain_timeout=10)
        server.start()
        try:
            with ServeClient(server.socket_path, timeout=15) as client, \
                    ServeClient(server.socket_path, timeout=5) as probe:
                with ThreadPoolExecutor(max_workers=1) as pool:
                    inflight = pool.submit(client.request, "ping")
                    assert entered.wait(timeout=5)

                    shutdown = threading.Thread(target=server.shutdown)
                    shutdown.start()
                    deadline = 5.0
                    while not service.admission.draining and deadline > 0:
                        import time

                        time.sleep(0.01)
                        deadline -= 0.01
                    # Drain flag is up before the slow request finishes:
                    # new work (on a pre-drain connection; the listener
                    # itself is already closed) is refused.
                    assert probe.request("status").status == STATUS_SHUTTING_DOWN

                    gate.set()
                    response = inflight.result(timeout=10)
                    assert response.ok  # the in-flight answer was flushed
                    shutdown.join(timeout=10)
            assert not server.socket_path.exists()
        finally:
            gate.set()
            server.shutdown()

    def test_connect_after_shutdown_fails(self, sock_dir):
        server = StudyServer(StudyService(), sock_dir / "s.sock")
        server.start()
        server.shutdown()
        with pytest.raises(ServeConnectionError):
            ServeClient(server.socket_path)
