"""Wire format: encode/decode round trips and structural validation."""

import json

import pytest

from repro.serve.protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    STATUS_OK,
    STATUS_REJECTED_BUSY,
    ProtocolError,
    Request,
    Response,
    decode_request,
    decode_response,
    encode_line,
)


class TestRequestCodec:
    def test_round_trip(self):
        request = Request(
            kind="study", params={"node": "T1"}, client="ci", id="r-1"
        )
        decoded = decode_request(encode_line(request))
        assert decoded == request

    def test_line_terminated_and_canonical(self):
        line = encode_line(Request(kind="ping"))
        assert line.endswith(b"\n")
        # Canonical encoding: sorted keys, no whitespace.
        assert line == json.dumps(
            json.loads(line), separators=(",", ":"), sort_keys=True
        ).encode() + b"\n"

    def test_defaults(self):
        decoded = decode_request(b'{"kind": "ping"}\n')
        assert decoded.params == {}
        assert decoded.client == "anonymous"
        assert decoded.id == ""

    @pytest.mark.parametrize(
        "line",
        [
            b"not json\n",
            b"[1, 2]\n",
            b'{"kind": "launch-missiles"}\n',
            b'{"kind": "study", "params": [1]}\n',
            b'{"kind": "study", "client": ""}\n',
            b'{"kind": "study", "id": 7}\n',
            "caf\xe9".encode("latin-1"),
        ],
    )
    def test_malformed_rejected(self, line):
        with pytest.raises(ProtocolError):
            decode_request(line)

    def test_oversized_line_rejected(self):
        with pytest.raises(ProtocolError):
            decode_request(b"x" * (MAX_LINE_BYTES + 1))

    def test_oversized_encode_rejected(self):
        request = Request(kind="study", params={"blob": "x" * MAX_LINE_BYTES})
        with pytest.raises(ProtocolError):
            encode_line(request)


class TestResponseCodec:
    def test_round_trip(self):
        response = Response(id="r-1", status=STATUS_OK, payload={"n": 1})
        decoded = decode_response(encode_line(response))
        assert decoded == response
        assert decoded.ok

    def test_version_stamped(self):
        data = json.loads(encode_line(Response(id="", status=STATUS_OK)))
        assert data["version"] == PROTOCOL_VERSION

    def test_rejection_flags(self):
        response = decode_response(
            b'{"id": "x", "status": "rejected-busy", "error": "queue-full"}'
        )
        assert response.rejected and not response.ok
        assert response.status == STATUS_REJECTED_BUSY
        assert response.error == "queue-full"

    def test_unknown_status_rejected(self):
        with pytest.raises(ProtocolError):
            decode_response(b'{"id": "x", "status": "maybe"}')

    def test_empty_payload_omitted_on_wire(self):
        data = json.loads(encode_line(Response(id="x", status=STATUS_OK)))
        assert "payload" not in data and "error" not in data
