"""The ``repro serve`` CLI surface against an in-process daemon."""

import shutil
import tempfile
from pathlib import Path

import pytest

from repro import cli
from repro.serve import AdmissionController, StudyServer, StudyService


@pytest.fixture
def sock_dir():
    path = Path(tempfile.mkdtemp(dir="/tmp", prefix="repro-serve-cli-"))
    yield path
    shutil.rmtree(path, ignore_errors=True)


@pytest.fixture
def server(sock_dir):
    service = StudyService(admission=AdmissionController(max_pending=8))
    server = StudyServer(service, sock_dir / "s.sock")
    server.start()
    yield server
    server.shutdown()


class TestServeParams:
    def test_json_values_parse(self):
        params = cli._serve_params(["node=T1", "scale=3", "flag=true"])
        assert params == {"node": "T1", "scale": 3, "flag": True}

    def test_malformed_pair_exits(self):
        with pytest.raises(SystemExit):
            cli._serve_params(["no-equals-sign"])


class TestServeRequestCommand:
    def test_request_prints_node_text(self, server, capsys):
        rc = cli.main(
            [
                "serve", "request", "study",
                "--socket", str(server.socket_path),
                "--param", "node=T1",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "Classification of faults for Apache" in out

    def test_request_matches_batch_output(self, server, capsys):
        cli.main(
            [
                "serve", "request", "study",
                "--socket", str(server.socket_path),
                "--param", "node=catalog",
            ]
        )
        served = capsys.readouterr().out
        cli.main(["catalog"])
        batch = capsys.readouterr().out
        assert served == batch

    def test_error_reports_on_stderr(self, server, capsys):
        rc = cli.main(
            [
                "serve", "request", "study",
                "--socket", str(server.socket_path),
                "--param", "node=nope",
            ]
        )
        assert rc == 1
        assert "nope" in capsys.readouterr().err

    def test_burst_prints_percentiles(self, server, capsys):
        rc = cli.main(
            [
                "serve", "request", "ping",
                "--socket", str(server.socket_path),
                "--repeat", "20", "--concurrency", "2",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "req/s" in out and "p99 ms" in out


class TestServeStatusCommand:
    def test_status_against_live_daemon(self, server, capsys):
        rc = cli.main(
            ["serve", "status", "--socket", str(server.socket_path)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "healthy" in out and "True" in out

    def test_status_snapshot_fallback_after_shutdown(self, sock_dir, capsys):
        server = StudyServer(StudyService(), sock_dir / "s.sock")
        server.start()
        server.shutdown()
        rc = cli.main(
            ["serve", "status", "--socket", str(server.socket_path)]
        )
        out = capsys.readouterr().out
        assert "snapshot fallback" in out
        assert rc == 1  # finished daemon is not healthy

    def test_stop_without_daemon_exits(self, sock_dir):
        with pytest.raises(SystemExit):
            cli.main(["serve", "stop", "--socket", str(sock_dir / "none.sock")])
