"""The §5a grid families against their classic monolithic oracles.

Each sweep family must render exactly the table the classic one-shot
sweep produces: points are single-parameter classic sweeps (seeds
derive per ``(parameter, fault, replication)``, never from scheduling),
so the aggregation node reassembles the monolith byte-for-byte.
"""

import pytest

from repro.classify import nodes as classify_nodes
from repro.recovery import LeakModel, sweep_rejuvenation_interval
from repro.recovery import nodes as recovery_nodes
from repro.recovery.campaign import sweep_race_window, sweep_retry_budget
from repro.studygraph import StudyContext, run_single_node, run_study


@pytest.fixture(scope="module")
def study():
    return StudyContext.default().study


class TestRetryBudgetFamily:
    def test_point_equals_classic_sweep_slice(self, study):
        classic = sweep_retry_budget(
            study,
            lambda budget: recovery_nodes.TECHNIQUES[
                recovery_nodes.SWEEP_TECHNIQUE
            ](max_attempts=budget),
            budgets=recovery_nodes.RETRY_BUDGETS,
            race_window=recovery_nodes.SWEEP_RACE_WINDOW,
            replications=recovery_nodes.SWEEP_REPLICATIONS,
        )
        payload = run_single_node("sweep.retry-budget[budget=2]")
        slice_ = next(p for p in classic if p.parameter == 2.0)
        assert payload["survived"] == slice_.survived
        assert payload["total"] == slice_.total

    def test_aggregate_renders_the_classic_table(self, study):
        classic = sweep_retry_budget(
            study,
            lambda budget: recovery_nodes.TECHNIQUES[
                recovery_nodes.SWEEP_TECHNIQUE
            ](max_attempts=budget),
            budgets=recovery_nodes.RETRY_BUDGETS,
            race_window=recovery_nodes.SWEEP_RACE_WINDOW,
            replications=recovery_nodes.SWEEP_REPLICATIONS,
        )
        expected = recovery_nodes.render_retry_budget_table(
            classic, race_window=recovery_nodes.SWEEP_RACE_WINDOW
        )
        assert run_single_node("sweep.retry-budget")["text"] == expected


class TestRaceWindowFamily:
    def test_aggregate_renders_the_classic_table(self, study):
        factory = recovery_nodes.TECHNIQUES[recovery_nodes.SWEEP_TECHNIQUE]
        classic = sweep_race_window(
            study,
            factory,
            windows=recovery_nodes.RACE_WINDOWS,
            replications=recovery_nodes.SWEEP_REPLICATIONS,
        )
        expected = recovery_nodes.render_race_window_table(
            classic, retries=factory().max_attempts
        )
        assert run_single_node("sweep.race-window")["text"] == expected


class TestRejuvenationFamily:
    def test_aggregate_renders_the_classic_table_slice(self):
        fixed = recovery_nodes.REJUVENATION_FIXED_PARAMS
        leak = LeakModel(
            leak_per_request=fixed["leak_per_request"],
            failure_threshold=fixed["failure_threshold"],
            requests_per_hour=fixed["requests_per_hour"],
        )
        classic = sweep_rejuvenation_interval(
            recovery_nodes.REJUVENATION_INTERVALS,
            leak,
            rejuvenation_downtime_minutes=recovery_nodes.REJUVENATION_TABLE_DOWNTIME,
            crash_repair_hours=fixed["crash_repair_hours"],
            duration_hours=fixed["duration_hours"],
        )
        expected = recovery_nodes.render_rejuvenation_table(
            classic,
            hours_to_failure=leak.hours_to_failure,
            duration_hours=fixed["duration_hours"],
        )
        payload = run_single_node("sweep.rejuvenation")
        assert payload["text"] == expected
        # The payload also carries the whole 49-point surface.
        assert len(payload["surface"]) == len(
            recovery_nodes.REJUVENATION_INTERVALS
        ) * len(recovery_nodes.REJUVENATION_DOWNTIMES)

    def test_surface_availability_is_monotone_in_planned_downtime(self):
        payload = run_single_node("sweep.rejuvenation")
        fast = payload["surface"]["19@1min"]["availability"]
        slow = payload["surface"]["19@90min"]["availability"]
        assert fast > slow


class TestRecoveryModelFamily:
    def test_grid_path_matches_the_monolithic_producer(self):
        context = StudyContext.default()
        classic = classify_nodes.ablate_recovery_model(context, {}, {})
        payload = run_single_node("ablate.recovery-model")
        assert payload["text"] == classic["text"]
        assert payload["counts"] == classic["counts"]


class TestFamilyRunsTogether:
    def test_one_run_resolves_all_families_in_parallel(self):
        result = run_study(
            StudyContext.default(workers=2),
            nodes=[
                "sweep.retry-budget",
                "sweep.race-window",
                "ablate.recovery-model",
            ],
        )
        assert result.executed == len(result.runs)
        # 3 corpora + (6 + 6 + 4) points + 3 aggregates.
        assert len(result.runs) == 3 + 16 + 3
