"""Tests for the error-latency (checkpoint staleness) experiment."""

import pytest

from repro.recovery.error_latency import (
    LatencyExperiment,
    recovery_rate_with_random_latency,
    replay_with_checkpoint_age,
    sweep_checkpoint_age,
)


class TestLatencyExperiment:
    def test_staleness_needed(self):
        experiment = LatencyExperiment(leak_limit=100, task_operations=40)
        assert experiment.staleness_needed == 40

    def test_task_must_be_completable_fresh(self):
        with pytest.raises(ValueError, match="fresh application"):
            LatencyExperiment(leak_limit=10, task_operations=11)

    def test_positive_parameters(self):
        with pytest.raises(ValueError):
            LatencyExperiment(leak_limit=0)


class TestReplay:
    def test_fresh_checkpoint_recreates_the_failure(self):
        # A checkpoint of the full pre-crash state (the truly generic
        # ideal) restores the leak too -- retry fails immediately.
        outcome = replay_with_checkpoint_age(LatencyExperiment(), 0)
        assert outcome.restored_leak == 100
        assert not outcome.survived

    def test_stale_enough_checkpoint_survives(self):
        experiment = LatencyExperiment(leak_limit=100, task_operations=40)
        outcome = replay_with_checkpoint_age(experiment, 40)
        assert outcome.survived

    def test_exact_threshold(self):
        experiment = LatencyExperiment(leak_limit=100, task_operations=40)
        assert not replay_with_checkpoint_age(experiment, 39).survived
        assert replay_with_checkpoint_age(experiment, 40).survived

    def test_age_bounds_enforced(self):
        with pytest.raises(ValueError):
            replay_with_checkpoint_age(LatencyExperiment(), -1)
        with pytest.raises(ValueError):
            replay_with_checkpoint_age(LatencyExperiment(), 101)


class TestSweep:
    def test_survival_is_monotone_in_staleness(self):
        outcomes = sweep_checkpoint_age(LatencyExperiment())
        survived_flags = [outcome.survived for outcome in outcomes]
        # Once survival starts, it never stops: monotone in age.
        assert survived_flags == sorted(survived_flags)

    def test_default_sweep_covers_both_regimes(self):
        outcomes = sweep_checkpoint_age(LatencyExperiment())
        assert any(not outcome.survived for outcome in outcomes)
        assert any(outcome.survived for outcome in outcomes)


class TestRandomLatencyRate:
    def test_matches_analytic_rate(self):
        experiment = LatencyExperiment(leak_limit=100, task_operations=40)
        rate = recovery_rate_with_random_latency(experiment)
        assert rate == pytest.approx(1 - 40 / 101)

    def test_the_section_7_paradox(self):
        # The *longer* the error latency a system tolerates (bigger gap
        # between corruption and crash), the higher its apparent
        # process-pair recovery rate -- with no actual fault-tolerance
        # improvement.  Exactly the paper's reading of Lee & Iyer.
        tight = LatencyExperiment(leak_limit=50, task_operations=40)
        loose = LatencyExperiment(leak_limit=400, task_operations=40)
        assert recovery_rate_with_random_latency(loose) > recovery_rate_with_random_latency(tight)

    def test_rate_bounds(self):
        rate = recovery_rate_with_random_latency(LatencyExperiment())
        assert 0.0 <= rate <= 1.0
