"""Tests for the recovery techniques (unit level)."""

import pytest

from repro.apps.desktop import MiniDesktop
from repro.classify.recovery_model import PAPER_DEFAULT
from repro.envmodel.environment import Environment
from repro.errors import RecoveryError
from repro.recovery import (
    CheckpointRollback,
    CheckpointStore,
    ProcessPairs,
    ProgressiveRetry,
    RestartFresh,
    SoftwareRejuvenation,
)


@pytest.fixture
def app():
    desktop = MiniDesktop(Environment())
    desktop.add_applet("clock")
    return desktop


class TestCheckpointStore:
    def test_take_and_latest(self, app):
        store = CheckpointStore()
        store.take(app)
        app.add_applet("pager")
        store.take(app)
        assert store.latest().state["applets"] == ["clock", "pager"]
        assert len(store) == 2

    def test_capacity_bound(self, app):
        store = CheckpointStore(capacity=2)
        for _ in range(5):
            store.take(app)
        assert len(store) == 2

    def test_rollback_one_never_empties(self, app):
        store = CheckpointStore()
        store.take(app)
        first = store.rollback_one()
        assert store.rollback_one() is first

    def test_latest_without_checkpoint(self):
        with pytest.raises(RecoveryError, match="no checkpoint"):
            CheckpointStore().latest()

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            CheckpointStore(capacity=0)


class TestProcessPairs:
    def test_failover_restores_backup_state(self, app):
        pairs = ProcessPairs()
        pairs.prepare(app)
        app.add_applet("pager")
        pairs.recover(app, attempt=1)
        assert app.state["applets"] == ["clock"]
        assert pairs.failovers == 1

    def test_checkpoint_message_updates_backup(self, app):
        pairs = ProcessPairs()
        pairs.prepare(app)
        app.add_applet("pager")
        pairs.checkpoint_message(app)
        app.remove_applet("pager")
        pairs.recover(app, attempt=1)
        assert "pager" in app.state["applets"]

    def test_recover_before_prepare_rejected(self, app):
        with pytest.raises(RecoveryError, match="before prepare"):
            ProcessPairs().recover(app, attempt=1)

    def test_default_single_failover(self):
        assert ProcessPairs().max_attempts == 1

    def test_is_application_generic(self):
        assert ProcessPairs.application_generic


class TestCheckpointRollback:
    def test_rollback_restores_latest_checkpoint(self, app):
        rollback = CheckpointRollback()
        rollback.prepare(app)
        app.add_applet("pager")
        rollback.checkpoint(app)
        app.add_applet("tasklist")
        rollback.recover(app, attempt=1)
        assert app.state["applets"] == ["clock", "pager"]
        assert rollback.rollbacks == 1

    def test_multiple_attempts_allowed(self):
        assert CheckpointRollback().max_attempts == 3

    def test_invalid_attempts_rejected(self):
        with pytest.raises(ValueError):
            CheckpointRollback(max_attempts=0)


class TestProgressiveRetry:
    def test_first_attempt_only_reseeds(self, app):
        progressive = ProgressiveRetry()
        progressive.prepare(app)
        from repro.envmodel.dns import DnsState

        app.env.dns.degrade(DnsState.ERROR)
        seed_before = app.env.scheduler.seed
        progressive.recover(app, attempt=1)
        assert app.env.scheduler.seed != seed_before
        assert app.env.dns.state is DnsState.ERROR  # untouched on step 1

    def test_second_attempt_applies_full_perturbation(self, app):
        progressive = ProgressiveRetry()
        progressive.prepare(app)
        from repro.envmodel.dns import DnsState

        app.env.dns.degrade(DnsState.ERROR)
        progressive.recover(app, attempt=2)
        assert app.env.dns.state is DnsState.HEALTHY

    def test_downtime_escalates(self, app):
        progressive = ProgressiveRetry(downtime_seconds=10.0)
        progressive.prepare(app)
        progressive.recover(app, attempt=2)
        after_second = app.env.clock.now
        progressive.recover(app, attempt=3)
        assert app.env.clock.now - after_second > after_second  # 20 > 10


class TestRestartFresh:
    def test_loses_state(self, app):
        restart = RestartFresh()
        restart.prepare(app)
        app.state["scratch"] = "data"
        restart.recover(app, attempt=1)
        assert "scratch" not in app.state
        assert restart.restarts == 1

    def test_releases_footprint(self, app):
        restart = RestartFresh()
        restart.prepare(app)
        app.open_descriptor(leaked=True)
        restart.recover(app, attempt=1)
        assert app.env.file_descriptors.in_use == 0

    def test_not_application_generic(self):
        assert not RestartFresh.application_generic


class TestSoftwareRejuvenation:
    def test_reinitialises_state(self, app):
        rejuvenation = SoftwareRejuvenation()
        rejuvenation.prepare(app)
        app.state["leaked_objects"] = 9999
        rejuvenation.recover(app, attempt=1)
        assert "leaked_objects" not in app.state
        assert rejuvenation.rejuvenations == 1

    def test_kills_children(self, app):
        rejuvenation = SoftwareRejuvenation()
        rejuvenation.prepare(app)
        app.fork_child()
        app.fork_child()
        rejuvenation.recover(app, attempt=1)
        assert app.env.process_table.in_use == 0

    def test_cannot_fix_the_disk(self, app):
        rejuvenation = SoftwareRejuvenation()
        rejuvenation.prepare(app)
        app.env.disk.fill()
        rejuvenation.recover(app, attempt=1)
        assert app.env.disk.full

    def test_not_application_generic(self):
        assert not SoftwareRejuvenation.application_generic


class TestPerturbationThroughTechnique:
    def test_recovery_advances_virtual_time(self, app):
        technique = CheckpointRollback(downtime_seconds=42.0)
        technique.prepare(app)
        technique.recover(app, attempt=1)
        assert app.env.clock.now == 42.0

    def test_recovery_reseeds_scheduler(self, app):
        technique = ProcessPairs()
        technique.prepare(app)
        seed_before = app.env.scheduler.seed
        technique.recover(app, attempt=1)
        assert app.env.scheduler.seed != seed_before

    def test_model_is_respected(self, app):
        from repro.classify.recovery_model import RecoveryModel

        technique = CheckpointRollback(RecoveryModel(expects_external_repair=False))
        technique.prepare(app)
        from repro.envmodel.dns import DnsState

        app.env.dns.degrade(DnsState.ERROR)
        technique.recover(app, attempt=1)
        assert app.env.dns.state is DnsState.ERROR
