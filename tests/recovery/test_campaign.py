"""Tests for the parameter-sweep campaigns."""

import pytest

from repro.bugdb.enums import TriggerKind
from repro.recovery import CheckpointRollback
from repro.recovery.campaign import (
    sweep_race_window,
    sweep_retry_budget,
    timing_faults,
)


class TestTimingFaults:
    def test_exactly_the_timing_triggered_study_faults(self, study):
        faults = timing_faults(study)
        # Apache: workload-timing; GNOME: unknown-transient + 2 races;
        # MySQL: 2 races.
        assert len(faults) == 6
        assert all(
            fault.trigger
            in (
                TriggerKind.RACE_CONDITION,
                TriggerKind.SIGNAL_TIMING,
                TriggerKind.WORKLOAD_TIMING,
                TriggerKind.UNKNOWN_TRANSIENT,
            )
            for fault in faults
        )


class TestRetryBudgetSweep:
    @pytest.fixture(scope="class")
    def points(self, study):
        return sweep_retry_budget(
            study,
            lambda budget: CheckpointRollback(max_attempts=budget),
            budgets=(1, 2, 4, 8),
            race_window=0.5,
            replications=6,
        )

    def test_survival_non_decreasing_in_budget(self, points):
        rates = [point.survival_rate for point in points]
        assert all(later >= earlier - 1e-9 for earlier, later in zip(rates, rates[1:]))

    def test_large_budget_approaches_certainty(self, points):
        assert points[-1].survival_rate >= 0.9

    def test_single_retry_loses_some_races(self, points):
        # With a 0.5 window, one retry fails about half the time.
        assert points[0].survival_rate < 0.85

    def test_totals_cover_all_replications(self, points, study):
        expected = len(timing_faults(study)) * 6
        assert all(point.total == expected for point in points)

    def test_deterministic(self, study):
        kwargs = dict(budgets=(2,), race_window=0.5, replications=4)
        first = sweep_retry_budget(
            study, lambda b: CheckpointRollback(max_attempts=b), **kwargs
        )
        second = sweep_retry_budget(
            study, lambda b: CheckpointRollback(max_attempts=b), **kwargs
        )
        assert first == second


class TestRaceWindowSweep:
    def test_survival_degrades_with_wider_window(self, study):
        points = sweep_race_window(
            study,
            CheckpointRollback,
            windows=(0.05, 0.5, 0.95),
            replications=6,
        )
        rates = [point.survival_rate for point in points]
        assert rates[0] > rates[-1]

    def test_tiny_window_is_nearly_always_survivable(self, study):
        points = sweep_race_window(
            study, CheckpointRollback, windows=(0.01,), replications=6
        )
        assert points[0].survival_rate >= 0.95
