"""Tests for the replay driver: the paper's end-to-end check."""

import pytest

from repro.bugdb.enums import FaultClass, TriggerKind
from repro.recovery import (
    CheckpointRollback,
    ProcessPairs,
    RestartFresh,
    replay_fault,
    replay_study,
)

EI = FaultClass.ENV_INDEPENDENT
EDN = FaultClass.ENV_DEP_NONTRANSIENT
EDT = FaultClass.ENV_DEP_TRANSIENT


@pytest.fixture(scope="module")
def rollback_report(study):
    return replay_study(study, CheckpointRollback)


@pytest.fixture(scope="module")
def pairs_report(study):
    return replay_study(study, ProcessPairs)


class TestReplayFault:
    def test_env_independent_fault_never_survives(self, apache):
        fault = next(f for f in apache.faults if f.fault_class is EI)
        outcome = replay_fault(fault, CheckpointRollback(max_attempts=5))
        assert outcome.triggered
        assert not outcome.survived
        assert outcome.attempts_used == 5

    def test_disk_full_persists_under_generic_recovery(self, apache):
        fault = next(f for f in apache.faults if f.trigger is TriggerKind.DISK_FULL)
        outcome = replay_fault(fault, CheckpointRollback())
        assert not outcome.survived

    def test_process_table_fault_survives_one_failover(self, apache):
        fault = next(f for f in apache.faults if f.trigger is TriggerKind.PROCESS_TABLE_FULL)
        outcome = replay_fault(fault, ProcessPairs())
        assert outcome.survived
        assert outcome.attempts_used == 1

    def test_dns_error_survives_via_external_repair(self, apache):
        fault = next(f for f in apache.faults if f.trigger is TriggerKind.DNS_ERROR)
        assert replay_fault(fault, CheckpointRollback()).survived

    def test_resource_leak_survives_only_state_losing_recovery(self, apache):
        fault = next(f for f in apache.faults if f.trigger is TriggerKind.RESOURCE_LEAK)
        assert not replay_fault(fault, CheckpointRollback()).survived
        assert replay_fault(fault, RestartFresh()).survived

    def test_deterministic_for_seed(self, apache):
        fault = next(f for f in apache.faults if f.fault_class is EDT)
        first = replay_fault(fault, CheckpointRollback(), seed=11)
        second = replay_fault(fault, CheckpointRollback(), seed=11)
        assert first == second

    def test_outcome_records_identity(self, apache):
        fault = apache.faults[0]
        outcome = replay_fault(fault, ProcessPairs())
        assert outcome.fault_id == fault.fault_id
        assert outcome.fault_class is fault.fault_class
        assert outcome.technique == "process-pairs"


class TestReplayStudy:
    def test_every_fault_triggered(self, rollback_report):
        assert all(outcome.triggered for outcome in rollback_report.outcomes)
        assert len(rollback_report.outcomes) == 139

    def test_generic_recovery_never_survives_env_independent(self, rollback_report):
        assert rollback_report.survival_rate(EI) == 0.0

    def test_generic_recovery_never_survives_nontransient(self, rollback_report):
        assert rollback_report.survival_rate(EDN) == 0.0

    def test_generic_recovery_survives_most_transient(self, rollback_report):
        assert rollback_report.survival_rate(EDT) >= 0.75

    def test_overall_survival_matches_paper_range(self, rollback_report):
        # The paper: only 5-14% of faults are transient, so overall
        # generic-recovery survival must fall at or below that band.
        overall = rollback_report.survival_rate()
        assert 0.04 <= overall <= 0.14

    def test_process_pairs_bounded_by_transient_share(self, pairs_report, study):
        transient_share = 12 / 139
        assert pairs_report.survival_rate() <= transient_share + 1e-9

    def test_counts_consistent(self, rollback_report):
        assert rollback_report.total() == 139
        assert rollback_report.total(EI) == 113
        assert rollback_report.total(EDN) == 14
        assert rollback_report.total(EDT) == 12
        assert rollback_report.survived_count() == sum(
            rollback_report.survived_count(c) for c in (EI, EDN, EDT)
        )

    def test_restart_fresh_beats_pure_generic_on_nontransient(self, study, rollback_report):
        restart_report = replay_study(study, RestartFresh)
        assert restart_report.survival_rate(EDN) > rollback_report.survival_rate(EDN)
        # ...but restart still cannot touch deterministic faults.
        assert restart_report.survival_rate(EI) == 0.0


class TestReplayReportHelpers:
    def test_empty_class_survival_rate_is_zero(self):
        from repro.recovery.driver import ReplayReport

        report = ReplayReport(technique="x", outcomes=())
        assert report.survival_rate() == 0.0
        assert report.total() == 0
        assert report.survived_count() == 0

    def test_untriggered_outcomes_excluded_from_rate(self):
        from repro.recovery.driver import FaultReplayOutcome, ReplayReport

        triggered = FaultReplayOutcome(
            fault_id="a", fault_class=EI, technique="x",
            triggered=True, survived=False, attempts_used=1,
        )
        ghost = FaultReplayOutcome(
            fault_id="b", fault_class=EI, technique="x",
            triggered=False, survived=True, attempts_used=0,
        )
        report = ReplayReport(technique="x", outcomes=(triggered, ghost))
        assert report.survival_rate() == 0.0  # the ghost does not count
