"""Tests for proactive rejuvenation scheduling."""

import pytest

from repro.recovery.rejuvenation_schedule import (
    LeakModel,
    RejuvenationOutcome,
    RejuvenationPolicy,
    simulate_rejuvenation_schedule,
    sweep_rejuvenation_interval,
)

# With the defaults: 10,000 units / (1 unit/request * 500 requests/hour)
# = 20 hours of uptime to failure.
LEAK = LeakModel()


class TestModels:
    def test_hours_to_failure(self):
        assert LEAK.hours_to_failure == 20.0

    def test_invalid_leak_model(self):
        with pytest.raises(ValueError):
            LeakModel(leak_per_request=0)

    def test_invalid_policy(self):
        with pytest.raises(ValueError):
            RejuvenationPolicy(interval_hours=0)
        with pytest.raises(ValueError):
            RejuvenationPolicy(interval_hours=1, crash_repair_hours=-1)


class TestSimulation:
    def test_no_rejuvenation_baseline_crashes_repeatedly(self):
        outcome = simulate_rejuvenation_schedule(
            RejuvenationPolicy(interval_hours=None), LEAK, duration_hours=210.0
        )
        # 20h up + 1h repair per cycle -> 10 crashes in 210 hours.
        assert outcome.crashes == 10
        assert outcome.rejuvenations == 0
        assert outcome.downtime_hours == pytest.approx(10.0)

    def test_frequent_rejuvenation_prevents_all_crashes(self):
        outcome = simulate_rejuvenation_schedule(
            RejuvenationPolicy(interval_hours=12.0), LEAK, duration_hours=24.0 * 30
        )
        assert outcome.crashes == 0
        assert outcome.rejuvenations > 0

    def test_interval_beyond_failure_time_does_not_help(self):
        outcome = simulate_rejuvenation_schedule(
            RejuvenationPolicy(interval_hours=30.0), LEAK, duration_hours=24.0 * 30
        )
        assert outcome.crashes > 0
        assert outcome.rejuvenations == 0  # the crash always wins

    def test_availability_bounds(self):
        outcome = simulate_rejuvenation_schedule(
            RejuvenationPolicy(interval_hours=10.0), LEAK
        )
        assert 0.0 <= outcome.availability <= 1.0

    def test_rejuvenation_beats_baseline_availability(self):
        baseline = simulate_rejuvenation_schedule(
            RejuvenationPolicy(interval_hours=None), LEAK
        )
        scheduled = simulate_rejuvenation_schedule(
            RejuvenationPolicy(interval_hours=12.0), LEAK
        )
        assert scheduled.availability > baseline.availability

    def test_too_frequent_rejuvenation_wastes_uptime(self):
        hourly = simulate_rejuvenation_schedule(
            RejuvenationPolicy(interval_hours=1.0, rejuvenation_downtime_minutes=10.0), LEAK
        )
        daily_ish = simulate_rejuvenation_schedule(
            RejuvenationPolicy(interval_hours=15.0, rejuvenation_downtime_minutes=10.0), LEAK
        )
        assert daily_ish.availability > hourly.availability

    def test_zero_duration(self):
        outcome = simulate_rejuvenation_schedule(
            RejuvenationPolicy(interval_hours=5.0), LEAK, duration_hours=0.0
        )
        assert outcome == RejuvenationOutcome(
            duration_hours=0.0, crashes=0, rejuvenations=0, downtime_hours=0.0
        )


class TestSweep:
    def test_sweep_has_interior_optimum(self):
        results = sweep_rejuvenation_interval(
            (None, 0.5, 4.0, 12.0, 18.0, 30.0),
            LEAK,
            rejuvenation_downtime_minutes=10.0,
        )
        availabilities = [outcome.availability for _, outcome in results]
        best = max(range(len(results)), key=lambda index: availabilities[index])
        # The best interval is a proactive one, strictly better than both
        # the no-rejuvenation baseline and the too-eager schedule.
        assert results[best][0] not in (None, 0.5)
        assert availabilities[best] > availabilities[0]

    def test_sweep_includes_baseline(self):
        results = sweep_rejuvenation_interval((None, 10.0), LEAK)
        assert results[0][0] is None
        assert results[0][1].rejuvenations == 0
