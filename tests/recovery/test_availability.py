"""Tests for the availability simulation."""

import pytest

from repro.recovery import CheckpointRollback, ProcessPairs, RestartFresh, replay_study
from repro.recovery.availability import (
    AvailabilityParameters,
    simulate_availability,
)
from repro.recovery.driver import ReplayReport


@pytest.fixture(scope="module")
def rollback_report(study):
    return replay_study(study, CheckpointRollback)


class TestParameters:
    def test_rejects_nonpositive_mtbf(self):
        with pytest.raises(ValueError):
            AvailabilityParameters(mean_time_between_faults_hours=0)

    def test_rejects_negative_downtime(self):
        with pytest.raises(ValueError):
            AvailabilityParameters(manual_repair_hours=-1)


class TestSimulation:
    def test_deterministic_for_seed(self, rollback_report):
        first = simulate_availability(rollback_report, seed=5)
        second = simulate_availability(rollback_report, seed=5)
        assert first == second

    def test_availability_in_unit_interval(self, rollback_report):
        result = simulate_availability(rollback_report)
        assert 0.0 <= result.availability <= 1.0
        assert result.uptime_hours <= result.simulated_hours

    def test_counts_are_consistent(self, rollback_report):
        result = simulate_availability(rollback_report)
        assert result.automatic_recoveries + result.manual_repairs == result.fault_arrivals

    def test_more_faults_means_less_availability(self, rollback_report):
        rare = simulate_availability(
            rollback_report,
            parameters=AvailabilityParameters(mean_time_between_faults_hours=24 * 30),
        )
        frequent = simulate_availability(
            rollback_report,
            parameters=AvailabilityParameters(mean_time_between_faults_hours=24),
        )
        assert frequent.availability < rare.availability

    def test_cheaper_manual_repair_raises_availability(self, rollback_report):
        slow = simulate_availability(
            rollback_report,
            parameters=AvailabilityParameters(manual_repair_hours=8.0),
        )
        fast = simulate_availability(
            rollback_report,
            parameters=AvailabilityParameters(manual_repair_hours=0.5),
        )
        assert fast.availability > slow.availability

    def test_empty_report_rejected(self):
        with pytest.raises(ValueError, match="no triggered faults"):
            simulate_availability(ReplayReport(technique="x", outcomes=()))

    def test_nines_bounds(self, rollback_report):
        result = simulate_availability(rollback_report)
        assert 0.0 <= result.nines <= 9.0


class TestPaperShape:
    def test_generic_recovery_dominated_by_manual_repairs(self, rollback_report):
        # ~91% of faults are unsurvivable, so operator pages dominate.
        result = simulate_availability(rollback_report)
        assert result.manual_repairs > 5 * result.automatic_recoveries

    def test_state_losing_restart_beats_pure_generic(self, study, rollback_report):
        restart_report = replay_study(study, RestartFresh)
        generic = simulate_availability(rollback_report, seed=3)
        restart = simulate_availability(restart_report, seed=3)
        assert restart.availability > generic.availability

    def test_process_pairs_availability_close_to_rollback(self, study, rollback_report):
        pairs_report = replay_study(study, ProcessPairs)
        pairs = simulate_availability(pairs_report, seed=3)
        rollback = simulate_availability(rollback_report, seed=3)
        # Both are dominated by the unsurvivable majority.
        assert abs(pairs.availability - rollback.availability) < 0.02
