"""Tests for the raw-archive renderers."""

from repro.bugdb import debbugs, gnats, mbox
from repro.corpus.render import (
    apache_raw_archive,
    fault_thread,
    gnome_raw_archive,
    mysql_raw_archive,
)
from repro.mining.gnome import GNOME_STUDY_COMPONENTS
from repro.mining.keywords import KeywordMatcher, MYSQL_STUDY_KEYWORDS
from repro.rng import make_rng


class TestApacheArchive:
    def test_parses_back_to_total(self, apache):
        text = apache_raw_archive(apache, total_reports=200)
        reports = gnats.parse_archive(text)
        assert len(reports) == 200

    def test_contains_all_study_faults(self, apache):
        text = apache_raw_archive(apache, total_reports=200)
        ids = {report.report_id for report in gnats.parse_archive(text)}
        assert {fault.fault_id for fault in apache.faults} <= ids

    def test_no_evidence_serialized(self, apache):
        text = apache_raw_archive(apache, total_reports=100)
        assert all(report.evidence is None for report in gnats.parse_archive(text))

    def test_deterministic(self, apache):
        assert apache_raw_archive(apache, total_reports=120, seed=3) == apache_raw_archive(
            apache, total_reports=120, seed=3
        )

    def test_shuffled_not_grouped(self, apache):
        text = apache_raw_archive(apache, total_reports=200)
        ids = [report.report_id for report in gnats.parse_archive(text)]
        study_positions = [i for i, report_id in enumerate(ids) if report_id.startswith("APACHE-")]
        # Study faults must be interleaved with noise, not a contiguous block.
        assert study_positions[-1] - study_positions[0] > len(study_positions)


class TestGnomeArchive:
    def test_parses_back_to_total(self, gnome):
        text = gnome_raw_archive(gnome, study_components=GNOME_STUDY_COMPONENTS)
        assert len(debbugs.parse_archive(text)) == 500

    def test_contains_all_study_faults(self, gnome):
        text = gnome_raw_archive(gnome, study_components=GNOME_STUDY_COMPONENTS)
        ids = {report.report_id for report in debbugs.parse_archive(text)}
        assert {fault.fault_id for fault in gnome.faults} <= ids


class TestMysqlArchive:
    def test_message_count_reaches_total(self, mysql):
        text = mysql_raw_archive(mysql, total_messages=1500)
        messages = mbox.parse_archive(text)
        assert len(messages) >= 1500

    def test_every_fault_has_a_root_message(self, mysql):
        text = mysql_raw_archive(mysql, total_messages=1000)
        ids = {message.message_id for message in mbox.parse_archive(text)}
        for fault in mysql.faults:
            assert f"{fault.fault_id}.root@lists.mysql.com" in ids

    def test_fault_thread_root_carries_report_material(self, mysql):
        fault = mysql.faults[0]
        thread = fault_thread(fault, rng=make_rng(1))
        root = thread[0]
        assert root.subject == fault.synopsis
        assert fault.description in root.body
        assert "How-To-Repeat:" in root.body
        assert f"mysql version: {fault.version}" in root.body

    def test_fault_thread_replies_reference_root(self, mysql):
        fault = mysql.faults[0]
        thread = fault_thread(fault, rng=make_rng(1))
        for reply in thread[1:]:
            assert reply.in_reply_to == thread[0].message_id

    def test_fixed_fault_thread_ends_with_fix_mail(self, mysql):
        fault = next(f for f in mysql.faults if f.fix_summary)
        thread = fault_thread(fault, rng=make_rng(1))
        assert "fixed" in thread[-1].body.lower()

    def test_chatter_roots_never_match_keywords(self, mysql):
        matcher = KeywordMatcher(MYSQL_STUDY_KEYWORDS)
        text = mysql_raw_archive(mysql, total_messages=2000)
        for message in mbox.parse_archive(text):
            if message.message_id.startswith("chatter.") and not message.is_reply:
                assert not matcher.matches(message.subject + "\n" + message.body), (
                    message.message_id
                )
