"""Tests for the three curated corpora against the paper's published data."""

import pytest

from repro.bugdb.enums import Application, FaultClass, Severity, TriggerKind
from repro.corpus.apache import RELEASES as APACHE_RELEASES
from repro.corpus.mysql import RELEASES as MYSQL_RELEASES
from repro.mining.keywords import KeywordMatcher, MYSQL_STUDY_KEYWORDS

EI = FaultClass.ENV_INDEPENDENT
EDN = FaultClass.ENV_DEP_NONTRANSIENT
EDT = FaultClass.ENV_DEP_TRANSIENT


class TestTableCounts:
    def test_apache_table_1(self, apache):
        assert apache.class_counts() == {EI: 36, EDN: 7, EDT: 7}
        assert apache.total == 50

    def test_gnome_table_2(self, gnome):
        assert gnome.class_counts() == {EI: 39, EDN: 3, EDT: 3}
        assert gnome.total == 45

    def test_mysql_table_3(self, mysql):
        assert mysql.class_counts() == {EI: 38, EDN: 4, EDT: 2}
        assert mysql.total == 44

    def test_raw_archive_sizes_match_paper(self, apache, gnome, mysql):
        assert apache.raw_report_count == 5220
        assert gnome.raw_report_count == 500
        assert mysql.raw_report_count == 44000


class TestApacheEnvironmentDependentFaults:
    """Section 5.1 itemises all 14 environment-dependent Apache faults."""

    def test_nontransient_triggers(self, apache):
        triggers = sorted(f.trigger.value for f in apache.by_class(EDN))
        assert triggers == sorted(
            [
                "resource-leak",
                "file-descriptor-exhaustion",
                "disk-cache-full",
                "file-size-limit",
                "disk-full",
                "network-resource-exhaustion",
                "hardware-removal",
            ]
        )

    def test_transient_triggers(self, apache):
        triggers = sorted(f.trigger.value for f in apache.by_class(EDT))
        assert triggers == sorted(
            [
                "dns-error",
                "process-table-full",
                "workload-timing",
                "port-in-use",
                "dns-slow",
                "network-slow",
                "entropy-exhaustion",
            ]
        )


class TestGnomeEnvironmentDependentFaults:
    """Section 5.2 itemises all 6 environment-dependent GNOME faults."""

    def test_nontransient_triggers(self, gnome):
        triggers = sorted(f.trigger.value for f in gnome.by_class(EDN))
        assert triggers == sorted(
            ["host-config-change", "file-descriptor-exhaustion", "corrupt-external-state"]
        )

    def test_transient_triggers(self, gnome):
        triggers = sorted(f.trigger.value for f in gnome.by_class(EDT))
        assert triggers == sorted(
            ["unknown-transient", "race-condition", "race-condition"]
        )

    def test_components_are_in_study_scope(self, gnome):
        allowed = {"gnome-core", "gnome-libs", "panel", "gnome-pim", "gnumeric", "gmc"}
        for fault in gnome.faults:
            assert fault.component in allowed, fault.fault_id


class TestMysqlEnvironmentDependentFaults:
    """Section 5.3 itemises all 6 environment-dependent MySQL faults."""

    def test_nontransient_triggers(self, mysql):
        triggers = sorted(f.trigger.value for f in mysql.by_class(EDN))
        assert triggers == sorted(
            ["file-descriptor-exhaustion", "dns-misconfigured", "file-size-limit", "disk-full"]
        )

    def test_transient_are_both_races(self, mysql):
        triggers = [f.trigger for f in mysql.by_class(EDT)]
        assert triggers == [TriggerKind.RACE_CONDITION, TriggerKind.RACE_CONDITION]

    def test_every_fault_text_matches_a_study_keyword(self, mysql):
        # Section 4: MySQL faults were found by keyword search; every
        # curated fault must therefore be findable by those keywords.
        matcher = KeywordMatcher(MYSQL_STUDY_KEYWORDS)
        for fault in mysql.faults:
            text = "\n".join(
                [fault.synopsis, fault.description, fault.how_to_repeat, fault.fix_summary]
            )
            assert matcher.matches(text), fault.fault_id


class TestCurationQuality:
    @pytest.mark.parametrize("corpus_name", ["apache", "gnome", "mysql"])
    def test_all_faults_severe_or_critical(self, corpus_name, request):
        corpus = request.getfixturevalue(corpus_name)
        for fault in corpus.faults:
            assert fault.severity >= Severity.SERIOUS, fault.fault_id

    @pytest.mark.parametrize("corpus_name", ["apache", "gnome", "mysql"])
    def test_every_fault_has_repro_and_description(self, corpus_name, request):
        corpus = request.getfixturevalue(corpus_name)
        for fault in corpus.faults:
            assert fault.description, fault.fault_id
            assert fault.how_to_repeat, fault.fault_id
            assert fault.workload_op, fault.fault_id

    @pytest.mark.parametrize("corpus_name", ["apache", "gnome", "mysql"])
    def test_workload_ops_unique_within_corpus(self, corpus_name, request):
        corpus = request.getfixturevalue(corpus_name)
        ops = [fault.workload_op for fault in corpus.faults]
        assert len(ops) == len(set(ops))

    def test_apache_versions_are_known_releases(self, apache):
        known = {version for version, _ in APACHE_RELEASES}
        assert set(apache.versions()) <= known

    def test_mysql_versions_are_known_releases(self, mysql):
        known = {version for version, _ in MYSQL_RELEASES}
        assert set(mysql.versions()) <= known

    def test_dates_within_study_period(self, study):
        import datetime

        for fault in study.all_faults():
            assert datetime.date(1997, 1, 1) <= fault.date <= datetime.date(2000, 6, 1)
