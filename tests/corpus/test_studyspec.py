"""Tests for study-fault records and corpus invariants."""

import datetime

import pytest

from repro.bugdb.enums import (
    Application,
    FaultClass,
    Resolution,
    Status,
    Symptom,
    TriggerKind,
)
from repro.corpus.studyspec import StudyCorpus, StudyFault
from repro.errors import CorpusError


def make_fault(fault_id="F-1", fault_class=FaultClass.ENV_INDEPENDENT,
               trigger=TriggerKind.NONE, app=Application.APACHE, **overrides):
    defaults = dict(
        fault_id=fault_id,
        application=app,
        component="core",
        version="1.3.4",
        date=datetime.date(1999, 2, 1),
        synopsis="a crash",
        description="It crashes.",
        how_to_repeat="Do the thing.",
        fix_summary="Fixed it.",
        symptom=Symptom.CRASH,
        trigger=trigger,
        fault_class=fault_class,
    )
    defaults.update(overrides)
    return StudyFault(**defaults)


class TestStudyFault:
    def test_env_dependent_requires_trigger(self):
        with pytest.raises(CorpusError, match="needs a trigger"):
            make_fault(fault_class=FaultClass.ENV_DEP_TRANSIENT, trigger=TriggerKind.NONE)

    def test_env_independent_must_not_name_trigger(self):
        with pytest.raises(CorpusError, match="must not name a trigger"):
            make_fault(fault_class=FaultClass.ENV_INDEPENDENT, trigger=TriggerKind.DISK_FULL)

    def test_workload_timing_counts_as_trigger(self):
        fault = make_fault(
            fault_class=FaultClass.ENV_DEP_TRANSIENT,
            trigger=TriggerKind.WORKLOAD_TIMING,
            workload_dependent_timing=True,
        )
        assert fault.evidence.workload_dependent_timing

    def test_evidence_reflects_curation(self):
        fault = make_fault(
            fault_class=FaultClass.ENV_DEP_NONTRANSIENT,
            trigger=TriggerKind.DISK_FULL,
            reproducible=False,
        )
        evidence = fault.evidence
        assert evidence.trigger is TriggerKind.DISK_FULL
        assert not evidence.reproducible_on_developer_machine
        assert evidence.notes == fault.synopsis

    def test_to_report_with_evidence(self):
        report = make_fault().to_report(attach_evidence=True)
        assert report.evidence is not None
        assert report.report_id == "F-1"
        assert report.status is Status.CLOSED
        assert report.resolution is Resolution.FIXED

    def test_to_report_without_evidence(self):
        report = make_fault().to_report(attach_evidence=False)
        assert report.evidence is None

    def test_unfixed_fault_stays_open(self):
        report = make_fault(fix_summary="").to_report()
        assert report.status is Status.ANALYZED
        assert report.resolution is Resolution.UNRESOLVED
        assert report.comments == []

    def test_fixed_fault_gets_developer_comment(self):
        report = make_fault().to_report()
        assert len(report.comments) == 1
        assert "Fixed it." in report.comments[0].text


class TestStudyCorpus:
    def _counts(self, ei, edn, edt):
        return {
            FaultClass.ENV_INDEPENDENT: ei,
            FaultClass.ENV_DEP_NONTRANSIENT: edn,
            FaultClass.ENV_DEP_TRANSIENT: edt,
        }

    def test_valid_corpus(self):
        corpus = StudyCorpus(
            application=Application.APACHE,
            faults=(make_fault("A"), make_fault("B")),
            expected_counts=self._counts(2, 0, 0),
            raw_report_count=100,
        )
        assert corpus.total == 2

    def test_count_mismatch_rejected(self):
        with pytest.raises(CorpusError, match="do not match"):
            StudyCorpus(
                application=Application.APACHE,
                faults=(make_fault("A"),),
                expected_counts=self._counts(2, 0, 0),
                raw_report_count=100,
            )

    def test_duplicate_fault_id_rejected(self):
        with pytest.raises(CorpusError, match="duplicate fault id"):
            StudyCorpus(
                application=Application.APACHE,
                faults=(make_fault("A"), make_fault("A")),
                expected_counts=self._counts(2, 0, 0),
                raw_report_count=100,
            )

    def test_wrong_application_rejected(self):
        with pytest.raises(CorpusError, match="belongs to"):
            StudyCorpus(
                application=Application.GNOME,
                faults=(make_fault("A", app=Application.APACHE),),
                expected_counts=self._counts(1, 0, 0),
                raw_report_count=100,
            )

    def test_by_class_and_ground_truth(self):
        edt = make_fault("T", fault_class=FaultClass.ENV_DEP_TRANSIENT,
                         trigger=TriggerKind.RACE_CONDITION)
        corpus = StudyCorpus(
            application=Application.APACHE,
            faults=(make_fault("A"), edt),
            expected_counts=self._counts(1, 0, 1),
            raw_report_count=100,
        )
        assert corpus.by_class(FaultClass.ENV_DEP_TRANSIENT) == [edt]
        assert corpus.ground_truth() == {
            "A": FaultClass.ENV_INDEPENDENT,
            "T": FaultClass.ENV_DEP_TRANSIENT,
        }

    def test_versions_first_appearance_order(self):
        corpus = StudyCorpus(
            application=Application.APACHE,
            faults=(
                make_fault("A", version="1.3.4"),
                make_fault("B", version="1.2.4"),
                make_fault("C", version="1.3.4"),
            ),
            expected_counts=self._counts(3, 0, 0),
            raw_report_count=100,
        )
        assert corpus.versions() == ["1.3.4", "1.2.4"]
