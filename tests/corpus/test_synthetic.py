"""Tests for the synthetic-corpus generator."""

import pytest

from repro.bugdb.enums import Application, FaultClass
from repro.classify.text import TextClassifier
from repro.corpus.synthetic import synthetic_corpus


class TestSyntheticCorpus:
    def test_counts_match_arguments(self):
        corpus = synthetic_corpus(
            Application.APACHE, env_independent=10, nontransient=4, transient=6
        )
        assert corpus.class_counts() == {
            FaultClass.ENV_INDEPENDENT: 10,
            FaultClass.ENV_DEP_NONTRANSIENT: 4,
            FaultClass.ENV_DEP_TRANSIENT: 6,
        }

    def test_deterministic_for_seed(self):
        first = synthetic_corpus(Application.MYSQL, env_independent=5, nontransient=2, transient=2, seed=9)
        second = synthetic_corpus(Application.MYSQL, env_independent=5, nontransient=2, transient=2, seed=9)
        assert [f.synopsis for f in first.faults] == [f.synopsis for f in second.faults]

    def test_zero_counts_allowed(self):
        corpus = synthetic_corpus(Application.GNOME, env_independent=0, nontransient=0, transient=3)
        assert corpus.total == 3

    def test_text_classifier_recovers_synthetic_ground_truth(self):
        corpus = synthetic_corpus(
            Application.APACHE, env_independent=20, nontransient=15, transient=15, seed=4
        )
        classifier = TextClassifier()
        truth = corpus.ground_truth()
        for report in corpus.to_reports(attach_evidence=False):
            assert classifier.classify_report(report).fault_class is truth[report.report_id], (
                report.report_id
            )

    def test_versions_spread_over_releases(self):
        corpus = synthetic_corpus(
            Application.APACHE, env_independent=9, nontransient=0, transient=0,
            versions=("1.0", "2.0", "3.0"),
        )
        assert set(corpus.versions()) == {"1.0", "2.0", "3.0"}

    @pytest.mark.parametrize("application", list(Application))
    def test_all_applications_supported(self, application):
        corpus = synthetic_corpus(application, env_independent=2, nontransient=1, transient=1)
        assert corpus.application is application
