"""Tests for streaming archive generation."""

import pytest

from repro.bugdb import debbugs, gnats, mbox
from repro.bugdb.enums import Application
from repro.corpus.noise import (
    apache_noise,
    gnome_noise,
    iter_apache_noise,
    iter_gnome_noise,
)
from repro.corpus.render import (
    apache_raw_archive,
    gnome_raw_archive,
    mysql_raw_archive,
)
from repro.corpus.stream import (
    _block_shuffle,
    iter_apache_reports,
    iter_gnome_reports,
    iter_mysql_messages,
    write_archive,
    write_records,
)
from repro.rng import make_rng


class TestNoiseGenerators:
    def test_iter_apache_noise_equals_list_api(self, apache):
        assert list(iter_apache_noise(apache, total_reports=200)) == (
            apache_noise(apache, total_reports=200)
        )

    def test_iter_gnome_noise_equals_list_api(self, gnome):
        assert list(iter_gnome_noise(gnome, total_reports=150)) == (
            gnome_noise(gnome, total_reports=150)
        )

    def test_noise_generation_is_lazy(self, apache):
        stream = iter_apache_noise(apache, total_reports=10_000)
        first = next(stream)
        assert first.report_id  # produced without materializing the rest


class TestReportStreams:
    def test_apache_stream_population_matches_renderer(self, apache):
        streamed = sorted(
            gnats.render_pr(report)
            for report in iter_apache_reports(apache, total_reports=300)
        )
        rendered = sorted(
            gnats.render_pr(report)
            for report in gnats.parse_archive(
                apache_raw_archive(apache, total_reports=300)
            )
        )
        assert streamed == rendered

    def test_gnome_stream_population_matches_renderer(self, gnome):
        streamed = sorted(
            debbugs.render_report(report)
            for report in iter_gnome_reports(gnome, total_reports=200)
        )
        rendered = sorted(
            debbugs.render_report(report)
            for report in debbugs.parse_archive(
                gnome_raw_archive(gnome, total_reports=200)
            )
        )
        assert streamed == rendered

    def test_mysql_stream_population_matches_renderer(self, mysql):
        streamed = sorted(
            mbox.render_message(message)
            for message in iter_mysql_messages(mysql, total_messages=1500)
        )
        rendered = sorted(
            mbox.render_message(message)
            for message in mbox.parse_archive(
                mysql_raw_archive(mysql, total_messages=1500)
            )
        )
        assert streamed == rendered

    def test_streams_are_deterministic(self, apache):
        first = [r.report_id for r in iter_apache_reports(apache, total_reports=100)]
        second = [r.report_id for r in iter_apache_reports(apache, total_reports=100)]
        assert first == second

    def test_all_study_faults_present(self, apache):
        fault_ids = {fault.to_report(attach_evidence=False).report_id
                     for fault in apache.faults}
        streamed_ids = {
            report.report_id
            for report in iter_apache_reports(apache, total_reports=200)
        }
        assert fault_ids <= streamed_ids


class TestBlockShuffle:
    def test_preserves_population(self):
        items = list(range(100))
        shuffled = list(_block_shuffle(iter(items), make_rng(1, "t"), 16))
        assert sorted(shuffled) == items
        assert shuffled != items

    def test_is_seeded(self):
        items = list(range(50))
        first = list(_block_shuffle(iter(items), make_rng(7, "t"), 8))
        second = list(_block_shuffle(iter(items), make_rng(7, "t"), 8))
        assert first == second

    def test_buffer_bounds_displacement(self):
        # an item can move at most one buffer-width from its source slot
        items = list(range(100))
        shuffled = list(_block_shuffle(iter(items), make_rng(3, "t"), 10))
        for position, item in enumerate(shuffled):
            assert abs(position - item) < 10


class TestWriters:
    @pytest.mark.parametrize(
        "application",
        [Application.APACHE, Application.GNOME, Application.MYSQL],
    )
    def test_write_records_byte_identical_to_render_archive(
        self, tmp_path, study, application
    ):
        corpus = study.corpus(application)
        if application is Application.APACHE:
            reference = apache_raw_archive(corpus, total_reports=150)
            records = gnats.parse_archive(reference)
        elif application is Application.GNOME:
            reference = gnome_raw_archive(corpus, total_reports=120)
            records = debbugs.parse_archive(reference)
        else:
            reference = mysql_raw_archive(corpus, total_messages=600)
            records = mbox.parse_archive(reference)
        path = tmp_path / "out"
        stats = write_records(path, application, records)
        assert path.read_text(encoding="utf-8") == reference
        assert stats.records == len(records)
        assert stats.bytes == path.stat().st_size

    @pytest.mark.parametrize(
        "application",
        [Application.APACHE, Application.GNOME, Application.MYSQL],
    )
    def test_write_archive_round_trips_through_the_parser(
        self, tmp_path, study, application
    ):
        from repro.pipeline.formats import format_for

        corpus = study.corpus(application)
        path = tmp_path / "archive"
        stats = write_archive(path, application, corpus, scale=300)
        fmt = format_for(application)
        records = fmt.parse(path.read_text(encoding="utf-8"))
        assert len(records) == stats.records
        assert stats.records >= 300

    def test_write_archive_scales_past_default(self, tmp_path, apache):
        small = write_archive(tmp_path / "s", Application.APACHE, apache, scale=100)
        large = write_archive(tmp_path / "l", Application.APACHE, apache, scale=400)
        assert large.records == 400
        assert small.records == 100
        assert large.bytes > small.bytes
        assert large.megabytes == large.bytes / (1024 * 1024)

    def test_write_archive_rejects_unknown_application(self, tmp_path, apache):
        with pytest.raises((ValueError, KeyError)):
            write_archive(tmp_path / "x", "not-an-app", apache)
