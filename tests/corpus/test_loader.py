"""Tests for the bundled study loader."""

from repro.bugdb.enums import Application, FaultClass
from repro.corpus.loader import full_study


class TestFullStudy:
    def test_total_is_139(self, study):
        assert study.total_faults == 139

    def test_cached_instance(self):
        assert full_study() is full_study()

    def test_fresh_bypasses_the_memo(self):
        cached = full_study()
        fresh = full_study(fresh=True)
        assert fresh is not cached
        assert fresh.total_faults == cached.total_faults

    def test_fresh_leaves_the_memo_untouched(self):
        cached = full_study()
        full_study(fresh=True)
        assert full_study() is cached

    def test_aggregate_counts_match_section_5_4(self, study):
        counts = study.aggregate_counts()
        assert counts[FaultClass.ENV_INDEPENDENT] == 113
        assert counts[FaultClass.ENV_DEP_NONTRANSIENT] == 14
        assert counts[FaultClass.ENV_DEP_TRANSIENT] == 12

    def test_all_faults_ordered_by_application(self, study):
        faults = study.all_faults()
        assert len(faults) == 139
        apps = [fault.application for fault in faults]
        # Apache block, then GNOME, then MySQL.
        assert apps == sorted(apps, key=lambda a: list(Application).index(a))

    def test_ground_truth_covers_everything(self, study):
        truth = study.ground_truth()
        assert len(truth) == 139

    def test_to_database(self, study):
        db = study.to_database()
        assert len(db) == 139
        assert len(db.for_application(Application.APACHE)) == 50
        assert len(db.for_application(Application.GNOME)) == 45
        assert len(db.for_application(Application.MYSQL)) == 44

    def test_to_database_without_evidence(self, study):
        db = study.to_database(attach_evidence=False)
        assert all(report.evidence is None for report in db)


class TestStudyDataImmutability:
    def test_corpora_mapping_rejects_assignment(self, study):
        import pytest

        with pytest.raises(TypeError):
            study.corpora[Application.APACHE] = None

    def test_corpora_mapping_rejects_deletion(self, study):
        import pytest

        with pytest.raises(TypeError):
            del study.corpora[Application.APACHE]

    def test_dataclass_is_frozen(self, study):
        import dataclasses

        import pytest

        with pytest.raises(dataclasses.FrozenInstanceError):
            study.corpora = {}

    def test_pickle_round_trip(self, study):
        import pickle

        clone = pickle.loads(pickle.dumps(study))
        assert clone.total_faults == study.total_faults
        assert clone.ground_truth() == study.ground_truth()


class TestDefaultStudy:
    def test_full_study_is_the_shared_instance(self):
        from repro.corpus.loader import default_study

        assert full_study() is default_study()

    def test_set_default_study_installs_and_resets(self):
        from repro.corpus.loader import default_study, set_default_study

        original = default_study()
        try:
            replacement = full_study(fresh=True)
            set_default_study(replacement)
            assert default_study() is replacement
            assert full_study() is replacement
        finally:
            set_default_study(original)
        assert default_study() is original
