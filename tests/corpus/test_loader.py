"""Tests for the bundled study loader."""

from repro.bugdb.enums import Application, FaultClass
from repro.corpus.loader import full_study


class TestFullStudy:
    def test_total_is_139(self, study):
        assert study.total_faults == 139

    def test_cached_instance(self):
        assert full_study() is full_study()

    def test_fresh_bypasses_the_memo(self):
        cached = full_study()
        fresh = full_study(fresh=True)
        assert fresh is not cached
        assert fresh.total_faults == cached.total_faults

    def test_fresh_leaves_the_memo_untouched(self):
        cached = full_study()
        full_study(fresh=True)
        assert full_study() is cached

    def test_aggregate_counts_match_section_5_4(self, study):
        counts = study.aggregate_counts()
        assert counts[FaultClass.ENV_INDEPENDENT] == 113
        assert counts[FaultClass.ENV_DEP_NONTRANSIENT] == 14
        assert counts[FaultClass.ENV_DEP_TRANSIENT] == 12

    def test_all_faults_ordered_by_application(self, study):
        faults = study.all_faults()
        assert len(faults) == 139
        apps = [fault.application for fault in faults]
        # Apache block, then GNOME, then MySQL.
        assert apps == sorted(apps, key=lambda a: list(Application).index(a))

    def test_ground_truth_covers_everything(self, study):
        truth = study.ground_truth()
        assert len(truth) == 139

    def test_to_database(self, study):
        db = study.to_database()
        assert len(db) == 139
        assert len(db.for_application(Application.APACHE)) == 50
        assert len(db.for_application(Application.GNOME)) == 45
        assert len(db.for_application(Application.MYSQL)) == 44

    def test_to_database_without_evidence(self, study):
        db = study.to_database(attach_evidence=False)
        assert all(report.evidence is None for report in db)
