"""Tests for the noise-report generators."""

import pytest

from repro.bugdb.enums import Severity
from repro.corpus.noise import apache_noise, gnome_noise
from repro.mining.gnome import GNOME_STUDY_COMPONENTS
from repro.mining.keywords import KeywordMatcher, MYSQL_STUDY_KEYWORDS


class TestApacheNoise:
    def test_count_fills_to_total(self, apache):
        noise = apache_noise(apache, total_reports=300)
        assert len(noise) == 300 - apache.total

    def test_default_total_is_paper_size(self, apache):
        noise = apache_noise(apache)
        assert len(noise) == 5220 - 50

    def test_total_below_corpus_rejected(self, apache):
        with pytest.raises(ValueError, match="smaller than the study corpus"):
            apache_noise(apache, total_reports=10)

    def test_deterministic_for_seed(self, apache):
        first = apache_noise(apache, seed=7, total_reports=200)
        second = apache_noise(apache, seed=7, total_reports=200)
        assert [r.report_id for r in first] == [r.report_id for r in second]
        assert [r.synopsis for r in first] == [r.synopsis for r in second]

    def test_different_seeds_differ(self, apache):
        first = apache_noise(apache, seed=1, total_reports=200)
        second = apache_noise(apache, seed=2, total_reports=200)
        assert [r.synopsis for r in first] != [r.synopsis for r in second]

    def test_every_noise_report_fails_some_study_criterion(self, apache):
        study_ids = {fault.fault_id for fault in apache.faults}
        for report in apache_noise(apache, total_reports=400):
            survives = (
                report.is_production_version
                and report.severity >= Severity.SERIOUS
                and report.is_high_impact
                and not report.is_duplicate
            )
            if survives:
                # The only surviving noise must be an (unmarked) duplicate
                # of a study fault, which the dedup stage removes.
                assert report.report_id.startswith("NOISE-DUP-"), report.report_id

    def test_unique_report_ids(self, apache):
        noise = apache_noise(apache, total_reports=500)
        ids = [report.report_id for report in noise]
        assert len(ids) == len(set(ids))


class TestGnomeNoise:
    def test_count_fills_to_total(self, gnome):
        noise = gnome_noise(gnome, study_components=GNOME_STUDY_COMPONENTS)
        assert len(noise) == 500 - 45

    def test_noise_never_survives_gnome_criteria(self, gnome):
        components = set(GNOME_STUDY_COMPONENTS)
        for report in gnome_noise(gnome, study_components=GNOME_STUDY_COMPONENTS):
            survives = (
                report.component in components
                and report.severity >= Severity.SERIOUS
                and report.is_high_impact
                and not report.is_duplicate
            )
            if survives:
                assert report.report_id.startswith("NOISE-DUP-"), report.report_id

    def test_mysql_keywords_absent_from_generic_noise(self, gnome):
        # Noise vocabulary must not collide with the MySQL study keywords
        # (the same templates feed all generators).
        matcher = KeywordMatcher(MYSQL_STUDY_KEYWORDS)
        for report in gnome_noise(gnome, study_components=GNOME_STUDY_COMPONENTS):
            if report.report_id.startswith(("NOISE-Q-", "NOISE-M-")):
                assert not matcher.matches(report.synopsis + "\n" + report.description), (
                    report.report_id
                )
