"""Index-backed keyword prefilter vs. the linear-scan oracle.

The MySQL miner narrows ~44,000 messages through keyword matching; the
fast path prefilters through an inverted index before confirming with
the same regex matcher.  The linear :class:`KeywordMatcher` scan is
kept as the verification oracle: on the paper's full-scale archive both
paths must select exactly the same messages and mine exactly the same
bugs.  (The benchmark suite measures the speed; *this* test pins the
equivalence.)
"""

import datetime

import pytest

from repro.bugdb import mbox
from repro.corpus.render import mysql_raw_archive
from repro.mining import mine_mysql
from repro.mining.keywords import KeywordMatcher, MYSQL_STUDY_KEYWORDS
from repro.mining.mysql import (
    build_message_index,
    keyword_matching_messages,
    message_search_text,
)


@pytest.fixture(scope="module")
def full_scale_messages(mysql):
    """The paper's full ~44,000-message archive, parsed once."""
    return mbox.parse_archive(mysql_raw_archive(mysql, total_messages=None))


class TestFullArchiveEquivalence:
    def test_archive_is_full_scale(self, full_scale_messages):
        assert len(full_scale_messages) >= 44000

    def test_index_hit_set_equals_linear_scan(self, full_scale_messages):
        matcher = KeywordMatcher(MYSQL_STUDY_KEYWORDS)
        linear = keyword_matching_messages(full_scale_messages, matcher)
        index = build_message_index(full_scale_messages)
        indexed = keyword_matching_messages(
            full_scale_messages, matcher, index=index
        )
        assert indexed == linear

    def test_mining_with_and_without_index_is_identical(self, full_scale_messages):
        with_index = mine_mysql(full_scale_messages, use_index=True)
        without_index = mine_mysql(full_scale_messages, use_index=False)
        assert with_index.items == without_index.items
        assert with_index.trace.as_rows() == without_index.trace.as_rows()
        assert len(with_index.items) == 44

    def test_prebuilt_index_matches_internally_built_one(self, full_scale_messages):
        index = build_message_index(full_scale_messages)
        prebuilt = mine_mysql(full_scale_messages, index=index)
        internal = mine_mysql(full_scale_messages)
        assert prebuilt.items == internal.items
        assert prebuilt.trace.as_rows() == internal.trace.as_rows()


class TestPrefilterIsSuperset:
    """The index prefilter may only ever over-select, never under-select.

    Index tokens split on ``[a-z0-9]+`` while the regex matcher allows
    ``\\w*`` suffixes (underscores included), so every regex hit is
    token-prefix-reachable; the regex confirm then trims the surplus.
    """

    def test_candidates_cover_every_linear_hit(self, full_scale_messages):
        matcher = KeywordMatcher(MYSQL_STUDY_KEYWORDS)
        index = build_message_index(full_scale_messages)
        candidates = index.search_any(matcher.keywords)
        for position, message in enumerate(full_scale_messages):
            if matcher.matches(message_search_text(message)):
                assert position in candidates

    def test_underscore_compounds_stay_covered(self):
        # "crash_me" is a regex hit ("crash" + \w* suffix) but tokenizes
        # as two index tokens; the prefix lookup must still surface it.
        messages = [
            mbox.MailMessage(
                message_id="m1@x",
                sender="a@x",
                date=datetime.date(1999, 1, 1),
                subject="the crash_me script fails",
                body="running crash_me against 3.22",
            )
        ]
        matcher = KeywordMatcher(MYSQL_STUDY_KEYWORDS)
        linear = keyword_matching_messages(messages, matcher)
        indexed = keyword_matching_messages(
            messages, matcher, index=build_message_index(messages)
        )
        assert indexed == linear == messages
