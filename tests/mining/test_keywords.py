"""Tests for keyword matching."""

import pytest

from repro.mining.keywords import KeywordMatcher, MYSQL_STUDY_KEYWORDS


class TestKeywordMatcher:
    def test_paper_keywords(self):
        assert MYSQL_STUDY_KEYWORDS == ("crash", "segmentation", "race", "died")

    def test_requires_keywords(self):
        with pytest.raises(ValueError):
            KeywordMatcher([])

    @pytest.mark.parametrize(
        "text",
        [
            "the server crashes on startup",
            "it CRASHED again",
            "died with a segmentation fault",
            "a race between two threads",
            "mysqld died last night",
        ],
    )
    def test_matches_study_texts(self, text):
        assert KeywordMatcher(MYSQL_STUDY_KEYWORDS).matches(text)

    @pytest.mark.parametrize(
        "text",
        [
            "the stack trace shows nothing",  # trace != race
            "embraced the new API",           # embraced != race
            "gracefully restarted",           # grace != race
            "how do I tune the key cache",
            "",
        ],
    )
    def test_no_match_inside_other_words(self, text):
        assert not KeywordMatcher(MYSQL_STUDY_KEYWORDS).matches(text)

    def test_suffix_stemming(self):
        matcher = KeywordMatcher(["crash"])
        assert matcher.matches("crashing hard")
        assert matcher.matches("many crashes")
        assert not matcher.matches("ucrash")  # left word boundary required

    def test_find_all_in_order(self):
        matcher = KeywordMatcher(MYSQL_STUDY_KEYWORDS)
        hits = matcher.find_all("it crashed, then died; the crash repeated")
        assert hits == ["crashed", "died", "crash"]

    def test_matched_stems(self):
        matcher = KeywordMatcher(MYSQL_STUDY_KEYWORDS)
        stems = matcher.matched_stems("crashed with a segmentation fault")
        assert stems == {"crash", "segmentation"}

    def test_matched_stems_credits_overlapping_stems(self):
        # One hit word can satisfy several stems; all must be credited.
        matcher = KeywordMatcher(["crash", "crashes"])
        assert matcher.matched_stems("many crashes today") == {"crash", "crashes"}
        assert matcher.matched_stems("one crash today") == {"crash"}

    def test_matched_stems_no_hits(self):
        matcher = KeywordMatcher(MYSQL_STUDY_KEYWORDS)
        assert matcher.matched_stems("all quiet on the server") == set()

    def test_matched_stems_single_pass_equals_per_stem_scan(self):
        # The single-pass implementation must agree with the brute-force
        # one-regex-per-stem reference on mixed text.
        keywords = ("crash", "crashes", "race", "died", "segmentation")
        matcher = KeywordMatcher(keywords)
        text = (
            "Crashes everywhere: the server crashed, a race appeared, "
            "then mysqld died during the raced segment. Segmentation "
            "faults followed; it races on."
        )
        import re

        reference = {
            stem
            for stem in keywords
            if re.search(rf"\b{re.escape(stem)}\w*\b", text, re.IGNORECASE)
        }
        assert matcher.matched_stems(text) == reference

    def test_matched_stems_stops_after_all_stems_found(self):
        # Early exit must not change the answer on long tails.
        matcher = KeywordMatcher(["crash"])
        text = "crash " * 3 + "nothing else " * 100
        assert matcher.matched_stems(text) == {"crash"}

    def test_case_insensitive(self):
        assert KeywordMatcher(["died"]).matches("the server DIED")
