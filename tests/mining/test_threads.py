"""Tests for mailing-list thread reconstruction."""

import datetime

from repro.bugdb.mbox import MailMessage
from repro.mining.threads import group_threads


def make_message(message_id, subject, *, day=1, in_reply_to=None):
    return MailMessage(
        message_id=message_id,
        sender="u@x",
        date=datetime.date(1999, 5, day),
        subject=subject,
        body="body",
        in_reply_to=in_reply_to,
    )


class TestGroupThreads:
    def test_reply_chain_groups(self):
        messages = [
            make_message("root@x", "server crashes", day=1),
            make_message("r1@x", "Re: server crashes", day=2, in_reply_to="root@x"),
            make_message("r2@x", "Re: server crashes", day=3, in_reply_to="r1@x"),
        ]
        threads = group_threads(messages)
        assert len(threads) == 1
        assert threads[0].size == 3
        assert threads[0].root.message_id == "root@x"

    def test_subject_fallback_without_headers(self):
        messages = [
            make_message("root@x", "server crashes", day=1),
            make_message("r1@x", "Re: server crashes", day=2),  # header dropped
        ]
        threads = group_threads(messages)
        assert len(threads) == 1

    def test_distinct_subjects_stay_separate(self):
        messages = [
            make_message("a@x", "crash in parser"),
            make_message("b@x", "replication question"),
        ]
        assert len(group_threads(messages)) == 2

    def test_root_is_earliest_non_reply(self):
        messages = [
            make_message("late@x", "server crashes", day=9),
            make_message("early@x", "Re: server crashes", day=1, in_reply_to="late@x"),
        ]
        thread = group_threads(messages)[0]
        assert thread.root.message_id == "late@x"

    def test_all_replies_falls_back_to_earliest(self):
        messages = [
            make_message("r1@x", "Re: lost root", day=2),
            make_message("r2@x", "Re: lost root", day=5),
        ]
        thread = group_threads(messages)[0]
        assert thread.root.message_id == "r1@x"

    def test_threads_ordered_by_root_date(self):
        messages = [
            make_message("b@x", "second subject", day=8),
            make_message("a@x", "first subject", day=2),
        ]
        threads = group_threads(messages)
        assert [t.root.message_id for t in threads] == ["a@x", "b@x"]

    def test_reply_to_unknown_message_still_grouped_by_subject(self):
        messages = [
            make_message("root@x", "crash report", day=1),
            make_message("r1@x", "Re: crash report", day=2, in_reply_to="missing@x"),
        ]
        assert len(group_threads(messages)) == 1

    def test_full_text_includes_subject_and_bodies(self):
        messages = [make_message("root@x", "crash report")]
        thread = group_threads(messages)[0]
        assert "crash report" in thread.full_text
        assert "body" in thread.full_text

    def test_empty_input(self):
        assert group_threads([]) == []
