"""Tests for duplicate-report reduction."""

import datetime

from repro.bugdb.enums import Application, Severity, Symptom
from repro.bugdb.model import BugReport
from repro.mining.dedup import Deduplicator

import pytest


def make_report(report_id, synopsis, *, day=1):
    return BugReport(
        report_id=report_id,
        application=Application.APACHE,
        component="core",
        version="1.3.4",
        date=datetime.date(1999, 1, day),
        reporter="u@x",
        synopsis=synopsis,
        severity=Severity.CRITICAL,
        symptom=Symptom.CRASH,
    )


class TestExactDedup:
    def test_identical_synopses_merge(self):
        reports = [
            make_report("A", "segfault on long URL", day=1),
            make_report("B", "segfault on long URL", day=5),
        ]
        result = Deduplicator(use_fuzzy=False).dedup(reports)
        assert len(result.groups) == 1
        assert result.groups[0].primary.report_id == "A"
        assert result.duplicate_count == 1

    def test_earliest_report_is_primary(self):
        reports = [
            make_report("B", "segfault on long URL", day=9),
            make_report("A", "segfault on long URL", day=2),
        ]
        result = Deduplicator(use_fuzzy=False).dedup(reports)
        assert result.groups[0].primary.report_id == "A"

    def test_word_order_does_not_matter(self):
        reports = [
            make_report("A", "long URL segfault"),
            make_report("B", "segfault long URL"),
        ]
        assert len(Deduplicator(use_fuzzy=False).dedup(reports).groups) == 1

    def test_distinct_bugs_stay_separate(self):
        reports = [
            make_report("A", "segfault on long URL"),
            make_report("B", "hang in directory listing"),
        ]
        assert len(Deduplicator(use_fuzzy=False).dedup(reports).groups) == 2


class TestFuzzyDedup:
    def test_reworded_duplicate_merges(self):
        reports = [
            make_report("A", "dies with a segfault when the submitted URL is very long", day=1),
            make_report("B", "again: very long submitted URL segfault dies with", day=8),
        ]
        result = Deduplicator(use_fuzzy=True).dedup(reports)
        assert len(result.groups) == 1
        assert result.groups[0].primary.report_id == "A"

    def test_fuzzy_disabled_keeps_them_separate(self):
        reports = [
            make_report("A", "dies with a segfault when the submitted URL is very long", day=1),
            make_report("B", "again: very long submitted URL segfault dies with", day=8),
        ]
        assert len(Deduplicator(use_fuzzy=False).dedup(reports).groups) == 2

    def test_threshold_controls_merging(self):
        reports = [
            make_report("A", "segfault parsing chunked encoding header", day=1),
            make_report("B", "segfault parsing cookie header", day=3),
        ]
        strict = Deduplicator(use_fuzzy=True, fuzzy_threshold=0.9)
        loose = Deduplicator(use_fuzzy=True, fuzzy_threshold=0.3)
        assert len(strict.dedup(reports).groups) == 2
        assert len(loose.dedup(reports).groups) == 1

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            Deduplicator(fuzzy_threshold=0.0)
        with pytest.raises(ValueError):
            Deduplicator(fuzzy_threshold=1.5)

    def test_unique_returns_primaries_only(self):
        reports = [
            make_report("A", "one bug here"),
            make_report("B", "another bug there"),
            make_report("C", "one bug here", day=9),
        ]
        unique = Deduplicator().unique(reports)
        assert sorted(r.report_id for r in unique) == ["A", "B"]

    def test_custom_key_function(self):
        dedup = Deduplicator(use_fuzzy=False, key_fn=lambda report: report.version)
        reports = [make_report("A", "x"), make_report("B", "completely different")]
        assert len(dedup.dedup(reports).groups) == 1  # same version

    def test_group_size(self):
        reports = [
            make_report("A", "one bug here", day=1),
            make_report("B", "one bug here", day=2),
            make_report("C", "one bug here", day=3),
        ]
        group = Deduplicator().dedup(reports).groups[0]
        assert group.size == 3
        assert len(group.duplicates) == 2

    def test_curated_study_faults_never_merge(self, study):
        # Fuzzy dedup at the pipeline threshold must keep all 139 unique
        # bugs distinct -- otherwise the paper's counts would be wrong.
        dedup = Deduplicator()
        for corpus in study.corpora.values():
            reports = corpus.to_reports()
            assert len(dedup.dedup(reports).groups) == corpus.total
