"""Tests for the narrowing-funnel statistics."""

import datetime

import pytest

from repro.bugdb.enums import Application, Severity, Symptom
from repro.bugdb.model import BugReport
from repro.mining.dedup import Deduplicator
from repro.mining.funnel import (
    duplicate_rate,
    funnel_from_trace,
    mean_reports_per_bug,
)
from repro.mining.pipeline import NarrowingTrace


def make_trace(*counts, names=None):
    trace = NarrowingTrace()
    for index, count in enumerate(counts):
        trace.record(names[index] if names else f"stage-{index}", count)
    return trace


class TestFunnelSummary:
    def test_stage_reductions(self):
        funnel = funnel_from_trace(make_trace(100, 40, 10))
        assert len(funnel.stages) == 2
        assert funnel.stages[0].before == 100
        assert funnel.stages[0].after == 40
        assert funnel.stages[0].kept_fraction == 0.4
        assert funnel.stages[0].removed == 60

    def test_overall_selectivity(self):
        funnel = funnel_from_trace(make_trace(1000, 500, 50))
        assert funnel.overall_selectivity == 0.05

    def test_most_selective_stage(self):
        funnel = funnel_from_trace(
            make_trace(100, 90, 9, names=["raw", "mild", "harsh"])
        )
        assert funnel.most_selective_stage().name == "harsh"

    def test_rows(self):
        rows = funnel_from_trace(make_trace(10, 5)).rows()
        assert rows == [("stage-1", 10, 5, "50.0%")]

    def test_empty_funnel(self):
        funnel = funnel_from_trace(NarrowingTrace())
        assert funnel.overall_selectivity == 1.0
        with pytest.raises(ValueError):
            funnel.most_selective_stage()

    def test_apache_funnel_end_to_end(self, apache):
        from repro.bugdb import gnats
        from repro.corpus.render import apache_raw_archive
        from repro.mining import mine_apache

        reports = gnats.parse_archive(apache_raw_archive(apache, total_reports=500))
        funnel = funnel_from_trace(mine_apache(reports).trace)
        assert funnel.overall_selectivity == 50 / 500
        assert all(0.0 <= stage.kept_fraction <= 1.0 for stage in funnel.stages)


class TestDuplicateStatistics:
    def _reports(self):
        def make(report_id, synopsis, day):
            return BugReport(
                report_id=report_id,
                application=Application.APACHE,
                component="core",
                version="1.3.4",
                date=datetime.date(1999, 1, day),
                reporter="u@x",
                synopsis=synopsis,
                severity=Severity.CRITICAL,
                symptom=Symptom.CRASH,
            )

        return [
            make("A", "one bug here", 1),
            make("B", "one bug here", 2),
            make("C", "one bug here", 3),
            make("D", "different thing entirely", 1),
        ]

    def test_duplicate_rate(self):
        result = Deduplicator().dedup(self._reports())
        assert duplicate_rate(result) == 2 / 4

    def test_mean_reports_per_bug(self):
        result = Deduplicator().dedup(self._reports())
        assert mean_reports_per_bug(result) == 2.0

    def test_empty(self):
        result = Deduplicator().dedup([])
        assert duplicate_rate(result) == 0.0
        assert mean_reports_per_bug(result) == 0.0
