"""End-to-end miner tests: raw archives -> the paper's study sets."""

import pytest

from repro.bugdb import debbugs, gnats, mbox
from repro.bugdb.enums import Severity
from repro.corpus.render import apache_raw_archive, gnome_raw_archive, mysql_raw_archive
from repro.mining import (
    GNOME_STUDY_COMPONENTS,
    mine_apache,
    mine_gnome,
    mine_mysql,
)
from repro.mining.dedup import Deduplicator


@pytest.fixture(scope="module")
def apache_reports(apache):
    return gnats.parse_archive(apache_raw_archive(apache, total_reports=600))


@pytest.fixture(scope="module")
def gnome_reports(gnome):
    return debbugs.parse_archive(
        gnome_raw_archive(gnome, study_components=GNOME_STUDY_COMPONENTS)
    )


@pytest.fixture(scope="module")
def mysql_messages(mysql):
    return mbox.parse_archive(mysql_raw_archive(mysql, total_messages=2500))


class TestMineApache:
    def test_narrows_to_exactly_50_unique_bugs(self, apache_reports):
        result = mine_apache(apache_reports)
        assert len(result.items) == 50

    def test_survivors_are_the_study_faults(self, apache_reports, apache):
        result = mine_apache(apache_reports)
        assert {r.report_id for r in result.items} == {
            f.fault_id for f in apache.faults
        }

    def test_trace_has_paper_stages(self, apache_reports):
        trace = mine_apache(apache_reports).trace
        names = [name for name, _ in trace.as_rows()]
        assert names == [
            "raw reports",
            "production versions",
            "severity>=serious",
            "high-impact symptom",
            "not marked duplicate",
            "unique bugs",
        ]
        counts = [count for _, count in trace.as_rows()]
        assert counts == sorted(counts, reverse=True)  # monotone narrowing

    def test_min_severity_is_configurable(self, apache_reports):
        strict = mine_apache(apache_reports, min_severity=Severity.CRITICAL)
        assert len(strict.items) < 50  # serious-only faults drop out

    def test_exact_dedup_alone_misses_reworded_duplicates(self, apache_reports):
        loose = mine_apache(apache_reports, deduplicator=Deduplicator(use_fuzzy=False))
        assert len(loose.items) > 50


class TestMineGnome:
    def test_narrows_to_exactly_45_unique_bugs(self, gnome_reports):
        assert len(mine_gnome(gnome_reports).items) == 45

    def test_survivors_are_the_study_faults(self, gnome_reports, gnome):
        result = mine_gnome(gnome_reports)
        assert {r.report_id for r in result.items} == {f.fault_id for f in gnome.faults}

    def test_component_scope_is_configurable(self, gnome_reports):
        result = mine_gnome(gnome_reports, components=("gnumeric",))
        assert 0 < len(result.items) < 45
        assert all(r.component == "gnumeric" for r in result.items)


class TestMineMysql:
    def test_narrows_to_exactly_44_unique_bugs(self, mysql_messages):
        assert len(mine_mysql(mysql_messages).items) == 44

    def test_trace_records_keyword_and_thread_stages(self, mysql_messages):
        trace = mine_mysql(mysql_messages).trace
        names = [name for name, _ in trace.as_rows()]
        assert names[0] == "raw messages"
        assert names[-1] == "unique bugs"
        assert any("keyword" in name for name in names)
        assert any("thread" in name for name in names)

    def test_candidate_reports_carry_version_and_repro(self, mysql_messages, mysql):
        result = mine_mysql(mysql_messages)
        versions = {f.version for f in mysql.faults}
        for report in result.items:
            assert report.version in versions
            assert report.how_to_repeat

    def test_restricting_keywords_loses_bugs(self, mysql_messages):
        result = mine_mysql(mysql_messages, keywords=("segmentation",))
        assert len(result.items) < 44

    def test_reply_only_keywords_do_not_create_bugs(self, mysql_messages):
        # Chatter threads where only a reply mentions a crash must not
        # produce candidate bugs (root-gated mining).
        result = mine_mysql(mysql_messages)
        for report in result.items:
            assert not report.report_id.startswith("chatter.")
