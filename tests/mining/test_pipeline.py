"""Tests for the narrowing pipeline plumbing."""

from repro.mining.pipeline import Narrower, NarrowingTrace


class TestNarrowingTrace:
    def test_empty_trace(self):
        trace = NarrowingTrace()
        assert trace.initial == 0
        assert trace.final == 0
        assert trace.as_rows() == []

    def test_records_stages_in_order(self):
        trace = NarrowingTrace()
        trace.record("raw", 100)
        trace.record("filtered", 40)
        trace.record("unique", 25)
        assert trace.initial == 100
        assert trace.final == 25
        assert trace.as_rows() == [("raw", 100), ("filtered", 40), ("unique", 25)]


class TestNarrower:
    def test_keep_filters_and_traces(self):
        narrower = Narrower(range(10), initial_stage="numbers")
        narrower.keep("even", lambda n: n % 2 == 0)
        result = narrower.result()
        assert result.items == [0, 2, 4, 6, 8]
        assert result.trace.as_rows() == [("numbers", 10), ("even", 5)]

    def test_transform_replaces_items(self):
        narrower = Narrower([3, 1, 2])
        narrower.transform("sorted-head", lambda items: sorted(items)[:2])
        assert narrower.result().items == [1, 2]

    def test_chaining(self):
        result = (
            Narrower(range(100))
            .keep("lt-50", lambda n: n < 50)
            .keep("even", lambda n: n % 2 == 0)
            .transform("head", lambda items: items[:5])
            .result()
        )
        assert result.items == [0, 2, 4, 6, 8]
        assert result.trace.final == 5
        assert [name for name, _ in result.trace.as_rows()] == [
            "raw",
            "lt-50",
            "even",
            "head",
        ]

    def test_empty_input(self):
        result = Narrower([]).keep("any", lambda _: True).result()
        assert result.items == []
        assert result.trace.initial == 0
