"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestTableCommand:
    def test_apache_table(self, capsys):
        assert main(["table", "apache"]) == 0
        out = capsys.readouterr().out
        assert "Classification of faults for Apache" in out
        assert "36" in out

    def test_unknown_application(self):
        with pytest.raises(SystemExit, match="unknown application"):
            main(["table", "solaris"])


class TestFigureCommand:
    @pytest.mark.parametrize("application", ["apache", "gnome", "mysql"])
    def test_each_figure_renders(self, capsys, application):
        assert main(["figure", application]) == 0
        out = capsys.readouterr().out
        assert "legend:" in out
        assert "env-indep=" in out

    def test_width_option(self, capsys):
        main(["figure", "apache", "--width", "10"])
        out = capsys.readouterr().out
        assert "legend:" in out

    def test_gnome_quarter_granularity(self, capsys):
        main(["figure", "gnome", "--granularity", "quarter"])
        assert "1998Q4" in capsys.readouterr().out


class TestAggregateCommand:
    def test_prints_section_5_4(self, capsys):
        assert main(["aggregate"]) == 0
        out = capsys.readouterr().out
        assert "139" in out
        assert "72%-87%" in out


class TestMineCommand:
    def test_gnome_mine_prints_trace_and_table(self, capsys):
        assert main(["mine", "gnome"]) == 0
        out = capsys.readouterr().out
        assert "Mining narrowing for GNOME" in out
        assert "unique bugs" in out
        assert "45" in out

    def test_apache_mine_scaled(self, capsys):
        assert main(["mine", "apache", "--scale", "300"]) == 0
        out = capsys.readouterr().out
        assert "300" in out
        assert "50" in out


class TestReplayCommand:
    def test_single_technique(self, capsys):
        assert main(["replay", "--technique", "process-pairs"]) == 0
        out = capsys.readouterr().out
        assert "process-pairs" in out
        assert "Recovery replay" in out


class TestReportCommand:
    def test_report_without_replay(self, capsys):
        assert main(["report"]) == 0
        out = capsys.readouterr().out
        assert "reproduction report" in out
        assert "Lee & Iyer" in out


class TestExportCommand:
    def test_export_apache_archive(self, capsys, tmp_path):
        path = tmp_path / "apache.gnats"
        assert main(["export-archive", "apache", str(path), "--scale", "120"]) == 0
        from repro.bugdb import gnats

        reports = gnats.parse_archive(path.read_text())
        assert len(reports) == 120

    def test_export_mysql_archive(self, capsys, tmp_path):
        path = tmp_path / "mysql.mbox"
        assert main(["export-archive", "mysql", str(path), "--scale", "600"]) == 0
        from repro.bugdb import mbox

        assert len(mbox.parse_archive(path.read_text())) >= 600


class TestCsvCommand:
    def test_table_csv(self, capsys):
        assert main(["csv", "table", "apache"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("application,class,faults")
        assert "apache,environment-independent,36" in out

    def test_figure_csv(self, capsys):
        assert main(["csv", "figure", "mysql"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("bucket,")
        assert "3.23.2" in out


class TestFunnelCommand:
    def test_gnome_funnel(self, capsys):
        assert main(["funnel", "gnome"]) == 0
        out = capsys.readouterr().out
        assert "Narrowing funnel for GNOME" in out
        assert "overall selectivity: 9.00%" in out

    def test_apache_funnel_scaled(self, capsys):
        assert main(["funnel", "apache", "--scale", "250"]) == 0
        out = capsys.readouterr().out
        assert "most selective stage" in out


class TestMarkdownReport:
    def test_markdown_format(self, capsys):
        assert main(["report", "--format", "markdown"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("# Whither Generic Recovery")
        assert "| environment-independent | 36 |" in out
        assert "**Conclusion:**" in out


class TestCatalogCommand:
    def test_catalog_lists_all_faults(self, capsys):
        assert main(["catalog"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("# Fault catalog")
        assert out.count("- **APACHE-") == 50
        assert out.count("- **GNOME-") == 45
        assert out.count("- **MYSQL-") == 44


class TestCampaignCommand:
    def test_run_with_workers_and_journal(self, capsys, tmp_path):
        journal = tmp_path / "run.jsonl"
        assert (
            main(
                [
                    "campaign", "run", "--application", "apache", "--limit", "12",
                    "--workers", "2", "--journal", str(journal),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Campaign replay over 12 study faults" in out
        assert "12 executed" in out
        assert journal.exists()

    def test_default_action_is_run(self, capsys):
        assert main(["campaign", "--application", "gnome", "--limit", "5"]) == 0
        assert "Campaign replay over 5 study faults" in capsys.readouterr().out

    def test_status_reports_progress(self, capsys, tmp_path):
        journal = str(tmp_path / "run.jsonl")
        main(["campaign", "run", "--application", "mysql", "--limit", "8", "--journal", journal])
        capsys.readouterr()
        assert main(["campaign", "status", "--journal", journal]) == 0
        out = capsys.readouterr().out
        assert "Campaign journal" in out
        assert "8/8" in out
        assert "checkpoint-rollback" in out

    def test_resume_skips_completed_units(self, capsys, tmp_path):
        journal = str(tmp_path / "run.jsonl")
        main(["campaign", "run", "--application", "apache", "--limit", "10", "--journal", journal])
        capsys.readouterr()
        assert main(["campaign", "resume", "--journal", journal]) == 0
        out = capsys.readouterr().out
        assert "0 executed" in out
        assert "10 resumed from journal" in out

    def test_status_requires_journal(self):
        with pytest.raises(SystemExit, match="requires --journal"):
            main(["campaign", "status"])

    def test_resume_requires_existing_journal(self, tmp_path):
        with pytest.raises(SystemExit, match="no journal"):
            main(["campaign", "resume", "--journal", str(tmp_path / "absent.jsonl")])


class TestReportWithReplay:
    def test_with_replay_includes_replay_section(self, capsys, monkeypatch):
        import repro.reports.nodes as report_nodes
        from repro.recovery.driver import FaultReplayOutcome, ReplayReport
        from repro.bugdb.enums import FaultClass

        def stub_replay(study, factory):
            outcome = FaultReplayOutcome(
                fault_id="STUB-1",
                fault_class=FaultClass.ENV_DEP_TRANSIENT,
                technique=factory.name,
                triggered=True,
                survived=True,
                attempts_used=1,
            )
            return ReplayReport(technique=factory.name, outcomes=(outcome,))

        monkeypatch.setattr(report_nodes, "replay_study", stub_replay)
        assert main(["report", "--with-replay"]) == 0
        out = capsys.readouterr().out
        assert "Generic-recovery replay" in out
        assert "process-pairs" in out


class TestEverySubcommandSmoke:
    """Satellite coverage: each subcommand exits 0 with non-empty stdout."""

    @pytest.mark.parametrize(
        "argv",
        [
            ["table", "gnome"],
            ["figure", "mysql", "--width", "20"],
            ["aggregate"],
            ["mine", "gnome"],
            ["mine", "run", "--application", "gnome"],
            ["replay", "--technique", "restart-fresh"],
            ["campaign", "run", "--application", "gnome", "--limit", "3"],
            ["report"],
            ["catalog"],
            ["funnel", "gnome"],
            ["csv", "table", "mysql"],
            ["csv", "figure", "gnome"],
            ["study", "graph"],
        ],
        ids=lambda argv: "-".join(argv[:2]),
    )
    def test_exits_zero_with_output(self, capsys, argv):
        assert main(argv) == 0
        assert capsys.readouterr().out.strip()

    def test_export_archive(self, capsys, tmp_path):
        path = tmp_path / "gnome.debbugs"
        assert main(["export-archive", "gnome", str(path)]) == 0
        assert capsys.readouterr().out.strip()
        assert path.stat().st_size > 0

    def test_study_run_and_status(self, capsys, tmp_path):
        cache = str(tmp_path / "memo")
        args = ["--nodes", "T1,A1", "--cache-dir", cache]
        assert main(["study", "run", *args]) == 0
        cold = capsys.readouterr().out
        assert "Study run: 5 executed, 0 cached" in cold
        assert main(["study", "run", *args, "--show", "T1"]) == 0
        warm = capsys.readouterr().out
        assert "Study run: 0 executed, 5 cached" in warm
        assert "Classification of faults for Apache" in warm
        assert main(["study", "status", *args]) == 0
        assert capsys.readouterr().out.count("cached") == 5

    def test_study_run_unknown_node_is_a_clean_error(self, tmp_path):
        with pytest.raises(SystemExit, match="unknown study-graph node"):
            main(["study", "run", "--nodes", "bogus",
                  "--cache-dir", str(tmp_path / "memo")])

    def test_study_run_collapses_grid_families(self, capsys, tmp_path):
        args = ["--nodes", "ablate.recovery-model",
                "--cache-dir", str(tmp_path / "memo")]
        assert main(["study", "run", *args]) == 0
        collapsed = capsys.readouterr().out
        assert "sweep.recovery-model[x4]" in collapsed
        assert "model=paper-default" not in collapsed
        assert "Study run: 8 executed, 0 cached" in collapsed

        assert main(["study", "run", *args, "--expand-grids"]) == 0
        expanded = capsys.readouterr().out
        assert "sweep.recovery-model[model=paper-default]" in expanded
        assert "sweep.recovery-model[x4]" not in expanded

        assert main(["study", "status", *args]) == 0
        status = capsys.readouterr().out
        assert "sweep.recovery-model[x4]" in status
        assert "model=paper-default" not in status
        assert main(["study", "status", *args, "--expand-grids"]) == 0
        assert "model=paper-default" in capsys.readouterr().out

    def test_nodes_flag_keeps_grid_point_names_whole(self, capsys, tmp_path):
        point = "sweep.rejuvenation[downtime_minutes=10.0,interval_hours=none]"
        assert main([
            "study", "run", "--nodes", f"A2,{point}",
            "--show", point, "--cache-dir", str(tmp_path / "memo"),
        ]) == 0
        out = capsys.readouterr().out
        assert "never (baseline) (restart 10 min)" in out

    def test_study_graph_collapses_and_expands_grids(self, capsys):
        assert main(["study", "graph"]) == 0
        collapsed = capsys.readouterr().out
        assert "5 grid families (105 points)" in collapsed
        assert "sweep.rejuvenation[x49]" in collapsed
        assert "scenario.pairs[x40]" in collapsed
        assert "interval_hours=" not in collapsed
        assert main(["study", "graph", "--expand-grids"]) == 0
        expanded = capsys.readouterr().out
        assert "sweep.rejuvenation[downtime_minutes=10.0,interval_hours=none]" in expanded

    def test_study_run_longest_first_outputs_are_identical(self, capsys, tmp_path):
        db = str(tmp_path / "perf.jsonl")
        cache_a = str(tmp_path / "memo-a")
        cache_b = str(tmp_path / "memo-b")
        nodes = ["--nodes", "ablate.recovery-model", "--quiet"]
        # Cold FIFO run records the history the second run schedules by.
        assert main(["study", "run", *nodes, "--cache-dir", cache_a,
                     "--perfdb", db, "--order", "fifo"]) == 0
        capsys.readouterr()
        assert main(["study", "run", *nodes, "--cache-dir", cache_b,
                     "--perfdb", db, "--order", "longest-first"]) == 0
        capsys.readouterr()
        assert main(["study", "diff", cache_a, cache_b,
                     "--nodes", "ablate.recovery-model"]) == 0
        assert "drift" in capsys.readouterr().out

    def test_mine_run_rejects_positional_soup(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["mine", "run", "apache"])
        assert excinfo.value.code == 2
        assert "unrecognized arguments: apache" in capsys.readouterr().err

    def test_mine_run_still_requires_application_flag(self):
        with pytest.raises(SystemExit, match="requires --application"):
            main(["mine", "run"])


class TestStreamingMineAndIndexCommands:
    @pytest.fixture()
    def archive(self, tmp_path):
        from repro.bugdb.enums import Application
        from repro.corpus import mysql_corpus, write_archive

        path = tmp_path / "mysql.mbox"
        write_archive(path, Application.MYSQL, mysql_corpus(), scale=1200)
        return path

    def test_mine_run_archive_streams_and_indexes(self, capsys, tmp_path, archive):
        index_dir = tmp_path / "idx"
        assert main([
            "mine", "run", "--application", "mysql",
            "--archive", str(archive),
            "--max-shard-bytes", str(128 << 10),
            "--index-dir", str(index_dir),
        ]) == 0
        out = capsys.readouterr().out
        assert "Mining narrowing for MySQL" in out
        assert "stream:" in out
        assert "MB/s" in out
        assert (index_dir / "manifest.json").exists()

    def test_mine_run_streaming_flags_require_archive(self):
        with pytest.raises(SystemExit, match="--archive"):
            main(["mine", "run", "--application", "mysql",
                  "--max-shard-bytes", "1024"])
        with pytest.raises(SystemExit, match="--archive"):
            main(["mine", "run", "--application", "mysql",
                  "--index-dir", "/tmp/nowhere"])

    def test_mine_run_rejects_nonpositive_shard_budget(self, archive):
        with pytest.raises(SystemExit, match="positive"):
            main(["mine", "run", "--application", "mysql",
                  "--archive", str(archive), "--max-shard-bytes", "0"])

    def test_index_status_and_compact(self, capsys, tmp_path, archive):
        index_dir = tmp_path / "idx"
        assert main([
            "mine", "run", "--application", "mysql",
            "--archive", str(archive),
            "--max-shard-bytes", str(64 << 10),
            "--index-dir", str(index_dir),
        ]) == 0
        capsys.readouterr()

        assert main(["index", "status", str(index_dir), "--segments"]) == 0
        out = capsys.readouterr().out
        assert "Segment index" in out
        assert "wal-" in out

        assert main(["index", "compact", str(index_dir), "--full"]) == 0
        out = capsys.readouterr().out
        assert "merged" in out
        assert "1 segment(s)" in out

        assert main(["index", "status", str(index_dir)]) == 0
        assert "documents" in capsys.readouterr().out

    def test_index_status_without_manifest_is_a_clean_error(self, tmp_path):
        with pytest.raises(SystemExit, match="manifest"):
            main(["index", "status", str(tmp_path / "missing")])

    def test_compact_on_compacted_index_reports_no_op(
        self, capsys, tmp_path, archive
    ):
        index_dir = tmp_path / "idx"
        main(["mine", "run", "--application", "mysql",
              "--archive", str(archive), "--index-dir", str(index_dir)])
        capsys.readouterr()
        assert main(["index", "compact", str(index_dir), "--full"]) == 0
        capsys.readouterr()
        assert main(["index", "compact", str(index_dir)]) == 0
        assert "nothing to compact" in capsys.readouterr().out


class TestGoldenOutputs:
    """Exact-stdout checks for the two most-quoted commands."""

    def test_table_apache_golden(self, capsys):
        assert main(["table", "apache"]) == 0
        assert capsys.readouterr().out == (
            "Classification of faults for Apache\n"
            "Class                              | # Faults\n"
            "-----------------------------------+---------\n"
            "environment-independent            | 36      \n"
            "environment-dependent-nontransient | 7       \n"
            "environment-dependent-transient    | 7       \n"
            "total                              | 50      \n"
        )

    def test_aggregate_golden(self, capsys):
        assert main(["aggregate"]) == 0
        assert capsys.readouterr().out == (
            "Section 5.4 aggregate\n"
            "quantity                           | value  \n"
            "-----------------------------------+--------\n"
            "total unique faults                | 139    \n"
            "environment-independent            | 113    \n"
            "environment-dependent-nontransient | 14     \n"
            "environment-dependent-transient    | 12     \n"
            "EI range across apps               | 72%-87%\n"
            "transient range across apps        | 5%-14% \n"
        )


class TestTraceAndDiffCommands:
    """The observability surface: study run --trace, trace, study diff."""

    def _traced_run(self, tmp_path, capsys, name="a"):
        cache = str(tmp_path / f"cache-{name}")
        trace = str(tmp_path / f"{name}.trace")
        assert main([
            "study", "run", "--nodes", "T1", "--cache-dir", cache,
            "--trace", trace, "--quiet",
        ]) == 0
        capsys.readouterr()
        return cache, trace

    def test_traced_run_writes_a_loadable_trace(self, capsys, tmp_path):
        _, trace = self._traced_run(tmp_path, capsys)
        records = json_lines(trace)
        names = {record["name"] for record in records}
        assert "study.run" in names
        assert any(name.startswith("node:") for name in names)

    def test_trace_summary(self, capsys, tmp_path):
        _, trace = self._traced_run(tmp_path, capsys)
        assert main(["trace", "summary", trace, "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "root span" in out and "study.run" in out
        assert "root coverage" in out
        assert "Wall time by phase" in out
        assert "Slowest 3 spans" in out

    def test_trace_export_is_valid_chrome_json(self, capsys, tmp_path):
        import json

        _, trace = self._traced_run(tmp_path, capsys)
        out_path = str(tmp_path / "trace.json")
        assert main(["trace", "export", trace, "--out", out_path]) == 0
        assert "events" in capsys.readouterr().out
        with open(out_path, encoding="utf-8") as handle:
            payload = json.load(handle)
        assert payload["traceEvents"]
        assert all("ph" in event for event in payload["traceEvents"])

    def test_trace_missing_file_is_a_clean_error(self, tmp_path):
        with pytest.raises(SystemExit, match="no trace file"):
            main(["trace", "summary", str(tmp_path / "nope.trace")])

    def test_study_diff_clean_between_identical_runs(self, capsys, tmp_path):
        cache_a, _ = self._traced_run(tmp_path, capsys, "a")
        cache_b, _ = self._traced_run(tmp_path, capsys, "b")
        assert main(["study", "diff", cache_a, cache_b, "--nodes", "T1"]) == 0
        out = capsys.readouterr().out
        assert "no drift" in out
        assert "match" in out

    def test_study_diff_empty_vs_populated_exits_nonzero(self, capsys, tmp_path):
        cache_a, _ = self._traced_run(tmp_path, capsys, "a")
        empty = str(tmp_path / "cache-empty")
        assert main(["study", "diff", cache_a, empty, "--nodes", "T1"]) == 1
        out = capsys.readouterr().out
        assert "only-a" in out
        assert "drifted" in out

    def test_quiet_suppresses_progress(self, capsys, tmp_path):
        cache = str(tmp_path / "cache-q")
        assert main([
            "study", "run", "--nodes", "T1", "--cache-dir", cache, "--quiet",
        ]) == 0
        assert "study:" not in capsys.readouterr().err

    def test_campaign_quiet_flag(self, capsys):
        assert main(["campaign", "run", "--limit", "1", "--quiet"]) == 0
        captured = capsys.readouterr()
        assert "Campaign replay over 1 study faults" in captured.out
        assert "campaign" not in captured.err


class TestPerfIntelligenceCommands:
    """Flame output, the perf history verbs, and live monitoring."""

    def _traced_run(self, tmp_path, capsys, name="a", extra=()):
        cache = str(tmp_path / f"cache-{name}")
        trace = str(tmp_path / f"{name}.trace")
        assert main([
            "study", "run", "--nodes", "T1", "--cache-dir", cache,
            "--trace", trace, "--quiet", *extra,
        ]) == 0
        capsys.readouterr()
        return cache, trace

    def test_trace_summary_flame_renders_icicle(self, capsys, tmp_path):
        _, trace = self._traced_run(tmp_path, capsys)
        assert main([
            "trace", "summary", trace, "--flame", "--flame-width", "60",
        ]) == 0
        out = capsys.readouterr().out
        assert "icicle: 60 cols" in out
        assert "root study.run" in out
        assert "|study.run" in out

    def test_trace_export_folded_round_trips(self, capsys, tmp_path):
        from repro.obs.flame import parse_folded

        _, trace = self._traced_run(tmp_path, capsys)
        out_path = tmp_path / "run.folded"
        assert main([
            "trace", "export", trace, "--format", "folded",
            "--out", str(out_path),
        ]) == 0
        assert "folded stacks" in capsys.readouterr().out
        pairs = parse_folded(out_path.read_text(encoding="utf-8"))
        assert pairs
        assert all(stack[0] == "study.run" for stack, _ in pairs)

    def test_trace_export_speedscope_schema(self, capsys, tmp_path):
        import json

        _, trace = self._traced_run(tmp_path, capsys)
        out_path = tmp_path / "run.speedscope.json"
        assert main([
            "trace", "export", trace, "--format", "speedscope",
            "--out", str(out_path),
        ]) == 0
        capsys.readouterr()
        with open(out_path, encoding="utf-8") as handle:
            doc = json.load(handle)
        assert doc["$schema"] == (
            "https://www.speedscope.app/file-format-schema.json"
        )
        assert doc["profiles"][0]["events"]

    def test_perf_record_report_check(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_GIT_SHA", "feedface00")
        db = str(tmp_path / "perf.jsonl")
        for name in ("a", "b"):
            _, trace = self._traced_run(tmp_path, capsys, name)
            assert main(["perf", "record", "--db", db, "--trace", trace]) == 0
        out = capsys.readouterr().out
        assert "recorded run" in out

        assert main(["perf", "report", "--db", db]) == 0
        report = capsys.readouterr().out
        assert "Perf history: 2 run(s)" in report
        # Every executed node appears in the longitudinal table.
        assert "T1" in report and "corpus.apache" in report
        assert "feedface00"[:10] in report

        assert main(["perf", "check", "--db", db]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_perf_check_flags_injected_slowdown(self, capsys, tmp_path):
        import json

        db_path = tmp_path / "perf.jsonl"
        db = str(db_path)
        for name in ("a", "b", "c"):
            _, trace = self._traced_run(tmp_path, capsys, name)
            assert main(["perf", "record", "--db", db, "--trace", trace]) == 0
        capsys.readouterr()

        # Inject a >=25% slowdown into a copy of the latest record.
        lines = db_path.read_text(encoding="utf-8").splitlines()
        slow = json.loads(lines[-1])
        slow["run_id"] = "injected00ff"
        for node in slow["nodes"].values():
            node["wall_seconds"] = node["wall_seconds"] * 2.0
        with open(db_path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(slow) + "\n")

        assert main(["perf", "check", "--db", db, "--window", "3"]) == 1
        out = capsys.readouterr().out
        assert "PERF REGRESSION" in out
        assert "injected00ff" in out

        assert main(["perf", "check", "--db", db, "--warn-only"]) == 0
        assert "warn-only" in capsys.readouterr().out

    def test_perf_check_empty_db(self, capsys, tmp_path):
        assert main([
            "perf", "check", "--db", str(tmp_path / "empty.jsonl"),
        ]) == 0
        assert "empty" in capsys.readouterr().out

    def test_perf_record_missing_trace_is_a_clean_error(self, tmp_path):
        with pytest.raises(SystemExit, match="no trace file"):
            main([
                "perf", "record", "--db", str(tmp_path / "perf.jsonl"),
                "--trace", str(tmp_path / "nope.trace"),
            ])

    def test_study_run_perfdb_records_run(self, capsys, tmp_path):
        from repro.obs.perfdb import PerfDB

        db = tmp_path / "perf.jsonl"
        cache = str(tmp_path / "cache-perfdb")
        assert main([
            "study", "run", "--nodes", "T1", "--cache-dir", cache,
            "--perfdb", str(db), "--quiet",
        ]) == 0
        assert "perfdb: recorded" in capsys.readouterr().out
        records = PerfDB(db).read()
        assert len(records) == 1
        assert records[0].source == "study-run"
        assert set(records[0].nodes) == {"T1", "corpus.apache"}
        assert records[0].counters["nodes.executed"] == 2

    def test_study_run_live_writes_finished_snapshot(self, capsys, tmp_path):
        from repro.obs.livestatus import read_snapshot

        live = tmp_path / "live.json"
        cache = str(tmp_path / "cache-live")
        assert main([
            "study", "run", "--nodes", "T1", "--cache-dir", cache,
            "--live", str(live), "--quiet",
        ]) == 0
        assert "live snapshot:" in capsys.readouterr().out
        snapshot = read_snapshot(live)
        assert snapshot["state"] == "finished"
        assert snapshot["done"] == snapshot["total"] == 2

    def test_study_watch_once(self, capsys, tmp_path):
        live = tmp_path / "live.json"
        cache = str(tmp_path / "cache-watch")
        assert main([
            "study", "run", "--nodes", "T1", "--cache-dir", cache,
            "--live", str(live), "--quiet",
        ]) == 0
        capsys.readouterr()
        assert main(["study", "watch", str(live), "--once"]) == 0
        out = capsys.readouterr().out
        assert "[study]" in out
        assert "finished" in out

    def test_study_watch_missing_snapshot_once(self, capsys, tmp_path):
        assert main([
            "study", "watch", str(tmp_path / "absent.json"), "--once",
        ]) == 0
        assert "waiting for snapshot" in capsys.readouterr().out

    def test_study_status_trace_attribution(self, capsys, tmp_path):
        cache, trace = self._traced_run(tmp_path, capsys)
        assert main([
            "study", "status", "--nodes", "T1", "--cache-dir", cache,
            "--trace", trace,
        ]) == 0
        out = capsys.readouterr().out
        assert "traced ms" in out
        # Both executed nodes carry a traced wall-time cell.
        for line in out.splitlines():
            if line.startswith(("T1 ", "corpus.apache ")):
                assert line.rstrip().split("|")[-1].strip() != "-"

    def test_determinism_monitoring_never_changes_digests(self, capsys, tmp_path):
        plain_cache = str(tmp_path / "cache-plain")
        monitored_cache = str(tmp_path / "cache-mon")
        assert main([
            "study", "run", "--nodes", "T1", "--cache-dir", plain_cache,
            "--quiet",
        ]) == 0
        capsys.readouterr()
        assert main([
            "study", "run", "--nodes", "T1", "--cache-dir", monitored_cache,
            "--quiet", "--live", str(tmp_path / "live.json"),
            "--perfdb", str(tmp_path / "perf.jsonl"),
            "--trace", str(tmp_path / "mon.trace"),
        ]) == 0
        capsys.readouterr()
        assert main([
            "study", "diff", plain_cache, monitored_cache, "--nodes", "T1",
        ]) == 0
        assert "no drift" in capsys.readouterr().out


def json_lines(path):
    import json

    with open(path, encoding="utf-8") as handle:
        return [json.loads(line) for line in handle if line.strip()]
