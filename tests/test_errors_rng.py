"""Tests for the exception hierarchy and deterministic RNG helpers."""

import pytest

from repro.errors import (
    ApplicationCrash,
    ApplicationHang,
    ClassificationError,
    CorpusError,
    ParseError,
    RecoveryError,
    RecoveryExhausted,
    ReproError,
    ResourceExhaustedError,
    SimulationError,
)
from repro.rng import DEFAULT_SEED, derive_seed, make_rng


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "error",
        [
            ParseError("x"),
            CorpusError("x"),
            ClassificationError("x"),
            SimulationError("x"),
            ResourceExhaustedError("fds"),
            ApplicationCrash("F-1"),
            ApplicationHang("F-1"),
            RecoveryError("x"),
            RecoveryExhausted(3),
        ],
    )
    def test_everything_derives_from_repro_error(self, error):
        assert isinstance(error, ReproError)

    def test_parse_error_location(self):
        error = ParseError("bad field", source="archive.txt", line_number=12)
        assert "archive.txt:12" in str(error)

    def test_parse_error_without_location(self):
        assert str(ParseError("bad field")) == "bad field"

    def test_resource_exhausted_carries_resource(self):
        error = ResourceExhaustedError("file_descriptors")
        assert error.resource == "file_descriptors"
        assert "file_descriptors" in str(error)

    def test_application_crash_fields(self):
        error = ApplicationCrash("APACHE-EI-01", symptom="segfault")
        assert error.fault_id == "APACHE-EI-01"
        assert error.symptom == "segfault"

    def test_hang_is_a_crash(self):
        assert isinstance(ApplicationHang("F"), ApplicationCrash)
        assert ApplicationHang("F").symptom == "hang"

    def test_recovery_exhausted_attempts(self):
        assert RecoveryExhausted(4).attempts == 4


class TestRng:
    def test_derive_seed_is_stable(self):
        assert derive_seed(42, "stream") == derive_seed(42, "stream")

    def test_derive_seed_differs_by_label(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_derive_seed_differs_by_parent(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_derive_seed_non_negative_63_bit(self):
        for label in ("x", "y", "z"):
            seed = derive_seed(DEFAULT_SEED, label)
            assert 0 <= seed < 2**63

    def test_make_rng_reproducible(self):
        assert make_rng(7, "s").random() == make_rng(7, "s").random()

    def test_make_rng_labels_independent(self):
        assert make_rng(7, "a").random() != make_rng(7, "b").random()

    def test_make_rng_without_label(self):
        assert make_rng(7).random() == make_rng(7).random()
