"""Shared fixtures for the test suite."""

import pytest

from repro.corpus import apache_corpus, full_study, gnome_corpus, mysql_corpus


@pytest.fixture(scope="session")
def study():
    """The full curated study (cached for the whole session)."""
    return full_study()


@pytest.fixture(scope="session")
def apache():
    """The curated Apache corpus."""
    return apache_corpus()


@pytest.fixture(scope="session")
def gnome():
    """The curated GNOME corpus."""
    return gnome_corpus()


@pytest.fixture(scope="session")
def mysql():
    """The curated MySQL corpus."""
    return mysql_corpus()
