"""Tests for byte-offset record-boundary splitting.

The load-bearing property: cutting an archive *file* into byte-ranges
at record boundaries and splitting each range independently yields
chunk lists whose concatenation is byte-identical to the in-memory
splitter over the whole text — for every format, at any shard budget.
"""

import io

import pytest

from repro.bugdb.enums import Application
from repro.corpus.render import (
    apache_raw_archive,
    gnome_raw_archive,
    mysql_raw_archive,
)
from repro.pipeline.formats import FORMATS, format_for
from repro.pipeline.streamsplit import (
    ByteRange,
    format_byte_ranges,
    iter_cut_points,
    read_range,
    shard_byte_ranges,
    split_file,
)


def render(application, corpus, scale=None):
    if application is Application.APACHE:
        return apache_raw_archive(corpus, total_reports=scale)
    if application is Application.GNOME:
        return gnome_raw_archive(corpus, total_reports=scale)
    return mysql_raw_archive(corpus, total_messages=scale)


@pytest.fixture(scope="module")
def archives(study):
    """Rendered scaled archives per application (shared by this module)."""
    scales = {
        Application.APACHE: 800,
        Application.GNOME: 400,
        Application.MYSQL: 3000,
    }
    return {
        application: render(
            application, study.corpus(application), scales[application]
        )
        for application in Application
    }


class TestIterCutPoints:
    def test_substring_marker_offsets(self):
        data = b"aaaXbbbXccc"
        handle = io.BytesIO(data)
        assert list(iter_cut_points(handle, b"X")) == [3, 7]

    def test_marker_spanning_block_boundary(self):
        # the carry buffer must catch a marker cut in half by a block edge
        data = b"aa" + b"MARK" + b"bb" + b"MARK" + b"cc"
        for block_size in range(1, 10):
            handle = io.BytesIO(data)
            assert list(
                iter_cut_points(handle, b"MARK", block_size=block_size)
            ) == [2, 8], block_size

    def test_overlapping_candidates_match_str_split(self):
        # "XX" in "XXXX": str.split finds non-overlapping matches at 0, 2
        data = b"XXXX"
        handle = io.BytesIO(data)
        assert list(iter_cut_points(handle, b"XX", block_size=3)) == [0, 2]

    def test_line_anchored_only_matches_at_line_start(self):
        data = b"From a\nnot From b\nFrom c"
        handle = io.BytesIO(data)
        assert list(iter_cut_points(handle, b"From ", line_anchored=True)) == [
            0,
            18,
        ]

    def test_line_anchor_across_blocks(self):
        data = b"x\nFrom a\nyy From b\nFrom c"
        expected = [2, 19]
        for block_size in range(1, 12):
            handle = io.BytesIO(data)
            found = list(
                iter_cut_points(
                    handle, b"From ", line_anchored=True, block_size=block_size
                )
            )
            assert found == expected, block_size

    def test_empty_input(self):
        assert list(iter_cut_points(io.BytesIO(b""), b"X")) == []


class TestShardByteRanges:
    def write(self, tmp_path, data):
        path = tmp_path / "archive"
        path.write_bytes(data)
        return path

    def test_ranges_tile_the_file(self, tmp_path):
        path = self.write(tmp_path, b"aaaa\nSEP\nbbbb\nSEP\ncccc\n")
        ranges = shard_byte_ranges(path, b"SEP", max_shard_bytes=8)
        assert ranges[0].start == 0
        assert ranges[-1].end == path.stat().st_size
        for left, right in zip(ranges, ranges[1:]):
            assert left.end == right.start

    def test_ranges_start_on_boundaries(self, tmp_path):
        data = b"aaaa\nSEP\nbbbb\nSEP\ncccc\n"
        path = self.write(tmp_path, data)
        ranges = shard_byte_ranges(path, b"SEP", max_shard_bytes=8)
        for byte_range in ranges[1:]:
            assert data[byte_range.start:].startswith(b"SEP")

    def test_oversized_record_gets_its_own_range(self, tmp_path):
        data = b"X" * 100 + b"SEP" + b"Y" * 5
        path = self.write(tmp_path, data)
        ranges = shard_byte_ranges(path, b"SEP", max_shard_bytes=10)
        assert ranges[0] == ByteRange(0, 100)
        assert ranges[-1].end == len(data)

    def test_final_range_closes_at_pending_cut(self, tmp_path):
        # The tail must not absorb the pending boundary: no range may
        # exceed the budget unless a single record does.
        data = b"aaaa" + b"SEP" + b"bbbb" + b"SEP" + b"cccc"
        path = self.write(tmp_path, data)
        ranges = shard_byte_ranges(path, b"SEP", max_shard_bytes=10)
        assert ranges == [ByteRange(0, 4), ByteRange(4, 11), ByteRange(11, 18)]
        assert all(byte_range.size <= 10 for byte_range in ranges)

    def test_whole_file_when_budget_is_large(self, tmp_path):
        path = self.write(tmp_path, b"aaSEPbb")
        assert shard_byte_ranges(path, b"SEP", max_shard_bytes=1 << 20) == [
            ByteRange(0, 7)
        ]

    def test_empty_file_has_no_ranges(self, tmp_path):
        path = self.write(tmp_path, b"")
        assert shard_byte_ranges(path, b"SEP") == []


class TestFormatEquivalence:
    """Per-range splits concatenate to the in-memory split, all formats."""

    @pytest.mark.parametrize("application", list(Application))
    @pytest.mark.parametrize("max_shard_bytes", [1 << 12, 1 << 16, 1 << 22])
    def test_concatenated_range_splits_equal_whole_split(
        self, tmp_path, archives, application, max_shard_bytes
    ):
        fmt = format_for(application)
        text = archives[application]
        path = tmp_path / f"{application.value}.archive"
        path.write_text(text, encoding="utf-8")

        whole = fmt.split(text)
        piecewise = []
        for chunks in split_file(fmt, path, max_shard_bytes=max_shard_bytes):
            piecewise.extend(chunks)
        assert piecewise == whole

    @pytest.mark.parametrize("application", list(Application))
    def test_ranges_cover_file_exactly(self, tmp_path, archives, application):
        fmt = format_for(application)
        path = tmp_path / f"{application.value}.archive"
        path.write_text(archives[application], encoding="utf-8")
        ranges = format_byte_ranges(fmt, path, max_shard_bytes=1 << 14)
        assert ranges[0].start == 0
        assert ranges[-1].end == path.stat().st_size
        reassembled = "".join(read_range(path, byte_range) for byte_range in ranges)
        assert reassembled == archives[application]

    def test_every_format_declares_a_marker(self):
        for fmt in FORMATS.values():
            assert fmt.boundary_marker is not None

    def test_format_without_marker_raises(self, tmp_path):
        import dataclasses

        fmt = dataclasses.replace(
            format_for(Application.APACHE), boundary_marker=None
        )
        path = tmp_path / "a"
        path.write_text("x")
        with pytest.raises(ValueError, match="boundary marker"):
            format_byte_ranges(fmt, path)


class TestFullArchiveEquivalence:
    """The satellite check: the *full* paper-scale archives, all formats."""

    @pytest.mark.parametrize("application", list(Application))
    def test_full_archive_byte_range_split_identical(
        self, tmp_path, study, application
    ):
        fmt = format_for(application)
        text = render(application, study.corpus(application))
        path = tmp_path / f"{application.value}.full"
        path.write_text(text, encoding="utf-8")

        whole = fmt.split(text)
        piecewise = []
        for chunks in split_file(fmt, path, max_shard_bytes=64 << 10):
            piecewise.extend(chunks)
        assert len(piecewise) == len(whole)
        assert piecewise == whole
