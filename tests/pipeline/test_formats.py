"""Tests for the per-application archive format descriptors."""

import pytest

from repro.bugdb import debbugs, gnats, mbox
from repro.bugdb.enums import Application
from repro.corpus.render import (
    apache_raw_archive,
    gnome_raw_archive,
    mysql_raw_archive,
)
from repro.mining.gnome import GNOME_STUDY_COMPONENTS
from repro.pipeline import FORMATS, format_for


class TestRegistry:
    def test_covers_every_application(self):
        assert set(FORMATS) == set(Application)

    def test_format_for(self):
        for application in Application:
            assert format_for(application).application is application

    def test_only_mysql_defines_index_text(self):
        assert format_for(Application.MYSQL).index_text is not None
        assert format_for(Application.APACHE).index_text is None
        assert format_for(Application.GNOME).index_text is None


class TestCacheTags:
    def test_tags_embed_application_and_versions(self):
        fmt = format_for(Application.MYSQL)
        assert fmt.parse_tag == f"parse.mysql.v{fmt.parser_version}"
        assert (
            fmt.mine_tag
            == f"mine.mysql.p{fmt.parser_version}.m{fmt.miner_version}"
        )

    def test_tags_are_distinct_across_applications_and_stages(self):
        tags = [fmt.parse_tag for fmt in FORMATS.values()]
        tags += [fmt.mine_tag for fmt in FORMATS.values()]
        assert len(tags) == len(set(tags))


class TestSerialReference:
    """``fmt.parse`` (split + per-chunk parse) is the legacy parser."""

    def test_apache_matches_parse_archive(self, apache):
        text = apache_raw_archive(apache, total_reports=300)
        assert format_for(Application.APACHE).parse(text) == gnats.parse_archive(text)

    def test_gnome_matches_parse_archive(self, gnome):
        text = gnome_raw_archive(gnome, study_components=GNOME_STUDY_COMPONENTS)
        assert format_for(Application.GNOME).parse(text) == debbugs.parse_archive(text)

    def test_mysql_matches_parse_archive(self, mysql):
        text = mysql_raw_archive(mysql, total_messages=1500)
        assert format_for(Application.MYSQL).parse(text) == mbox.parse_archive(text)


class TestCodecs:
    @pytest.mark.parametrize("application", list(Application))
    def test_record_codec_round_trips(self, application, study):
        fmt = format_for(application)
        corpus = study.corpus(application)
        text = fmt.render(corpus, 200 if application is not Application.GNOME else None)
        records = fmt.parse(text)
        assert records, "need at least one record to round-trip"
        for record in records[:25]:
            assert fmt.record_from_dict(fmt.record_to_dict(record)) == record

    def test_mysql_item_codec_round_trips_mined_reports(self, mysql):
        fmt = format_for(Application.MYSQL)
        text = fmt.render(mysql, 2000)
        result = fmt.mine(fmt.parse(text), None)
        assert result.items
        for item in result.items:
            assert fmt.item_from_dict(fmt.item_to_dict(item)) == item
