"""Tests for the content-addressed parse/mine cache."""

import json

from repro.pipeline import CACHE_FORMAT_VERSION, ParseMineCache, archive_digest


class TestArchiveDigest:
    def test_stable(self):
        assert archive_digest("abc") == archive_digest("abc")

    def test_content_addressed(self):
        assert archive_digest("abc") != archive_digest("abd")

    def test_hex_sha256(self):
        digest = archive_digest("")
        assert len(digest) == 64
        assert set(digest) <= set("0123456789abcdef")


class TestRoundTrip:
    def test_store_then_load(self, tmp_path):
        cache = ParseMineCache(tmp_path)
        digest = archive_digest("archive body")
        cache.store(digest, "parse.mysql.v1", {"records": [1, 2, 3]})
        assert cache.load(digest, "parse.mysql.v1") == {"records": [1, 2, 3]}

    def test_missing_entry_is_none(self, tmp_path):
        cache = ParseMineCache(tmp_path)
        assert cache.load(archive_digest("x"), "parse.mysql.v1") is None

    def test_tags_keep_entries_apart(self, tmp_path):
        cache = ParseMineCache(tmp_path)
        digest = archive_digest("x")
        cache.store(digest, "parse.mysql.v1", {"stage": "parse"})
        cache.store(digest, "mine.mysql.p1.m1", {"stage": "mine"})
        assert cache.load(digest, "parse.mysql.v1") == {"stage": "parse"}
        assert cache.load(digest, "mine.mysql.p1.m1") == {"stage": "mine"}

    def test_constructing_cache_touches_nothing(self, tmp_path):
        ParseMineCache(tmp_path / "never-created")
        assert not (tmp_path / "never-created").exists()

    def test_store_leaves_no_temp_files(self, tmp_path):
        cache = ParseMineCache(tmp_path)
        cache.store(archive_digest("x"), "parse.mysql.v1", {})
        leftovers = [p for p in tmp_path.rglob("*.tmp")]
        assert leftovers == []


class TestCorruptEntries:
    def test_truncated_json_is_a_miss(self, tmp_path):
        cache = ParseMineCache(tmp_path)
        digest = archive_digest("x")
        path = cache.store(digest, "parse.mysql.v1", {"records": []})
        path.write_text(path.read_text()[:10], encoding="utf-8")
        assert cache.load(digest, "parse.mysql.v1") is None

    def test_version_mismatch_is_a_miss(self, tmp_path):
        cache = ParseMineCache(tmp_path)
        digest = archive_digest("x")
        path = cache.store(digest, "parse.mysql.v1", {"records": []})
        payload = json.loads(path.read_text(encoding="utf-8"))
        payload["cache_format"] = CACHE_FORMAT_VERSION + 1
        path.write_text(json.dumps(payload), encoding="utf-8")
        assert cache.load(digest, "parse.mysql.v1") is None

    def test_non_dict_payload_is_a_miss(self, tmp_path):
        cache = ParseMineCache(tmp_path)
        digest = archive_digest("x")
        path = cache.store(digest, "parse.mysql.v1", {})
        path.write_text("[1, 2, 3]", encoding="utf-8")
        assert cache.load(digest, "parse.mysql.v1") is None


class TestCounters:
    def test_hits_and_misses_accumulate(self, tmp_path):
        cache = ParseMineCache(tmp_path)
        digest = archive_digest("x")
        cache.load(digest, "parse.mysql.v1")
        cache.store(digest, "parse.mysql.v1", {})
        cache.load(digest, "parse.mysql.v1")
        assert cache.stats() == {"hits": 1, "misses": 1}


class TestInvalidation:
    def test_invalidate_one_digest(self, tmp_path):
        cache = ParseMineCache(tmp_path)
        keep, drop = archive_digest("keep"), archive_digest("drop")
        cache.store(keep, "parse.mysql.v1", {})
        cache.store(drop, "parse.mysql.v1", {})
        cache.store(drop, "mine.mysql.p1.m1", {})
        assert cache.invalidate(drop) == 2
        assert cache.entry_count() == 1
        assert cache.load(keep, "parse.mysql.v1") is not None
        assert cache.load(drop, "parse.mysql.v1") is None

    def test_invalidate_everything(self, tmp_path):
        cache = ParseMineCache(tmp_path)
        for body in ("a", "b", "c"):
            cache.store(archive_digest(body), "parse.mysql.v1", {})
        assert cache.invalidate() == 3
        assert cache.entry_count() == 0

    def test_invalidate_empty_cache(self, tmp_path):
        assert ParseMineCache(tmp_path / "empty").invalidate() == 0

    def test_entry_paths_filters_by_digest(self, tmp_path):
        cache = ParseMineCache(tmp_path)
        digest = archive_digest("a")
        cache.store(digest, "parse.mysql.v1", {})
        cache.store(archive_digest("b"), "parse.mysql.v1", {})
        assert len(cache.entry_paths(digest)) == 1
        assert len(cache.entry_paths()) == 2
