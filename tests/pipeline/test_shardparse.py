"""Tests for sharded parallel archive parsing."""

import pytest

from repro.bugdb.enums import Application
from repro.bugdb.textindex import TextIndex
from repro.harness.telemetry import Telemetry
from repro.mining.keywords import MYSQL_STUDY_KEYWORDS
from repro.mining.mysql import message_search_text
from repro.pipeline import format_for, parse_archive_sharded


@pytest.fixture(scope="module")
def archives(study):
    """Small rendered archives per application (shared across tests)."""
    scales = {
        Application.APACHE: 300,
        Application.GNOME: None,
        Application.MYSQL: 1500,
    }
    rendered = {}
    for application, scale in scales.items():
        fmt = format_for(application)
        rendered[application] = fmt.render(study.corpus(application), scale)
    return rendered


class TestEquivalence:
    @pytest.mark.parametrize("application", list(Application))
    @pytest.mark.parametrize("workers", [1, 2, 7])
    def test_matches_serial_for_any_worker_count(
        self, archives, application, workers
    ):
        fmt = format_for(application)
        text = archives[application]
        serial = fmt.parse(text)
        parsed = parse_archive_sharded(fmt, text, workers=workers)
        assert parsed.records == serial

    def test_torn_final_shard(self, archives):
        """Chunk counts that do not divide evenly still merge in order."""
        from repro.bugdb import gnats

        fmt = format_for(Application.APACHE)
        # 23 records over 7 workers: shard sizes differ and the final
        # shard is smaller than the rest.
        serial = fmt.parse(archives[Application.APACHE])[:23]
        text = gnats.render_archive(serial)
        parsed = parse_archive_sharded(fmt, text, workers=7)
        assert parsed.records == serial

    def test_single_record_archive_takes_serial_path(self, archives):
        from repro.bugdb import gnats

        fmt = format_for(Application.APACHE)
        text = gnats.render_archive(fmt.parse(archives[Application.APACHE])[:1])
        parsed = parse_archive_sharded(fmt, text, workers=4)
        assert parsed.shards == 1
        assert parsed.records == fmt.parse(text)


class TestPartialIndex:
    def test_merged_index_matches_serial_index(self, archives):
        fmt = format_for(Application.MYSQL)
        text = archives[Application.MYSQL]
        parsed = parse_archive_sharded(fmt, text, workers=4)
        assert parsed.index is not None

        serial_index = TextIndex()
        for position, message in enumerate(parsed.records):
            serial_index.add(position, message_search_text(message))
        assert parsed.index.search_any(MYSQL_STUDY_KEYWORDS) == (
            serial_index.search_any(MYSQL_STUDY_KEYWORDS)
        )

    def test_formats_without_index_text_get_no_index(self, archives):
        fmt = format_for(Application.APACHE)
        parsed = parse_archive_sharded(fmt, archives[Application.APACHE], workers=4)
        assert parsed.index is None


class TestTelemetryAndShape:
    def test_parallel_run_records_telemetry(self, archives):
        telemetry = Telemetry()
        fmt = format_for(Application.MYSQL)
        parsed = parse_archive_sharded(
            fmt, archives[Application.MYSQL], workers=4, telemetry=telemetry
        )
        assert telemetry.counter("parse.chunks") == len(parsed.records)
        assert telemetry.timer("parse.wall").count == 1
        assert telemetry.timer("parse.shard.wall").count == parsed.shards
        assert telemetry.gauge_value("parse.shards") == parsed.shards
        assert 0.0 < telemetry.gauge_value("parse.shard_utilization") <= 1.0

    def test_serial_run_reports_one_shard(self, archives):
        telemetry = Telemetry()
        fmt = format_for(Application.APACHE)
        parsed = parse_archive_sharded(
            fmt, archives[Application.APACHE], workers=1, telemetry=telemetry
        )
        assert parsed.shards == 1
        assert parsed.worker_pids
        assert parsed.shard_utilization == 1.0
        assert telemetry.gauge_value("parse.shards") == 1

    def test_wall_time_is_recorded(self, archives):
        fmt = format_for(Application.GNOME)
        parsed = parse_archive_sharded(fmt, archives[Application.GNOME], workers=2)
        assert parsed.wall_seconds > 0
