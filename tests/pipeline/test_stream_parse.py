"""Tests for the streaming byte-range parse and the file-fed pipeline."""

import pytest

from repro.bugdb.enums import Application
from repro.bugdb.segments import SegmentedTextIndex, segmented_equal_to_monolithic
from repro.harness.telemetry import Telemetry
from repro.mining.keywords import MYSQL_STUDY_KEYWORDS
from repro.pipeline import (
    format_for,
    mine_application,
    parse_archive_sharded,
    parse_archive_streamed,
)
from repro.pipeline.cache import ParseMineCache, archive_digest, archive_file_digest
from repro.pipeline.runner import mine_archive_file

SCALES = {
    Application.APACHE: 400,
    Application.GNOME: 300,
    Application.MYSQL: 2000,
}


@pytest.fixture(scope="module")
def archive_files(study, tmp_path_factory):
    """Rendered archive files per application (shared across tests)."""
    root = tmp_path_factory.mktemp("archives")
    paths = {}
    for application, scale in SCALES.items():
        fmt = format_for(application)
        text = fmt.render(study.corpus(application), scale)
        path = root / f"{application.value}.archive"
        path.write_text(text, encoding="utf-8")
        paths[application] = (path, text)
    return paths


class TestStreamedEquivalence:
    @pytest.mark.parametrize("application", list(Application))
    @pytest.mark.parametrize("workers", [1, 3])
    def test_records_match_serial_parse(
        self, archive_files, application, workers
    ):
        fmt = format_for(application)
        path, text = archive_files[application]
        serial = fmt.parse(text)
        streamed = parse_archive_streamed(
            fmt, path, max_shard_bytes=64 << 10, workers=workers,
            keep_records=True,
        )
        assert streamed.records == serial
        assert streamed.record_count == len(serial)
        assert streamed.bytes_total == path.stat().st_size
        assert streamed.shards > 1

    def test_records_dropped_by_default(self, archive_files):
        fmt = format_for(Application.MYSQL)
        path, text = archive_files[Application.MYSQL]
        streamed = parse_archive_streamed(fmt, path, max_shard_bytes=64 << 10)
        assert streamed.records is None
        assert streamed.record_count == len(fmt.parse(text))

    @pytest.mark.parametrize("workers", [1, 3])
    def test_consumer_sees_ranges_in_archive_order(
        self, archive_files, workers
    ):
        fmt = format_for(Application.MYSQL)
        path, text = archive_files[Application.MYSQL]
        seen = []

        def consumer(position, records):
            seen.append((position, records))

        parse_archive_streamed(
            fmt, path, max_shard_bytes=64 << 10, workers=workers,
            consumer=consumer,
        )
        assert [position for position, _ in seen] == list(range(len(seen)))
        collected = [record for _, records in seen for record in records]
        assert collected == fmt.parse(text)

    def test_telemetry_counters(self, archive_files):
        fmt = format_for(Application.MYSQL)
        path, _ = archive_files[Application.MYSQL]
        telemetry = Telemetry()
        streamed = parse_archive_streamed(
            fmt, path, max_shard_bytes=64 << 10, telemetry=telemetry
        )
        assert telemetry.counter("stream.ranges") == streamed.shards
        assert telemetry.counter("stream.bytes") == streamed.bytes_total
        assert telemetry.counter("stream.records") == streamed.record_count
        assert telemetry.timer("stream.wall").count == 1
        assert streamed.mb_per_second > 0
        assert streamed.records_per_second > 0


class TestStreamedIndex:
    @pytest.mark.parametrize("workers", [1, 3])
    def test_segmented_index_matches_monolithic(
        self, tmp_path, archive_files, workers
    ):
        fmt = format_for(Application.MYSQL)
        path, text = archive_files[Application.MYSQL]
        streamed = parse_archive_streamed(
            fmt, path, max_shard_bytes=64 << 10, workers=workers,
            index_dir=tmp_path / f"idx{workers}",
        )
        assert streamed.index is not None
        assert streamed.index.document_count == streamed.record_count
        monolithic = parse_archive_sharded(fmt, text).index
        assert segmented_equal_to_monolithic(
            streamed.index, monolithic, probes=MYSQL_STUDY_KEYWORDS
        )
        assert streamed.index.search_any(
            MYSQL_STUDY_KEYWORDS
        ) == monolithic.search_any(MYSQL_STUDY_KEYWORDS)

    def test_index_persists_for_reopen(self, tmp_path, archive_files):
        fmt = format_for(Application.MYSQL)
        path, text = archive_files[Application.MYSQL]
        streamed = parse_archive_streamed(
            fmt, path, max_shard_bytes=64 << 10, index_dir=tmp_path / "idx"
        )
        reopened = SegmentedTextIndex(tmp_path / "idx")
        assert reopened.document_count == streamed.record_count
        monolithic = parse_archive_sharded(fmt, text).index
        assert reopened.search_any(MYSQL_STUDY_KEYWORDS) == monolithic.search_any(
            MYSQL_STUDY_KEYWORDS
        )

    def test_rerun_extends_index_without_clobbering(self, tmp_path, archive_files):
        # Re-running against an existing index_dir must append new
        # segments (fresh WAL names), never overwrite committed ones.
        fmt = format_for(Application.MYSQL)
        path, text = archive_files[Application.MYSQL]
        first = parse_archive_streamed(
            fmt, path, max_shard_bytes=64 << 10, index_dir=tmp_path / "idx"
        )
        second = parse_archive_streamed(
            fmt, path, max_shard_bytes=64 << 10, index_dir=tmp_path / "idx"
        )
        names = [info.name for info in second.index.segments]
        assert len(names) == len(set(names))
        assert second.index.document_count == 2 * first.record_count
        # Both passes of the archive answer queries under their own bases.
        monolithic = parse_archive_sharded(fmt, text).index
        expected = monolithic.search_any(MYSQL_STUDY_KEYWORDS)
        shifted = {doc + first.record_count for doc in expected}
        assert second.index.search_any(MYSQL_STUDY_KEYWORDS) == expected | shifted

    def test_index_dir_without_index_text_raises(self, tmp_path, archive_files):
        fmt = format_for(Application.APACHE)
        if fmt.index_text is not None:
            pytest.skip("apache format gained index_text")
        path, _ = archive_files[Application.APACHE]
        with pytest.raises(ValueError, match="index_text"):
            parse_archive_streamed(fmt, path, index_dir=tmp_path / "idx")


class TestMineArchiveFile:
    def test_matches_in_memory_pipeline(self, study, archive_files):
        path, _ = archive_files[Application.MYSQL]
        streamed = mine_archive_file(Application.MYSQL, path)
        rendered = mine_application(
            Application.MYSQL,
            scale=SCALES[Application.MYSQL],
            corpus=study.corpus(Application.MYSQL),
        )
        assert streamed.result.items == rendered.result.items
        assert streamed.result.trace.as_rows() == rendered.result.trace.as_rows()

    def test_segment_index_feeds_the_miner(self, tmp_path, study, archive_files):
        path, _ = archive_files[Application.MYSQL]
        streamed = mine_archive_file(
            Application.MYSQL, path, index_dir=tmp_path / "idx"
        )
        rendered = mine_application(
            Application.MYSQL,
            scale=SCALES[Application.MYSQL],
            corpus=study.corpus(Application.MYSQL),
        )
        assert streamed.result.items == rendered.result.items
        assert (tmp_path / "idx" / "manifest.json").exists()

    def test_file_digest_equals_text_digest(self, archive_files):
        path, text = archive_files[Application.MYSQL]
        assert archive_file_digest(path) == archive_digest(text)

    def test_shares_cache_with_text_pipeline(self, tmp_path, archive_files):
        path, text = archive_files[Application.MYSQL]
        cache = ParseMineCache(tmp_path / "cache")
        cold = mine_archive_file(Application.MYSQL, path, cache=cache)
        assert not cold.mine_cache_hit
        warm = mine_archive_file(Application.MYSQL, path, cache=cache)
        assert warm.mine_cache_hit
        assert warm.result.items == cold.result.items
        from repro.pipeline import mine_archive_text

        text_run = mine_archive_text(Application.MYSQL, text, cache=cache)
        assert text_run.mine_cache_hit

    def test_warm_cache_still_builds_requested_index(self, tmp_path, archive_files):
        # A mine-cache hit must not skip building a missing segmented
        # index: cache reads are bypassed until the artifact exists.
        path, _ = archive_files[Application.MYSQL]
        cache = ParseMineCache(tmp_path / "cache")
        cold = mine_archive_file(Application.MYSQL, path, cache=cache)
        index_dir = tmp_path / "idx"
        warm = mine_archive_file(
            Application.MYSQL, path, cache=cache, index_dir=index_dir
        )
        assert not warm.mine_cache_hit
        assert (index_dir / "manifest.json").exists()
        built = SegmentedTextIndex(index_dir)
        assert built.document_count > 0
        assert warm.result.items == cold.result.items
        # Once the index exists, cache hits short-circuit again.
        third = mine_archive_file(
            Application.MYSQL, path, cache=cache, index_dir=index_dir
        )
        assert third.mine_cache_hit
        assert SegmentedTextIndex(index_dir).document_count == built.document_count

    def test_summary_mentions_streaming(self, archive_files):
        path, _ = archive_files[Application.MYSQL]
        run = mine_archive_file(Application.MYSQL, path)
        summary = "\n".join(run.summary_lines())
        assert "stream:" in summary
        assert "MB/s" in summary
        assert "records/s" in summary
