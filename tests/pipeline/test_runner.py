"""Tests for the end-to-end fast archive path (render -> parse -> mine)."""

import pytest

from repro.bugdb.enums import Application
from repro.harness.telemetry import Telemetry
from repro.pipeline import (
    ParseMineCache,
    archive_digest,
    format_for,
    mine_application,
    mine_archive_text,
)

MYSQL_SCALE = 1500


@pytest.fixture(scope="module")
def mysql_archive(mysql):
    fmt = format_for(Application.MYSQL)
    return fmt.render(mysql, MYSQL_SCALE)


@pytest.fixture(scope="module")
def serial_result(mysql_archive):
    fmt = format_for(Application.MYSQL)
    return fmt.mine(fmt.parse(mysql_archive), None)


def assert_same_result(run, serial):
    assert run.result.items == serial.items
    assert run.result.trace.as_rows() == serial.trace.as_rows()


class TestColdPath:
    @pytest.mark.parametrize("workers", [1, 2, 7])
    def test_matches_serial_mining(self, mysql_archive, serial_result, workers):
        run = mine_archive_text(Application.MYSQL, mysql_archive, workers=workers)
        assert_same_result(run, serial_result)
        assert not run.mine_cache_hit
        assert not run.parse_cache_hit

    def test_digest_is_content_addressed(self, mysql_archive):
        run = mine_archive_text(Application.MYSQL, mysql_archive)
        assert run.digest == archive_digest(mysql_archive)

    @pytest.mark.parametrize(
        "application", [Application.APACHE, Application.GNOME]
    )
    def test_other_applications_match_serial(self, study, application):
        fmt = format_for(application)
        text = fmt.render(
            study.corpus(application),
            300 if application is Application.APACHE else None,
        )
        serial = fmt.mine(fmt.parse(text), None)
        run = mine_archive_text(application, text, workers=2)
        assert_same_result(run, serial)


class TestCachePath:
    def test_warm_mine_hit_returns_identical_result(
        self, tmp_path, mysql_archive, serial_result
    ):
        cache = ParseMineCache(tmp_path)
        cold = mine_archive_text(Application.MYSQL, mysql_archive, cache=cache)
        warm = mine_archive_text(Application.MYSQL, mysql_archive, cache=cache)
        assert not cold.mine_cache_hit
        assert warm.mine_cache_hit
        assert_same_result(cold, serial_result)
        assert_same_result(warm, serial_result)

    def test_parse_hit_with_mine_miss_still_matches(
        self, tmp_path, mysql_archive, serial_result
    ):
        cache = ParseMineCache(tmp_path)
        fmt = format_for(Application.MYSQL)
        digest = archive_digest(mysql_archive)
        mine_archive_text(Application.MYSQL, mysql_archive, cache=cache)
        # Drop only the mined entry: the next run re-mines from the
        # cached parse, and must still match the serial cold path.
        cache._entry_path(digest, fmt.mine_tag).unlink()
        run = mine_archive_text(Application.MYSQL, mysql_archive, cache=cache)
        assert run.parse_cache_hit
        assert not run.mine_cache_hit
        assert_same_result(run, serial_result)

    def test_corrupt_entry_falls_back_to_cold_path(
        self, tmp_path, mysql_archive, serial_result
    ):
        cache = ParseMineCache(tmp_path)
        mine_archive_text(Application.MYSQL, mysql_archive, cache=cache)
        for path in cache.entry_paths():
            path.write_text("{not json", encoding="utf-8")
        run = mine_archive_text(Application.MYSQL, mysql_archive, cache=cache)
        assert not run.mine_cache_hit
        assert not run.parse_cache_hit
        assert_same_result(run, serial_result)

    def test_different_archives_never_collide(self, tmp_path, mysql):
        cache = ParseMineCache(tmp_path)
        fmt = format_for(Application.MYSQL)
        small = fmt.render(mysql, 1200)
        large = fmt.render(mysql, 1800)
        run_small = mine_archive_text(Application.MYSQL, small, cache=cache)
        run_large = mine_archive_text(Application.MYSQL, large, cache=cache)
        assert run_small.digest != run_large.digest
        warm_small = mine_archive_text(Application.MYSQL, small, cache=cache)
        assert warm_small.mine_cache_hit
        assert warm_small.result.trace.as_rows() == run_small.result.trace.as_rows()
        assert warm_small.result.trace.as_rows() != run_large.result.trace.as_rows()


class TestMineApplication:
    def test_no_cache_dir_means_no_cache(self, mysql, serial_result):
        run = mine_application(
            Application.MYSQL, scale=MYSQL_SCALE, corpus=mysql
        )
        assert_same_result(run, serial_result)
        assert "cache: disabled" in run.summary_lines()

    def test_use_cache_false_ignores_cache_dir(self, tmp_path, mysql):
        run = mine_application(
            Application.MYSQL,
            scale=MYSQL_SCALE,
            cache_dir=tmp_path,
            use_cache=False,
            corpus=mysql,
        )
        assert not run.mine_cache_hit
        assert list(tmp_path.rglob("*.json")) == []
        assert "cache: disabled" in run.summary_lines()

    def test_cache_dir_round_trip(self, tmp_path, mysql, serial_result):
        cold = mine_application(
            Application.MYSQL, scale=MYSQL_SCALE, cache_dir=tmp_path, corpus=mysql
        )
        warm = mine_application(
            Application.MYSQL, scale=MYSQL_SCALE, cache_dir=tmp_path, corpus=mysql
        )
        assert not cold.mine_cache_hit
        assert warm.mine_cache_hit
        assert_same_result(warm, serial_result)


class TestSummaryLines:
    def test_cold_run_reports_parse_mine_and_cache(self, tmp_path, mysql):
        run = mine_application(
            Application.MYSQL,
            scale=MYSQL_SCALE,
            workers=2,
            cache_dir=tmp_path,
            corpus=mysql,
        )
        lines = "\n".join(run.summary_lines())
        assert "parse:" in lines
        assert "mine:" in lines
        assert "cache: mine miss, parse miss" in lines
        assert "pipeline total:" in lines

    def test_warm_run_reports_mine_hit(self, tmp_path, mysql):
        mine_application(
            Application.MYSQL, scale=MYSQL_SCALE, cache_dir=tmp_path, corpus=mysql
        )
        warm = mine_application(
            Application.MYSQL, scale=MYSQL_SCALE, cache_dir=tmp_path, corpus=mysql
        )
        assert "cache: mine hit" in warm.summary_lines()

    def test_telemetry_counters(self, tmp_path, mysql):
        telemetry = Telemetry()
        mine_application(
            Application.MYSQL,
            scale=MYSQL_SCALE,
            cache_dir=tmp_path,
            corpus=mysql,
            telemetry=telemetry,
        )
        assert telemetry.counter("cache.lookups") == 1
        assert telemetry.counter("cache.mine.misses") == 1
        assert telemetry.counter("cache.parse.misses") == 1
