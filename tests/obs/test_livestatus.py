"""Live monitoring: snapshot writes, the monitor protocol, the renderer."""

import json

import pytest

from repro.obs.livestatus import (
    SNAPSHOT_VERSION,
    RunMonitor,
    eta_seconds,
    read_snapshot,
    render_watch_line,
    write_snapshot,
)


class _Unit:
    def __init__(self, fault_id):
        self.fault_id = fault_id


class TestSnapshotIO:
    def test_write_read_round_trip(self, tmp_path):
        path = tmp_path / "live.json"
        write_snapshot(path, {"version": SNAPSHOT_VERSION, "state": "running"})
        assert read_snapshot(path)["state"] == "running"

    def test_missing_file_reads_none(self, tmp_path):
        assert read_snapshot(tmp_path / "absent.json") is None

    def test_garbage_reads_none(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text("{not json", encoding="utf-8")
        assert read_snapshot(path) is None

    def test_version_mismatch_reads_none(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text(json.dumps({"version": 999}), encoding="utf-8")
        assert read_snapshot(path) is None

    def test_write_replaces_not_appends(self, tmp_path):
        path = tmp_path / "live.json"
        write_snapshot(path, {"version": SNAPSHOT_VERSION, "done": 1})
        write_snapshot(path, {"version": SNAPSHOT_VERSION, "done": 2})
        assert read_snapshot(path)["done"] == 2
        # No leftover temp files from the atomic-replace dance.
        assert [p.name for p in tmp_path.iterdir()] == ["live.json"]


class TestRunMonitor:
    def monitor(self, tmp_path, **kwargs):
        kwargs.setdefault("interval", 0.0)  # every update writes
        return RunMonitor(tmp_path / "live.json", **kwargs)

    def test_full_run_lifecycle(self, tmp_path):
        monitor = self.monitor(tmp_path)
        monitor.run_started(total=3, workers=2, pending=["a", "b", "c"])
        snapshot = read_snapshot(monitor.path)
        assert snapshot["state"] == "running"
        assert snapshot["total"] == 3
        assert snapshot["workers"] == 2
        assert snapshot["pending"] == ["a", "b", "c"]

        monitor.wave_started(1, ready=2)
        monitor.node_finished("a", status="cached")
        monitor.campaign_started(total=1)
        monitor.dispatched([_Unit("b")])
        snapshot = read_snapshot(monitor.path)
        assert snapshot["wave"] == {"index": 1, "ready": 2}
        assert snapshot["cached"] == 1
        assert [e["name"] for e in snapshot["in_flight"]] == ["b"]
        assert snapshot["pending"] == ["b", "c"]

        monitor.completed("b", wall_seconds=0.5)
        monitor.campaign_finished()
        monitor.wave_started(2, ready=1)
        monitor.campaign_started(total=1)
        monitor.dispatched([_Unit("c")])
        monitor.completed("c", wall_seconds=0.25)
        monitor.campaign_finished()
        monitor.run_finished()

        snapshot = read_snapshot(monitor.path)
        assert snapshot["state"] == "finished"
        assert snapshot["done"] == 3
        assert snapshot["executed"] == 2
        assert snapshot["cached"] == 1
        assert snapshot["in_flight"] == []
        assert snapshot["pending"] == []
        assert snapshot["done_wall_seconds"] == pytest.approx(0.75)

    def test_throttled_writes_skip_fast_updates(self, tmp_path):
        monitor = RunMonitor(tmp_path / "live.json", interval=3600.0)
        monitor.run_started(total=2, workers=1, pending=["a", "b"])  # forced
        monitor.node_finished("a", status="cached")  # throttled away
        snapshot = read_snapshot(monitor.path)
        assert snapshot["done"] == 0
        monitor.run_finished()  # forced
        assert read_snapshot(monitor.path)["done"] == 1

    def test_in_flight_sorted_slowest_first(self, tmp_path):
        monitor = self.monitor(tmp_path)
        monitor.run_started(total=2, workers=2, pending=["x", "y"])
        monitor.dispatched([_Unit("x")])
        monitor.dispatched([_Unit("y")])
        monitor._in_flight["x"] -= 5.0  # x has been running longer
        names = [e["name"] for e in monitor.snapshot()["in_flight"]]
        assert names == ["x", "y"]

    def test_dispatched_tolerates_plain_names(self, tmp_path):
        monitor = self.monitor(tmp_path)
        monitor.run_started(total=1, workers=1, pending=["a"])
        monitor.dispatched(["a"])  # no fault_id attribute
        assert [e["name"] for e in monitor.snapshot()["in_flight"]] == ["a"]


class TestEta:
    def snapshot(self, **overrides):
        base = {
            "version": SNAPSHOT_VERSION,
            "state": "running",
            "workers": 1,
            "total": 4,
            "done": 2,
            "executed": 2,
            "done_wall_seconds": 4.0,
            "in_flight": [],
            "pending": ["c", "d"],
        }
        base.update(overrides)
        return base

    def test_history_based_estimate(self):
        eta = eta_seconds(self.snapshot(), history={"c": 3.0, "d": 5.0})
        assert eta == pytest.approx(8.0)

    def test_pace_fallback_uses_mean_node_cost(self):
        # 4s over 2 executed nodes -> 2s each for the remaining 2.
        assert eta_seconds(self.snapshot()) == pytest.approx(4.0)

    def test_in_flight_progress_subtracted_not_double_counted(self):
        snapshot = self.snapshot(
            in_flight=[{"name": "c", "seconds": 2.0}], pending=["c", "d"]
        )
        eta = eta_seconds(snapshot, history={"c": 3.0, "d": 5.0})
        assert eta == pytest.approx(1.0 + 5.0)

    def test_workers_divide_the_budget(self):
        eta = eta_seconds(
            self.snapshot(workers=2), history={"c": 3.0, "d": 5.0}
        )
        assert eta == pytest.approx(4.0)

    def test_unseen_grid_point_budgeted_at_family_median(self):
        snapshot = self.snapshot(
            pending=["sweep.g[x=3]", "sweep.g[x=4]"], done_wall_seconds=0.0,
            executed=0,
        )
        # Neither pending point has history, but two siblings do: each
        # unseen point costs the family median (2.0).
        history = {"sweep.g[x=1]": 1.0, "sweep.g[x=2]": 3.0}
        assert eta_seconds(snapshot, history=history) == pytest.approx(4.0)

    def test_family_fallback_mixes_with_direct_history(self):
        snapshot = self.snapshot(pending=["sweep.g[x=3]", "d"])
        history = {"sweep.g[x=1]": 4.0, "d": 5.0}
        assert eta_seconds(snapshot, history=history) == pytest.approx(9.0)

    def test_non_grid_nodes_never_inherit_family_estimates(self):
        # "c" has no history and is not a grid point: it falls back to
        # the run's mean node cost (2.0), not any family median.
        snapshot = self.snapshot(pending=["c", "sweep.g[x=2]"])
        history = {"sweep.g[x=1]": 7.0}
        assert eta_seconds(snapshot, history=history) == pytest.approx(9.0)

    def test_finished_run_is_zero(self):
        assert eta_seconds(self.snapshot(state="finished", done=4)) == 0.0

    def test_unknowable_without_any_signal(self):
        snapshot = self.snapshot(executed=0, done_wall_seconds=0.0)
        assert eta_seconds(snapshot) is None


class TestRenderWatchLine:
    def test_waiting_for_snapshot(self):
        assert render_watch_line(None) == "waiting for snapshot..."

    def test_running_line(self):
        line = render_watch_line(
            {
                "version": SNAPSHOT_VERSION,
                "state": "running",
                "label": "study",
                "updated_at": 1000.0,
                "workers": 2,
                "total": 10,
                "done": 4,
                "executed": 3,
                "cached": 1,
                "done_wall_seconds": 6.0,
                "wave": {"index": 2, "ready": 3},
                "in_flight": [{"name": "node-x", "seconds": 1.25}],
                "pending": ["node-x"],
            },
            now=1001.0,
        )
        assert "[study] wave 2" in line
        assert "4/10 nodes (40%)" in line
        assert "3 executed, 1 cached" in line
        assert "node-x (1.2s)" in line
        assert "eta" in line
        assert "STALE" not in line

    def test_finished_line(self):
        line = render_watch_line(
            {
                "version": SNAPSHOT_VERSION,
                "state": "finished",
                "label": "study",
                "updated_at": 1000.0,
                "elapsed_seconds": 12.5,
                "total": 10,
                "done": 10,
                "executed": 10,
                "cached": 0,
                "wave": {"index": 3, "ready": 1},
                "in_flight": [],
                "pending": [],
            },
            now=5000.0,  # staleness is irrelevant once finished
        )
        assert "finished in 12.5s" in line
        assert "STALE" not in line

    def test_stale_snapshot_flagged(self):
        line = render_watch_line(
            {
                "version": SNAPSHOT_VERSION,
                "state": "running",
                "updated_at": 1000.0,
                "total": 2,
                "done": 1,
                "wave": {},
                "in_flight": [],
                "pending": ["b"],
            },
            now=1100.0,
            stale_after=30.0,
        )
        assert "STALE: no heartbeat for 100s" in line
