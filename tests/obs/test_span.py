"""Span mechanics: nesting, parent links, attrs, the disabled path."""

import pytest

from repro import obs
from repro.obs.sinks import MemorySink


@pytest.fixture(autouse=True)
def _no_ambient_tracer():
    """Every test starts and ends with tracing disabled."""
    obs.uninstall()
    yield
    obs.uninstall()


def test_nested_spans_link_parent_ids():
    sink = MemorySink()
    with obs.tracing(sink):
        with obs.span("outer") as outer:
            with obs.span("middle") as middle:
                with obs.span("inner:leaf") as inner:
                    pass
    by_name = {record["name"]: record for record in sink.records}
    assert by_name["outer"]["parent_id"] is None
    assert by_name["middle"]["parent_id"] == by_name["outer"]["span_id"]
    assert by_name["inner:leaf"]["parent_id"] == by_name["middle"]["span_id"]
    # Emission order is close-order (inner first).
    assert [r["name"] for r in sink.records] == ["inner:leaf", "middle", "outer"]
    assert outer.span_id != middle.span_id != inner.span_id


def test_sibling_spans_share_a_parent():
    sink = MemorySink()
    with obs.tracing(sink):
        with obs.span("root") as root:
            with obs.span("a"):
                pass
            with obs.span("b"):
                pass
    by_name = {record["name"]: record for record in sink.records}
    assert by_name["a"]["parent_id"] == root.span_id
    assert by_name["b"]["parent_id"] == root.span_id


def test_records_carry_monotonic_window_and_trace_id():
    sink = MemorySink()
    with obs.tracing(sink) as tracer:
        with obs.span("timed", flavor="x"):
            pass
    [record] = sink.records
    assert record["end"] >= record["start"] > 0
    assert record["trace_id"] == tracer.trace_id
    assert record["attrs"] == {"flavor": "x"}


def test_set_updates_attrs_on_live_span():
    sink = MemorySink()
    with obs.tracing(sink):
        with obs.span("work", hit=False) as span:
            span.set(hit=True, items=3)
    [record] = sink.records
    assert record["attrs"] == {"hit": True, "items": 3}


def test_exception_records_error_attr_and_propagates():
    sink = MemorySink()
    with obs.tracing(sink):
        with pytest.raises(ValueError):
            with obs.span("boom"):
                raise ValueError("nope")
    [record] = sink.records
    assert record["attrs"]["error"] == "ValueError"


def test_disabled_tracing_returns_shared_noop():
    assert obs.active_tracer() is None
    first = obs.span("anything", attr=1)
    second = obs.span("else")
    assert first is second  # the shared no-op singleton
    with first as span:
        span.set(ignored=True)
    assert obs.current_context() is None


def test_tracing_restores_previous_tracer():
    outer_sink, inner_sink = MemorySink(), MemorySink()
    with obs.tracing(outer_sink) as outer:
        with obs.tracing(inner_sink) as inner:
            assert obs.active_tracer() is inner
            with obs.span("inner-only"):
                pass
        assert obs.active_tracer() is outer
        with obs.span("outer-only"):
            pass
    assert obs.active_tracer() is None
    assert [r["name"] for r in inner_sink.records] == ["inner-only"]
    assert [r["name"] for r in outer_sink.records] == ["outer-only"]


def test_capture_adopts_parent_and_buffers():
    sink = MemorySink()
    with obs.tracing(sink):
        with obs.span("dispatch") as dispatch:
            parent = obs.current_context()
            with obs.capture(parent) as captured:
                with obs.span("worker-side"):
                    pass
            assert [r["name"] for r in captured] == ["worker-side"]
            assert captured[0]["parent_id"] == dispatch.span_id
            # Buffered, not sunk.
            assert sink.records == []
            obs.ingest(captured)
        names = [r["name"] for r in sink.records]
    assert names == ["worker-side", "dispatch"]


def test_capture_without_tracer_yields_empty():
    with obs.capture({"trace_id": "t", "span_id": "s"}) as captured:
        assert tuple(captured) == ()
    obs.ingest([])  # no tracer: a no-op, not an error
