"""The perf history database: appends, reads, trace import, gating."""

import json

import pytest

from repro.obs.perfdb import (
    PERFDB_VERSION,
    STATUS_CACHED,
    STATUS_TRACED,
    NodePerf,
    PerfDB,
    PerfRecord,
    check_regressions,
    family_medians,
    git_sha,
    grid_family,
    node_history,
    node_medians,
    record_from_trace,
    report_rows,
    run_rows,
)


def make_record(nodes, *, source="study-run", **kwargs):
    return PerfRecord.new(
        {
            name: NodePerf(wall_seconds=wall, version="1")
            for name, wall in nodes.items()
        },
        source=source,
        sha="deadbeef",
        **kwargs,
    )


def span(name, span_id, start, end, parent_id=None, **attrs):
    record = {
        "name": name,
        "span_id": span_id,
        "parent_id": parent_id,
        "trace_id": "t1",
        "start": float(start),
        "end": float(end),
        "pid": 1,
    }
    if attrs:
        record["attrs"] = attrs
    return record


class TestPerfDB:
    def test_append_read_round_trip(self, tmp_path):
        db = PerfDB(tmp_path / "perf.jsonl")
        record = make_record({"T1": 0.5, "corpus.apache": 1.25})
        db.append(record)
        loaded = db.read()
        assert len(loaded) == 1
        assert loaded[0].run_id == record.run_id
        assert loaded[0].git_sha == "deadbeef"
        assert loaded[0].nodes["T1"].wall_seconds == pytest.approx(0.5)
        assert loaded[0].nodes["corpus.apache"].version == "1"

    def test_missing_file_reads_empty(self, tmp_path):
        assert PerfDB(tmp_path / "absent.jsonl").read() == []

    def test_truncated_tail_is_tolerated(self, tmp_path):
        path = tmp_path / "perf.jsonl"
        db = PerfDB(path)
        db.append(make_record({"T1": 0.5}))
        db.append(make_record({"T1": 0.6}))
        with open(path, "a", encoding="utf-8") as stream:
            stream.write('{"perfdb_version": 1, "run_id": "crash')
        loaded = db.read()
        assert len(loaded) == 2

    def test_version_mismatch_skipped(self, tmp_path):
        path = tmp_path / "perf.jsonl"
        with open(path, "w", encoding="utf-8") as stream:
            stream.write(json.dumps({"perfdb_version": 999, "run_id": "x"}))
            stream.write("\n")
        db = PerfDB(path)
        db.append(make_record({"T1": 0.5}))
        assert len(db.read()) == 1

    def test_runs_filters_by_source(self, tmp_path):
        db = PerfDB(tmp_path / "perf.jsonl")
        db.append(make_record({"T1": 0.5}, source="study-run"))
        db.append(make_record({"T1": 0.5}, source="trace"))
        assert len(db.runs(source="trace")) == 1
        assert len(db.runs()) == 2

    def test_record_serialisation_is_deterministic(self):
        record = make_record({"b": 1.0, "a": 2.0})
        data = record.to_dict()
        assert data["perfdb_version"] == PERFDB_VERSION
        assert list(data["nodes"]) == ["a", "b"]


class TestGitSha:
    def test_env_override_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_GIT_SHA", "cafe1234")
        assert git_sha() == "cafe1234"


class TestRecordFromTrace:
    def trace(self):
        return [
            span("study.run", "r", 0.0, 10.0, workers=4),
            span("wave", "w", 0.0, 9.0, parent_id="r"),
            span("node:T1", "n1", 1.0, 3.0, parent_id="w"),
            span("node:T1", "n1b", 4.0, 5.0, parent_id="w"),
            span("node:corpus.apache", "n2", 5.0, 9.0, parent_id="w"),
            span("memo:T1", "m1", 0.5, 0.6, parent_id="w", hit=False),
            span("memo:F1", "m2", 0.6, 0.7, parent_id="w", hit=True),
            span("cache:load", "c1", 0.7, 0.8, parent_id="w", hit=True),
        ]

    def test_node_walls_summed_from_spans(self):
        record = record_from_trace(self.trace(), versions={"T1": "2"})
        assert record.source == "trace"
        assert record.workers == 4
        assert record.trace_id == "t1"
        t1 = record.nodes["T1"]
        assert t1.wall_seconds == pytest.approx(3.0)  # 2s + 1s repeats
        assert t1.status == STATUS_TRACED
        assert t1.version == "2"
        assert record.nodes["corpus.apache"].wall_seconds == pytest.approx(4.0)

    def test_counters_from_memo_and_cache_spans(self):
        record = record_from_trace(self.trace())
        assert record.counters == {
            "memo.hits": 1,
            "memo.misses": 1,
            "cache.hits": 1,
        }

    def test_memo_walls_added_as_cached(self):
        record = record_from_trace(
            self.trace(), memo_walls={"F1": 0.9, "T1": 99.0}
        )
        # Traced nodes win over memo entries for the same name.
        assert record.nodes["T1"].status == STATUS_TRACED
        assert record.nodes["F1"].status == STATUS_CACHED
        assert record.nodes["F1"].wall_seconds == pytest.approx(0.9)


class TestHistoryViews:
    def test_cached_samples_excluded(self):
        cached = PerfRecord.new(
            {"T1": NodePerf(wall_seconds=5.0, status=STATUS_CACHED)},
            source="study-run",
            sha="s",
        )
        measured = make_record({"T1": 1.0})
        history = node_history([cached, measured])
        assert len(history["T1"]) == 1
        assert history["T1"][0][1].wall_seconds == pytest.approx(1.0)

    def test_node_medians(self):
        records = [make_record({"T1": w}) for w in (1.0, 3.0, 2.0)]
        assert node_medians(records)["T1"] == pytest.approx(2.0)

    def test_report_and_run_rows_shape(self):
        records = [make_record({"T1": 1.0}), make_record({"T1": 2.0})]
        rows = report_rows(records)
        assert rows[0][0] == "T1"
        assert rows[0][2] == 2  # runs
        listing = run_rows(records, limit=1)
        assert len(listing) == 1
        assert listing[0][0] == records[-1].run_id


class TestReadCached:
    def test_reuses_the_parse_until_the_file_changes(self, tmp_path, monkeypatch):
        db = PerfDB(tmp_path / "perf.jsonl")
        db.append(make_record({"T1": 1.0}))
        first = db.read_cached()
        parses = []
        original = PerfDB.read
        monkeypatch.setattr(
            PerfDB, "read", lambda self: parses.append(1) or original(self)
        )
        assert db.read_cached() is first  # same stat key: no re-parse
        assert parses == []
        db.append(make_record({"T1": 3.0}))
        assert len(db.read_cached()) == 2  # append changed size: re-parse
        assert parses == [1]

    def test_medians_memoized_on_the_same_token(self, tmp_path):
        db = PerfDB(tmp_path / "perf.jsonl")
        db.append(make_record({"T1": 1.0}))
        db.append(make_record({"T1": 3.0}))
        first = db.node_medians()
        assert first["T1"] == pytest.approx(2.0)
        assert db.node_medians() is first
        db.append(make_record({"T1": 5.0}))
        assert db.node_medians()["T1"] == pytest.approx(3.0)

    def test_missing_file_caches_empty(self, tmp_path):
        db = PerfDB(tmp_path / "absent.jsonl")
        assert db.read_cached() == []
        assert db.node_medians() == {}
        db.append(make_record({"T1": 1.0}))
        assert len(db.read_cached()) == 1  # creation is a state change


class TestGridFamilyHelpers:
    @pytest.mark.parametrize(
        ("name", "family"),
        [
            ("sweep.retry-budget[budget=2]", "sweep.retry-budget"),
            ("sweep.g[a=1,b=0.5]", "sweep.g"),
            ("T1", None),
            ("sweep.retry-budget", None),
            ("[x=1]", None),  # empty family prefix is not a point
            ("weird]", None),
        ],
    )
    def test_grid_family_parses_the_naming_contract(self, name, family):
        assert grid_family(name) == family

    def test_family_medians_take_the_median_of_point_medians(self):
        medians = {
            "sweep.g[x=1]": 1.0,
            "sweep.g[x=2]": 5.0,
            "sweep.g[x=3]": 2.0,
            "T1": 9.0,
        }
        assert family_medians(medians) == {"sweep.g": pytest.approx(2.0)}

    def test_no_grid_points_means_no_families(self):
        assert family_medians({"T1": 1.0}) == {}


class TestCheckRegressions:
    def test_flags_25_percent_slowdown_vs_3_run_baseline(self):
        baseline = [make_record({"T1": 1.0, "F1": 0.5}) for _ in range(3)]
        slow = make_record({"T1": 1.30, "F1": 0.5})
        latest, regressions = check_regressions(
            baseline + [slow], window=3, tolerance=0.25
        )
        assert latest is slow
        assert [r.node for r in regressions] == ["T1"]
        regression = regressions[0]
        assert regression.ratio == pytest.approx(1.30)
        assert regression.baseline_seconds == pytest.approx(1.0)
        assert regression.samples == 3

    def test_unchanged_rerun_stays_clean(self):
        records = [make_record({"T1": 1.0}) for _ in range(4)]
        _, regressions = check_regressions(records)
        assert regressions == []

    def test_within_tolerance_is_clean(self):
        records = [make_record({"T1": 1.0}) for _ in range(3)]
        records.append(make_record({"T1": 1.2}))
        _, regressions = check_regressions(records, tolerance=0.25)
        assert regressions == []

    def test_empty_history(self):
        assert check_regressions([]) == (None, [])

    def test_single_run_has_no_baseline(self):
        latest, regressions = check_regressions([make_record({"T1": 1.0})])
        assert latest is not None
        assert regressions == []

    def test_version_bump_resets_history(self):
        old = [make_record({"T1": 1.0}) for _ in range(3)]
        bumped = PerfRecord.new(
            {"T1": NodePerf(wall_seconds=10.0, version="2")},
            source="study-run",
            sha="s",
        )
        _, regressions = check_regressions(old + [bumped])
        assert regressions == []

    def test_sources_never_compared(self):
        study = [make_record({"T1": 1.0}) for _ in range(3)]
        traced = make_record({"T1": 9.0}, source="trace")
        _, regressions = check_regressions(study + [traced])
        assert regressions == []

    def test_sub_threshold_nodes_ignored(self):
        records = [make_record({"fast": 0.0001}) for _ in range(3)]
        records.append(make_record({"fast": 0.0009}))
        _, regressions = check_regressions(records, min_seconds=0.001)
        assert regressions == []

    def test_window_uses_most_recent_samples(self):
        # Old slow history outside the window must not mask a regression
        # against the recent fast baseline.
        old = [make_record({"T1": 5.0}) for _ in range(3)]
        recent = [make_record({"T1": 1.0}) for _ in range(3)]
        slow = make_record({"T1": 1.5})
        _, regressions = check_regressions(old + recent + [slow], window=3)
        assert [r.node for r in regressions] == ["T1"]
