"""Trace edge cases: empty files, single spans, orphans, determinism.

The crash-safety stance of the JSONL sink (flushed line per span, root
written last) means real traces can arrive truncated -- so the summary
and flame paths must degrade deterministically instead of silently
dropping whole subtrees.
"""

import pytest

from repro import obs
from repro.obs.flame import ORPHAN_FRAME, fold_stacks, format_folded
from repro.obs.summary import ORPHAN_PHASE, summarize_trace


def span(name, span_id, start, end, parent_id=None, pid=100):
    return {
        "name": name,
        "span_id": span_id,
        "parent_id": parent_id,
        "trace_id": "t1",
        "start": float(start),
        "end": float(end),
        "pid": pid,
    }


class TestEmptyTrace:
    def test_summary_of_no_records(self):
        summary = summarize_trace([])
        assert summary.spans == 0
        assert summary.root is None
        assert summary.coverage == 0.0
        assert summary.orphaned == 0
        assert summary.phases == []
        assert summary.slowest == []

    def test_empty_trace_file_reads_empty(self, tmp_path):
        path = tmp_path / "empty.trace"
        path.write_text("", encoding="utf-8")
        assert obs.read_trace(path) == []


class TestSingleSpan:
    def test_summary(self):
        summary = summarize_trace([span("only", "o", 1.0, 3.0)])
        assert summary.spans == 1
        assert summary.root["name"] == "only"
        assert summary.root_seconds == pytest.approx(2.0)
        # A childless root attributes nothing below itself.
        assert summary.coverage == 0.0
        assert summary.orphaned == 0

    def test_folds_to_one_stack(self):
        folded = fold_stacks([span("only", "o", 1.0, 3.0)])
        assert folded == [(("only",), pytest.approx(2.0))]


class TestOrphanedSpans:
    def trace(self):
        """A truncated trace: the wave record was lost, its subtree kept."""
        return [
            span("study.run", "r", 0.0, 10.0),
            # parent "w" (the wave) is missing from the trace.
            span("unit:studygraph", "u", 1.0, 5.0, parent_id="w", pid=200),
            span("node:T1", "n", 2.0, 4.0, parent_id="u", pid=200),
        ]

    def test_counted_and_phased_as_orphans(self):
        summary = summarize_trace(self.trace())
        assert summary.spans == 3
        assert summary.orphaned == 1  # the unit span; node:T1's parent exists
        phases = {s.name: s for s in summary.phases}
        assert phases[ORPHAN_PHASE].count == 1
        assert phases[ORPHAN_PHASE].total_seconds == pytest.approx(4.0)

    def test_orphan_time_counts_toward_coverage(self):
        summary = summarize_trace(self.trace())
        # The root has no surviving direct children; coverage is the
        # orphaned subtree's 4s over the root's 10s.
        assert summary.coverage == pytest.approx(0.4)

    def test_coverage_never_exceeds_one(self):
        records = [
            span("root", "r", 0.0, 1.0),
            span("child", "c", 0.0, 1.0, parent_id="r"),
            span("lost", "x", 0.0, 1.0, parent_id="gone"),
        ]
        assert summarize_trace(records).coverage == 1.0

    def test_orphan_subtree_keeps_internal_structure_when_folded(self):
        folded = dict(fold_stacks(self.trace()))
        assert (ORPHAN_FRAME, "unit:studygraph") in folded
        assert (ORPHAN_FRAME, "unit:studygraph", "node:T1") in folded

    def test_cross_process_orphans(self):
        records = [
            span("lost-a", "a", 0.0, 1.0, parent_id="gone", pid=1),
            span("lost-b", "b", 0.0, 2.0, parent_id="gone", pid=2),
        ]
        summary = summarize_trace(records)
        assert summary.orphaned == 2
        assert summary.processes == 2


class TestFoldedDeterminism:
    def trace(self, pid_offset=0):
        return [
            span("root", "r", 0.0, 10.0, pid=100 + pid_offset),
            span("wave", "w1", 0.0, 4.0, parent_id="r", pid=100 + pid_offset),
            span("wave", "w2", 5.0, 9.0, parent_id="r", pid=100 + pid_offset),
            span("node:T1", "n", 1.0, 3.0, parent_id="w1", pid=200 + pid_offset),
            span("lost", "x", 6.0, 7.0, parent_id="gone", pid=300 + pid_offset),
        ]

    def test_byte_identical_across_record_orderings(self):
        import itertools

        reference = format_folded(self.trace())
        assert reference.endswith("\n")
        for permutation in itertools.permutations(self.trace()):
            assert format_folded(list(permutation)) == reference

    def test_repeated_folds_are_byte_identical(self):
        texts = {format_folded(self.trace()) for _ in range(5)}
        assert len(texts) == 1
