"""Folded stacks, the ASCII icicle, and the speedscope export."""

import json

import pytest

from repro.obs.flame import (
    ORPHAN_FRAME,
    build_tree,
    fold_stacks,
    format_folded,
    parse_folded,
    render_icicle,
    speedscope_document,
)


def span(
    name,
    span_id,
    start,
    end,
    parent_id=None,
    pid=100,
    trace_id="t1",
    **attrs,
):
    record = {
        "name": name,
        "span_id": span_id,
        "parent_id": parent_id,
        "trace_id": trace_id,
        "start": float(start),
        "end": float(end),
        "pid": pid,
    }
    if attrs:
        record["attrs"] = attrs
    return record


@pytest.fixture
def simple_trace():
    """root(0..10) -> a(1..4), b(5..9); a -> leaf(2..3)."""
    return [
        span("root", "r", 0.0, 10.0),
        span("a", "a", 1.0, 4.0, parent_id="r"),
        span("leaf", "l", 2.0, 3.0, parent_id="a"),
        span("b", "b", 5.0, 9.0, parent_id="r"),
    ]


class TestBuildTree:
    def test_reconstructs_parent_child_links(self, simple_trace):
        roots, orphans = build_tree(simple_trace)
        assert [r.name for r in roots] == ["root"]
        assert not orphans
        root = roots[0]
        assert [c.name for c in root.children] == ["a", "b"]
        assert [c.name for c in root.children[0].children] == ["leaf"]

    def test_missing_parent_becomes_orphan(self):
        roots, orphans = build_tree(
            [span("lost", "x", 1.0, 2.0, parent_id="gone")]
        )
        assert not roots
        assert [o.name for o in orphans] == ["lost"]

    def test_children_sorted_by_start_then_id(self):
        records = [
            span("root", "r", 0.0, 10.0),
            span("late", "z", 5.0, 6.0, parent_id="r"),
            span("early", "a", 1.0, 2.0, parent_id="r"),
            span("tie-b", "b2", 3.0, 4.0, parent_id="r"),
            span("tie-a", "b1", 3.0, 4.0, parent_id="r"),
        ]
        roots, _ = build_tree(records)
        assert [c.name for c in roots[0].children] == [
            "early", "tie-a", "tie-b", "late",
        ]


class TestFoldStacks:
    def test_self_time_excludes_children(self, simple_trace):
        folded = dict(fold_stacks(simple_trace))
        # root: 10s total minus a (3s) and b (4s) = 3s self.
        assert folded[("root",)] == pytest.approx(3.0)
        # a: 3s total minus leaf (1s) = 2s self.
        assert folded[("root", "a")] == pytest.approx(2.0)
        assert folded[("root", "a", "leaf")] == pytest.approx(1.0)
        assert folded[("root", "b")] == pytest.approx(4.0)

    def test_total_self_time_equals_root_wall(self, simple_trace):
        assert sum(s for _, s in fold_stacks(simple_trace)) == pytest.approx(
            10.0
        )

    def test_identical_stacks_merge(self):
        records = [
            span("root", "r", 0.0, 10.0),
            span("wave", "w1", 0.0, 2.0, parent_id="r"),
            span("wave", "w2", 3.0, 6.0, parent_id="r"),
        ]
        folded = dict(fold_stacks(records))
        assert folded[("root", "wave")] == pytest.approx(5.0)

    def test_overlapping_children_clamp_at_zero(self):
        # Children sum past the parent's wall; self time must not go
        # negative.
        records = [
            span("root", "r", 0.0, 2.0),
            span("a", "a", 0.0, 2.0, parent_id="r"),
            span("b", "b", 0.0, 2.0, parent_id="r"),
        ]
        folded = dict(fold_stacks(records))
        assert folded[("root",)] == 0.0

    def test_orphans_fold_under_synthetic_frame(self):
        folded = dict(
            fold_stacks([span("lost", "x", 1.0, 3.0, parent_id="gone")])
        )
        assert folded[(ORPHAN_FRAME, "lost")] == pytest.approx(2.0)


class TestFoldedText:
    def test_round_trip(self, simple_trace):
        text = format_folded(simple_trace)
        pairs = parse_folded(text)
        assert pairs == [
            (stack, int(round(seconds * 1_000_000)))
            for stack, seconds in fold_stacks(simple_trace)
        ]

    def test_byte_identical_across_record_order(self, simple_trace):
        shuffled = list(reversed(simple_trace))
        assert format_folded(simple_trace) == format_folded(shuffled)

    def test_empty_trace_formats_empty(self):
        assert format_folded([]) == ""

    def test_parse_skips_malformed_lines(self):
        text = "a;b 100\nnot a folded line\n;c notanint\n"
        assert parse_folded(text) == [(("a", "b"), 100)]


class TestIcicle:
    def test_root_bar_spans_full_width(self, simple_trace):
        out = render_icicle(simple_trace, width=40)
        lines = out.splitlines()
        assert lines[0] == "icicle: 40 cols = 10000.0 ms (root root)"
        root_row = lines[1]
        assert len(root_row) == 40
        assert root_row.startswith("|root")
        assert root_row[5:] == "-" * 35

    def test_child_bars_positioned_by_offset(self, simple_trace):
        rows = render_icicle(simple_trace, width=40).splitlines()
        child_row = rows[2]
        # a runs 1..4 of 0..10 -> columns 4..16; b runs 5..9 -> 20..36.
        assert child_row.index("|a") == 4
        assert child_row.index("|b") == 20

    def test_depth_limit(self, simple_trace):
        rows = render_icicle(simple_trace, width=40, max_depth=1).splitlines()
        assert len(rows) == 2  # header + root row only

    def test_empty_trace_message(self):
        assert render_icicle([]) == "(empty trace: nothing to render)"

    def test_zero_length_root_message(self):
        out = render_icicle([span("root", "r", 5.0, 5.0)])
        assert "zero-length root" in out

    def test_single_span_trace(self):
        out = render_icicle([span("only", "o", 0.0, 1.0)], width=20)
        lines = out.splitlines()
        assert len(lines) == 2
        assert lines[1].startswith("|only")


class TestSpeedscope:
    def test_document_matches_schema_shape(self, simple_trace):
        doc = speedscope_document(simple_trace, name="test trace")
        assert (
            doc["$schema"]
            == "https://www.speedscope.app/file-format-schema.json"
        )
        assert doc["name"] == "test trace"
        assert doc["activeProfileIndex"] == 0
        assert [f["name"] for f in doc["shared"]["frames"]] == sorted(
            {"root", "a", "b", "leaf"}
        )
        assert len(doc["profiles"]) == 1
        profile = doc["profiles"][0]
        assert profile["type"] == "evented"
        assert profile["unit"] == "seconds"
        assert profile["startValue"] == 0.0
        assert profile["endValue"] == pytest.approx(10.0)

    def test_events_well_nested(self, simple_trace):
        profile = speedscope_document(simple_trace)["profiles"][0]
        stack = []
        last_at = 0.0
        for event in profile["events"]:
            assert event["at"] >= last_at - 1e-9
            last_at = event["at"]
            if event["type"] == "O":
                stack.append(event["frame"])
            else:
                assert stack.pop() == event["frame"]
        assert not stack

    def test_child_clamped_inside_parent(self):
        # A child whose clock leaks past its parent still nests.
        records = [
            span("root", "r", 0.0, 5.0),
            span("leaky", "l", 4.0, 7.0, parent_id="r"),
        ]
        profile = speedscope_document(records)["profiles"][0]
        close_times = {
            e["frame"]: e["at"] for e in profile["events"] if e["type"] == "C"
        }
        frames = [f["name"] for f in speedscope_document(records)["shared"]["frames"]]
        assert close_times[frames.index("leaky")] <= close_times[
            frames.index("root")
        ]

    def test_one_profile_per_pid(self):
        records = [
            span("root", "r", 0.0, 10.0, pid=1),
            span("unit", "u", 2.0, 4.0, parent_id="r", pid=2),
        ]
        doc = speedscope_document(records)
        assert [p["name"] for p in doc["profiles"]] == ["pid 1", "pid 2"]
        # The cross-process child opens a top-level stack in its own pid.
        assert len(doc["profiles"][1]["events"]) == 2

    def test_document_is_json_serialisable(self, simple_trace):
        json.dumps(speedscope_document(simple_trace))

    def test_empty_trace(self):
        doc = speedscope_document([])
        assert doc["profiles"] == []
        assert doc["shared"]["frames"] == []
