"""Throughput counters/records for streaming ingest spans."""

import pytest

from repro.obs.perfdb import (
    STATUS_EXECUTED,
    STATUS_TRACED,
    record_from_trace,
    throughput_counters,
    throughput_record,
)


def span(name, span_id, start, end, parent_id=None, **attrs):
    record = {
        "name": name,
        "span_id": span_id,
        "parent_id": parent_id,
        "trace_id": "t1",
        "start": float(start),
        "end": float(end),
        "pid": 1,
    }
    if attrs:
        record["attrs"] = attrs
    return record


class TestThroughputCounters:
    def test_rates_computed_from_wall(self):
        counters = throughput_counters(
            "stream:parse:mysql",
            wall_seconds=2.0,
            bytes_count=4 * 1024 * 1024,
            records_count=1000,
        )
        assert counters["stream:parse:mysql.bytes"] == 4 * 1024 * 1024
        assert counters["stream:parse:mysql.records"] == 1000
        assert counters["stream:parse:mysql.mb_per_s"] == pytest.approx(2.0)
        assert counters["stream:parse:mysql.reports_per_s"] == pytest.approx(500.0)

    def test_zero_wall_omits_rates(self):
        counters = throughput_counters(
            "s", wall_seconds=0.0, bytes_count=10, records_count=1
        )
        assert "s.mb_per_s" not in counters
        assert "s.reports_per_s" not in counters
        assert counters["s.bytes"] == 10


class TestThroughputRecord:
    def test_record_carries_node_and_counters(self):
        record = throughput_record(
            "stream:parse:mysql",
            wall_seconds=4.0,
            bytes_count=8 * 1024 * 1024,
            records_count=2000,
            workers=3,
            label="bench",
            sha="cafe",
        )
        assert record.source == "stream"
        assert record.workers == 3
        assert record.label == "bench"
        node = record.nodes["stream:parse:mysql"]
        assert node.wall_seconds == pytest.approx(4.0)
        assert node.status == STATUS_EXECUTED
        assert record.counters["stream:parse:mysql.mb_per_s"] == pytest.approx(2.0)
        assert record.counters["stream:parse:mysql.reports_per_s"] == (
            pytest.approx(500.0)
        )


class TestStreamSpansInTraces:
    def trace(self):
        return [
            span("pipeline:mysql", "r", 0.0, 10.0, workers=2),
            span(
                "stream:parse:mysql", "s1", 0.0, 4.0, parent_id="r",
                bytes=2 * 1024 * 1024, records=800, ranges=5,
            ),
            span("node:T1", "n1", 4.0, 6.0, parent_id="r"),
        ]

    def test_stream_span_becomes_a_node(self):
        record = record_from_trace(self.trace())
        node = record.nodes["stream:parse:mysql"]
        assert node.wall_seconds == pytest.approx(4.0)
        assert node.status == STATUS_TRACED

    def test_stream_span_lands_throughput_counters(self):
        record = record_from_trace(self.trace())
        assert record.counters["stream:parse:mysql.bytes"] == 2 * 1024 * 1024
        assert record.counters["stream:parse:mysql.records"] == 800
        assert record.counters["stream:parse:mysql.mb_per_s"] == pytest.approx(0.5)
        assert record.counters["stream:parse:mysql.reports_per_s"] == (
            pytest.approx(200.0)
        )

    def test_repeated_stream_spans_accumulate(self):
        trace = self.trace() + [
            span(
                "stream:parse:mysql", "s2", 6.0, 8.0, parent_id="r",
                bytes=1024 * 1024, records=200,
            )
        ]
        record = record_from_trace(trace)
        assert record.nodes["stream:parse:mysql"].wall_seconds == pytest.approx(6.0)
        assert record.counters["stream:parse:mysql.records"] == 1000

    def test_malformed_attrs_are_ignored(self):
        trace = [
            span("pipeline:mysql", "r", 0.0, 1.0),
            span(
                "stream:parse:mysql", "s1", 0.0, 1.0, parent_id="r",
                bytes="not-a-number", records=None,
            ),
        ]
        record = record_from_trace(trace)
        assert record.counters["stream:parse:mysql.bytes"] == 0.0

    def test_live_streamed_parse_trace_round_trips(self, tmp_path, study):
        """An actual traced streaming parse produces throughput counters."""
        from repro import obs
        from repro.bugdb.enums import Application
        from repro.pipeline import format_for, parse_archive_streamed

        fmt = format_for(Application.MYSQL)
        text = fmt.render(study.corpus(Application.MYSQL), 800)
        path = tmp_path / "mysql.mbox"
        path.write_text(text, encoding="utf-8")
        sink = obs.MemorySink()
        with obs.tracing(sink):
            parse_archive_streamed(fmt, path, max_shard_bytes=64 << 10)
        record = record_from_trace(sink.records)
        assert "stream:parse:mysql" in record.nodes
        assert record.counters["stream:parse:mysql.records"] > 0
        assert record.counters["stream:parse:mysql.mb_per_s"] > 0
