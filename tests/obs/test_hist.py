"""The shared log-linear histogram and its text exposition.

The load-bearing property throughout: percentiles are bucket bounds,
so a histogram rebuilt anywhere -- merged, serialised, or parsed back
from exposition text -- answers bit-identically.
"""

import math

import pytest

from repro.obs.hist import (
    Histogram,
    bucket_percentile,
    exposition_buckets,
    exposition_value,
    format_le,
    histogram_lines,
    metric_line,
    parse_exposition,
)


class TestBucketScheme:
    def test_bounds_are_shared_per_scheme(self):
        assert Histogram().bounds is Histogram().bounds

    def test_bounds_ascend(self):
        bounds = Histogram().bounds
        assert all(a < b for a, b in zip(bounds, bounds[1:]))

    def test_relative_error_bounded_by_subbuckets(self):
        hist = Histogram()
        for value in (1e-5, 0.00123, 0.5, 3.7, 999.0, 123456.0):
            upper = hist.bucket_upper(hist.bucket_index(value))
            assert value <= upper <= value * (1 + 1.0 / hist.subbuckets) * 1.001

    def test_invalid_schemes_rejected(self):
        with pytest.raises(ValueError):
            Histogram(lowest=0)
        with pytest.raises(ValueError):
            Histogram(lowest=10, highest=1)
        with pytest.raises(ValueError):
            Histogram(subbuckets=0)


class TestRecording:
    def test_empty_percentile_is_zero(self):
        assert Histogram().percentile(0.99) == 0.0

    def test_negative_clamps_to_zero(self):
        hist = Histogram.from_values([-5.0])
        assert hist.min_value == 0.0
        assert hist.count == 1

    def test_overflow_bucket(self):
        hist = Histogram.from_values([1e9])
        assert hist.percentile(0.5) == math.inf

    def test_percentile_is_upper_bound_of_nearest_rank_bucket(self):
        values = [0.001 * (i + 1) for i in range(100)]
        hist = Histogram.from_values(values)
        p99 = hist.percentile(0.99)
        # The 99th smallest sample is 0.099; its bucket bound covers it.
        assert 0.099 <= p99 <= 0.099 * 1.126
        assert p99 in hist.bounds

    def test_mean_and_extremes_exact(self):
        hist = Histogram.from_values([1.0, 2.0, 3.0])
        assert hist.mean == 2.0
        assert hist.min_value == 1.0
        assert hist.max_value == 3.0

    def test_merge_equals_single_histogram(self):
        left = Histogram.from_values([0.01, 0.02])
        right = Histogram.from_values([0.5, 7.0, 0.0001])
        left.merge(right)
        combined = Histogram.from_values([0.01, 0.02, 0.5, 7.0, 0.0001])
        assert left.counts == combined.counts
        assert left.percentile(0.95) == combined.percentile(0.95)

    def test_merge_rejects_different_scheme(self):
        with pytest.raises(ValueError, match="scheme"):
            Histogram().merge(Histogram(subbuckets=4))

    def test_dict_round_trip(self):
        hist = Histogram.from_values([0.003, 0.07, 1.5])
        clone = Histogram.from_dict(hist.to_dict())
        assert clone.counts == hist.counts
        assert clone.percentile(0.5) == hist.percentile(0.5)
        assert clone.total == hist.total


class TestExposition:
    def test_metric_line_formats(self):
        assert metric_line("x_total", 3) == "x_total 3"
        line = metric_line("x", 1.5, {"kind": "study"})
        assert line == 'x{kind="study"} 1.5'

    def test_histogram_lines_end_with_inf_sum_count(self):
        hist = Histogram.from_values([0.01, 0.02, 5.0])
        lines = histogram_lines("lat", hist, {"kind": "ping"})
        assert lines[-3].endswith(" 3") and 'le="+Inf"' in lines[-3]
        assert lines[-2].startswith("lat_sum")
        assert lines[-1].startswith("lat_count")

    def test_parse_rejects_malformed(self):
        with pytest.raises(ValueError, match="malformed"):
            parse_exposition("this is { not a metric")

    def test_parse_skips_comments_and_blanks(self):
        samples = parse_exposition("# TYPE x counter\n\nx_total 4\n")
        assert samples == [("x_total", {}, 4.0)]

    def test_label_escaping_round_trip(self):
        line = metric_line("x", 1, {"msg": 'a"b\\c\nd'})
        ((_, labels, _),) = parse_exposition(line)
        assert labels["msg"] == 'a"b\\c\nd'

    def test_exposition_value_none_vs_zero(self):
        samples = parse_exposition("x_total 0")
        assert exposition_value(samples, "x_total") == 0.0
        assert exposition_value(samples, "y_total") is None

    def test_percentile_round_trips_through_text_bit_identically(self):
        values = [0.00012, 0.0034, 0.0034, 0.08, 0.081, 1.9, 44.0]
        hist = Histogram.from_values(values)
        text = "\n".join(histogram_lines("lat", hist, {"kind": "study"}))
        buckets = exposition_buckets(
            parse_exposition(text), "lat", {"kind": "study"}
        )
        for fraction in (0.5, 0.9, 0.95, 0.99, 1.0):
            assert bucket_percentile(buckets, fraction) == hist.percentile(fraction)

    def test_bucket_percentile_empty(self):
        assert bucket_percentile([], 0.5) == 0.0

    def test_format_le_round_trips_floats(self):
        for bound in Histogram().bounds[:40]:
            assert float(format_le(bound)) == bound
        assert format_le(math.inf) == "+Inf"
