"""Chrome trace_event export and trace summaries."""

import json

from repro import obs
from repro.obs import chrome_trace, summarize_trace
from repro.obs.sinks import MemorySink


def _toy_records():
    sink = MemorySink()
    with obs.tracing(sink):
        with obs.span("study.run"):
            with obs.span("wave", index=1):
                with obs.span("unit:echo"):
                    pass
            with obs.span("wave", index=2):
                pass
    return sink.records


def test_export_is_valid_json_with_one_event_per_span():
    records = _toy_records()
    payload = chrome_trace(records)
    json.loads(json.dumps(payload))  # round-trips as plain JSON
    events = payload["traceEvents"]
    complete = [e for e in events if e["ph"] == "X"]
    metadata = [e for e in events if e["ph"] == "M"]
    assert len(complete) == len(records)
    assert len(metadata) == 1  # one recording process
    assert metadata[0]["args"]["name"] == "repro (main)"
    assert payload["displayTimeUnit"] == "ms"


def test_ts_and_dur_are_rebased_microseconds():
    records = _toy_records()
    payload = chrome_trace(records)
    complete = {
        (e["name"], e["args"]["span_id"]): e
        for e in payload["traceEvents"]
        if e["ph"] == "X"
    }
    epoch = min(r["start"] for r in records)
    for record in records:
        event = complete[(record["name"], record["span_id"])]
        expected_ts = (record["start"] - epoch) * 1_000_000
        expected_dur = (record["end"] - record["start"]) * 1_000_000
        assert abs(event["ts"] - expected_ts) < 0.01
        assert abs(event["dur"] - expected_dur) < 0.01
        assert event["ts"] >= 0
        assert event["dur"] >= 0
    # Complete events are timestamp-sorted.
    ts_values = [e["ts"] for e in payload["traceEvents"] if e["ph"] == "X"]
    assert ts_values == sorted(ts_values)


def test_export_carries_hierarchy_in_args():
    records = _toy_records()
    by_name = {r["name"]: r for r in records if r["name"].startswith("unit")}
    payload = chrome_trace(records)
    [unit_event] = [
        e for e in payload["traceEvents"] if e.get("name") == "unit:echo"
    ]
    assert unit_event["cat"] == "unit"
    assert unit_event["args"]["span_id"] == by_name["unit:echo"]["span_id"]
    assert unit_event["args"]["parent_id"] == by_name["unit:echo"]["parent_id"]


def test_export_of_empty_trace():
    assert chrome_trace([]) == {"traceEvents": [], "displayTimeUnit": "ms"}


def test_summary_attribution_and_coverage():
    records = _toy_records()
    summary = summarize_trace(records, top=2)
    assert summary.spans == 4
    assert summary.processes == 1
    assert summary.root["name"] == "study.run"
    assert 0.0 < summary.coverage <= 1.0
    phases = {stats.name for stats in summary.phases}
    assert {"study.run", "wave", "unit"} <= phases
    assert len(summary.slowest) == 2
    assert summary.slowest[0]["name"] == "study.run"
    wave = next(stats for stats in summary.phases if stats.name == "wave")
    assert wave.count == 2
    assert wave.total_seconds >= wave.max_seconds


def test_summary_of_empty_trace():
    summary = summarize_trace([])
    assert summary.spans == 0
    assert summary.root is None
    assert summary.coverage == 0.0
    assert summary.phases == []
