"""Cross-process span propagation through the harness pool.

Worker-side spans are capture-buffered, shipped back in
``UnitExecution.spans``, and ingested by the dispatching process -- so a
trace has one writer but still links worker spans under the dispatching
wave.  The toy producers are module-level so forked workers resolve them
by reference.
"""

import multiprocessing
import time

import pytest

from repro import obs
from repro.harness.pool import WorkerPool
from repro.harness.workunit import WorkUnit
from repro.obs.sinks import MemorySink
from repro.studygraph.context import StudyContext
from repro.studygraph.node import KIND_ARTIFACT, NodeSpec
from repro.studygraph.registry import Registry
from repro.studygraph.scheduler import run_study

fork_available = "fork" in multiprocessing.get_all_start_methods()


@pytest.fixture(autouse=True)
def _no_ambient_tracer():
    obs.uninstall()
    yield
    obs.uninstall()


def _echo_runner(unit, context):
    return {"value": unit.params_dict()["n"]}


def _root(ctx, inputs, params):
    # A small stall so wave time dominates the trace, as in real runs
    # (coverage assertions are meaningless on a microsecond-long root).
    time.sleep(0.005)
    return {"value": 3}


def _double(ctx, inputs, params):
    time.sleep(0.005)
    return {"value": inputs["root"]["value"] * 2}


def _toy_registry():
    return Registry(
        [
            NodeSpec.build("root", _root, kind=KIND_ARTIFACT),
            NodeSpec.build("double", _double, deps=("root",)),
        ]
    )


def test_pool_units_parent_under_dispatching_span():
    sink = MemorySink()
    units = [
        WorkUnit.build("echo", f"fault-{n}", params={"n": n}) for n in range(4)
    ]
    with obs.tracing(sink):
        with obs.span("dispatch") as dispatch:
            WorkerPool(1).execute(
                units, _echo_runner, None, on_unit=lambda execution: None
            )
    unit_records = [r for r in sink.records if r["name"] == "unit:echo"]
    assert len(unit_records) == 4
    assert all(r["parent_id"] == dispatch.span_id for r in unit_records)
    assert all(r["attrs"]["queue_ms"] >= 0 for r in unit_records)


@pytest.mark.skipif(not fork_available, reason="needs fork-based workers")
def test_forked_worker_spans_link_to_dispatcher():
    sink = MemorySink()
    units = [
        WorkUnit.build("echo", f"fault-{n}", params={"n": n}) for n in range(6)
    ]
    with obs.tracing(sink):
        with obs.span("dispatch") as dispatch:
            WorkerPool(3).execute(
                units, _echo_runner, None, on_unit=lambda execution: None
            )
    unit_records = [r for r in sink.records if r["name"] == "unit:echo"]
    assert len(unit_records) == 6
    assert all(r["parent_id"] == dispatch.span_id for r in unit_records)
    # Worker spans recorded in other processes still landed in one sink.
    dispatcher_pid = next(
        r["pid"] for r in sink.records if r["name"] == "dispatch"
    )
    assert {r["pid"] for r in unit_records} - {dispatcher_pid}


@pytest.mark.skipif(not fork_available, reason="needs fork-based workers")
def test_study_run_trace_links_across_processes(tmp_path):
    trace_path = tmp_path / "study.trace"
    with obs.tracing(trace_path):
        run_study(
            StudyContext.default(workers=2),
            nodes=["double"],
            registry=_toy_registry(),
        )
    records = obs.read_trace(trace_path)
    by_id = {r["span_id"]: r for r in records}
    node_records = [r for r in records if r["name"].startswith("node:")]
    assert {r["name"] for r in node_records} == {"node:root", "node:double"}
    for record in records:
        if record["parent_id"] is not None:
            assert record["parent_id"] in by_id  # no dangling parents
    # node -> unit -> campaign -> wave -> study.run, across the fork.
    for node_record in node_records:
        chain = []
        cursor = node_record
        while cursor["parent_id"] is not None:
            cursor = by_id[cursor["parent_id"]]
            chain.append(cursor["name"])
        assert chain == ["unit:studygraph", "campaign", "wave", "study.run"]
    assert len({r["pid"] for r in records}) >= 2
    assert len({r["trace_id"] for r in records}) == 1


def test_serial_study_run_trace_is_complete(tmp_path):
    trace_path = tmp_path / "study.trace"
    with obs.tracing(trace_path):
        result = run_study(
            StudyContext.default(workers=1),
            nodes=["double"],
            registry=_toy_registry(),
        )
    assert result.executed == 2
    records = obs.read_trace(trace_path)
    names = {r["name"] for r in records}
    assert {"study.run", "wave", "campaign", "unit:studygraph"} <= names
    summary = obs.summarize_trace(records)
    assert summary.root["name"] == "study.run"
    assert summary.coverage >= 0.95


def test_payloads_identical_with_and_without_tracing(tmp_path):
    traced_ctx = StudyContext.default(workers=1)
    with obs.tracing(tmp_path / "t.trace"):
        traced = run_study(
            traced_ctx, nodes=["double"], registry=_toy_registry()
        )
    untraced = run_study(
        StudyContext.default(workers=1),
        nodes=["double"],
        registry=_toy_registry(),
    )
    assert traced.outputs == untraced.outputs
    assert {
        name: run.digest for name, run in traced.runs.items()
    } == {name: run.digest for name, run in untraced.runs.items()}
