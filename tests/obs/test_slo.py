"""SLO checker: objectives, three-valued verdicts, and the leak lens."""

from __future__ import annotations

import json

import pytest

from repro.obs.hist import Histogram, histogram_lines, metric_line
from repro.obs.perfdb import NodePerf, PerfRecord
from repro.obs.slo import (
    KIND_ERROR_BUDGET,
    KIND_LATENCY,
    KIND_PEAK_RSS,
    KIND_REJECTION_BUDGET,
    KIND_RSS_GROWTH,
    STATUS_NO_DATA,
    STATUS_OK,
    STATUS_VIOLATED,
    Objective,
    SloResult,
    default_objectives,
    evaluate_objectives,
    load_objectives,
)

MB = 1024 * 1024


def _one(results: list[SloResult]) -> SloResult:
    assert len(results) == 1
    return results[0]


# -- evidence builders ---------------------------------------------------- #


def exposition_with_latencies(
    kind: str,
    latencies: list[float],
    *,
    errors: int = 0,
    rejected: int = 0,
) -> str:
    """A minimal but well-formed exposition for one request kind."""
    hist = Histogram.from_values(latencies)
    lines: list[str] = []
    ok = len(latencies) - errors
    if ok:
        lines.append(
            metric_line("repro_requests_total", ok, {"kind": kind, "status": "ok"})
        )
    if errors:
        lines.append(
            metric_line(
                "repro_requests_total", errors, {"kind": kind, "status": "error"}
            )
        )
    if rejected:
        lines.append(
            metric_line(
                "repro_requests_total",
                rejected,
                {"kind": kind, "status": "rejected-busy"},
            )
        )
    lines.extend(
        histogram_lines("repro_request_latency_seconds", hist, {"kind": kind})
    )
    return "\n".join(lines) + "\n"


def perf_record(nodes: dict[str, NodePerf], run_id: str = "r1") -> PerfRecord:
    return PerfRecord(
        run_id=run_id,
        recorded_at="2026-08-08T00:00:00Z",
        git_sha="unknown",
        source="study-run",
        workers=1,
        nodes=nodes,
    )


def rss_samples(
    span_name: str, rss_values: list[int], *, pid: int = 1234
) -> list[dict]:
    """Resource-sample records: one per value, 10ms apart."""
    return [
        {
            "kind": "resource",
            "pid": pid,
            "t": 10.0 + 0.01 * i,
            "rss_bytes": rss,
            "cpu_seconds": 0.001 * i,
            "span_name": span_name,
        }
        for i, rss in enumerate(rss_values)
    ]


# -- Objective / SloResult basics ----------------------------------------- #


class TestObjective:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown objective kind"):
            Objective(name="x", kind="throughput", threshold=1.0)

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            Objective(name="x", kind=KIND_LATENCY, threshold=-1.0)

    def test_round_trips_through_dict(self):
        obj = Objective(
            name="p95", kind=KIND_LATENCY, threshold=0.5, target="ping", fraction=0.95
        )
        assert Objective.from_dict(obj.to_dict()) == obj

    def test_default_objectives_cover_every_kind(self):
        kinds = {o.kind for o in default_objectives()}
        assert kinds == {
            KIND_LATENCY,
            KIND_ERROR_BUDGET,
            KIND_REJECTION_BUDGET,
            KIND_PEAK_RSS,
            KIND_RSS_GROWTH,
        }

    def test_load_objectives_from_json(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text(
            json.dumps(
                [
                    {"name": "p99", "kind": "latency", "target": "study",
                     "threshold": 1.0},
                    {"kind": "error-budget", "threshold": 0.01},
                ]
            )
        )
        objectives = load_objectives(path)
        assert [o.name for o in objectives] == ["p99", "error-budget"]
        assert objectives[1].threshold == 0.01

    def test_load_objectives_rejects_non_list(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text('{"kind": "latency"}')
        with pytest.raises(ValueError, match="JSON list"):
            load_objectives(path)


class TestThreeValuedVerdicts:
    def test_no_evidence_at_all_is_all_no_data(self):
        results = evaluate_objectives(default_objectives())
        assert [r.status for r in results] == [STATUS_NO_DATA] * 5
        assert all(r.observed is None for r in results)
        assert not any(r.violated for r in results)

    def test_partial_evidence_judges_only_what_it_can(self):
        text = exposition_with_latencies("study", [0.01] * 10)
        results = evaluate_objectives(default_objectives(), exposition_text=text)
        by_name = {r.objective.name: r for r in results}
        assert by_name["serve-study-p99"].status == STATUS_OK
        assert by_name["serve-error-budget"].status == STATUS_OK
        assert by_name["campaign-peak-rss"].status == STATUS_NO_DATA
        assert by_name["span-rss-leak"].status == STATUS_NO_DATA

    def test_malformed_exposition_raises(self):
        with pytest.raises(ValueError):
            evaluate_objectives(
                default_objectives(), exposition_text="this is not exposition{{{\n"
            )

    def test_row_shape(self):
        result = _one(
            evaluate_objectives(
                [Objective(name="x", kind=KIND_LATENCY, threshold=1.0)]
            )
        )
        row = result.row()
        assert row[0] == "x"
        assert row[2] == STATUS_NO_DATA
        assert row[3] == "-"


# -- latency -------------------------------------------------------------- #


class TestLatencyObjective:
    def test_ok_under_threshold(self):
        text = exposition_with_latencies("study", [0.01, 0.02, 0.03] * 10)
        result = _one(
            evaluate_objectives(
                [Objective(name="p99", kind=KIND_LATENCY, target="study",
                           threshold=1.0)],
                exposition_text=text,
            )
        )
        assert result.status == STATUS_OK
        assert result.observed is not None and result.observed < 1.0

    def test_violated_over_threshold(self):
        text = exposition_with_latencies("study", [5.0] * 20)
        result = _one(
            evaluate_objectives(
                [Objective(name="p99", kind=KIND_LATENCY, target="study",
                           threshold=1.0)],
                exposition_text=text,
            )
        )
        assert result.violated
        assert result.observed > 1.0

    def test_wrong_kind_is_no_data(self):
        text = exposition_with_latencies("ping", [0.01] * 5)
        result = _one(
            evaluate_objectives(
                [Objective(name="p99", kind=KIND_LATENCY, target="study",
                           threshold=1.0)],
                exposition_text=text,
            )
        )
        assert result.status == STATUS_NO_DATA

    def test_percentile_matches_live_histogram(self):
        latencies = [0.001 * i for i in range(1, 200)]
        text = exposition_with_latencies("study", latencies)
        result = _one(
            evaluate_objectives(
                [Objective(name="p95", kind=KIND_LATENCY, target="study",
                           threshold=10.0, fraction=0.95)],
                exposition_text=text,
            )
        )
        assert result.observed == Histogram.from_values(latencies).percentile(0.95)


# -- error / rejection budgets -------------------------------------------- #


class TestBudgetObjectives:
    def test_error_budget_ok(self):
        text = exposition_with_latencies("study", [0.01] * 100, errors=2)
        result = _one(
            evaluate_objectives(
                [Objective(name="eb", kind=KIND_ERROR_BUDGET, threshold=0.05)],
                exposition_text=text,
            )
        )
        assert result.status == STATUS_OK
        assert result.observed == pytest.approx(0.02)

    def test_error_budget_violated(self):
        text = exposition_with_latencies("study", [0.01] * 10, errors=4)
        result = _one(
            evaluate_objectives(
                [Objective(name="eb", kind=KIND_ERROR_BUDGET, threshold=0.05)],
                exposition_text=text,
            )
        )
        assert result.violated
        assert result.observed == pytest.approx(0.4)

    def test_rejection_budget_counts_rejected_busy(self):
        text = exposition_with_latencies("study", [0.01] * 6, rejected=4)
        result = _one(
            evaluate_objectives(
                [Objective(name="rb", kind=KIND_REJECTION_BUDGET, threshold=0.25)],
                exposition_text=text,
            )
        )
        assert result.violated
        assert result.observed == pytest.approx(0.4)

    def test_no_requests_is_no_data(self):
        result = _one(
            evaluate_objectives(
                [Objective(name="eb", kind=KIND_ERROR_BUDGET, threshold=0.05)],
                exposition_text="# nothing here\n",
            )
        )
        assert result.status == STATUS_NO_DATA


# -- peak RSS from perf history ------------------------------------------- #


class TestPeakRssObjective:
    def test_ok_under_threshold(self):
        records = [
            perf_record({"T1": NodePerf(wall_seconds=0.1, peak_rss_bytes=100 * MB)})
        ]
        result = _one(
            evaluate_objectives(
                [Objective(name="rss", kind=KIND_PEAK_RSS, threshold=256 * MB)],
                perf_records=records,
            )
        )
        assert result.status == STATUS_OK
        assert result.observed == 100 * MB

    def test_violated_names_worst_node(self):
        records = [
            perf_record(
                {
                    "T1": NodePerf(wall_seconds=0.1, peak_rss_bytes=100 * MB),
                    "mine": NodePerf(wall_seconds=0.2, peak_rss_bytes=900 * MB),
                }
            )
        ]
        result = _one(
            evaluate_objectives(
                [Objective(name="rss", kind=KIND_PEAK_RSS, threshold=256 * MB)],
                perf_records=records,
            )
        )
        assert result.violated
        assert result.observed == 900 * MB
        assert "mine" in result.detail

    def test_uses_latest_record_with_resource_data(self):
        records = [
            perf_record(
                {"T1": NodePerf(wall_seconds=0.1, peak_rss_bytes=999 * MB)}, "old"
            ),
            perf_record(
                {"T1": NodePerf(wall_seconds=0.1, peak_rss_bytes=10 * MB)}, "new"
            ),
            perf_record({"T1": NodePerf(wall_seconds=0.1)}, "no-resources"),
        ]
        result = _one(
            evaluate_objectives(
                [Objective(name="rss", kind=KIND_PEAK_RSS, threshold=256 * MB)],
                perf_records=records,
            )
        )
        assert result.status == STATUS_OK
        assert "new" in result.detail

    def test_target_matches_grid_family(self):
        records = [
            perf_record(
                {
                    "mine[scale=3]": NodePerf(
                        wall_seconds=0.1, peak_rss_bytes=500 * MB
                    ),
                    "other": NodePerf(wall_seconds=0.1, peak_rss_bytes=900 * MB),
                }
            )
        ]
        result = _one(
            evaluate_objectives(
                [Objective(name="rss", kind=KIND_PEAK_RSS, target="mine",
                           threshold=256 * MB)],
                perf_records=records,
            )
        )
        assert result.violated
        assert result.observed == 500 * MB  # 'other' excluded by target

    def test_no_resource_fields_anywhere_is_no_data(self):
        records = [perf_record({"T1": NodePerf(wall_seconds=0.1)})]
        result = _one(
            evaluate_objectives(
                [Objective(name="rss", kind=KIND_PEAK_RSS, threshold=256 * MB)],
                perf_records=records,
            )
        )
        assert result.status == STATUS_NO_DATA


# -- RSS growth (the leak lens) ------------------------------------------- #


class TestRssGrowthObjective:
    def leak_objective(self, threshold: float = 32 * MB) -> Objective:
        return Objective(
            name="leak", kind=KIND_RSS_GROWTH, threshold=threshold, fraction=4
        )

    def test_monotonic_growth_is_flagged(self):
        """The acceptance fixture: a leak-injected span family whose
        sampled RSS series grows monotonically must be flagged."""
        trace = rss_samples(
            "node:leaky", [100 * MB + i * 20 * MB for i in range(8)]
        )
        result = _one(
            evaluate_objectives([self.leak_objective()], trace_records=trace)
        )
        assert result.violated
        assert "node:leaky" in result.detail
        assert result.observed == pytest.approx(7 * 20 * MB)

    def test_flat_series_passes(self):
        trace = rss_samples("node:steady", [100 * MB] * 8)
        result = _one(
            evaluate_objectives([self.leak_objective()], trace_records=trace)
        )
        assert result.status == STATUS_OK

    def test_sawtooth_passes(self):
        # allocate/free cycles: grows then drops -- not monotonic.
        values = [100 * MB, 300 * MB, 120 * MB, 320 * MB, 110 * MB, 330 * MB]
        trace = rss_samples("node:sawtooth", values)
        result = _one(
            evaluate_objectives([self.leak_objective()], trace_records=trace)
        )
        assert result.status == STATUS_OK

    def test_small_monotonic_growth_under_threshold_passes(self):
        trace = rss_samples("node:warmup", [100 * MB + i * MB for i in range(8)])
        result = _one(
            evaluate_objectives([self.leak_objective()], trace_records=trace)
        )
        assert result.status == STATUS_OK

    def test_too_few_samples_is_no_data(self):
        trace = rss_samples("node:short", [100 * MB, 500 * MB])
        result = _one(
            evaluate_objectives([self.leak_objective()], trace_records=trace)
        )
        assert result.status == STATUS_NO_DATA

    def test_jitter_tolerated_within_one_percent(self):
        # a 0.5% dip must not break the monotonic classification
        base = 1000 * MB
        values = [base, base + 50 * MB, int((base + 50 * MB) * 0.997),
                  base + 100 * MB, base + 150 * MB]
        trace = rss_samples("node:jitter", values)
        result = _one(
            evaluate_objectives([self.leak_objective()], trace_records=trace)
        )
        assert result.violated

    def test_target_prefix_filters_spans(self):
        trace = rss_samples(
            "node:leaky", [100 * MB + i * 20 * MB for i in range(8)]
        ) + rss_samples("phase:other", [100 * MB] * 8, pid=5678)
        objective = Objective(
            name="leak", kind=KIND_RSS_GROWTH, target="phase:",
            threshold=32 * MB, fraction=4,
        )
        result = _one(evaluate_objectives([objective], trace_records=trace))
        assert result.status == STATUS_OK  # the leak is outside the target

    def test_worst_of_multiple_leaks_reported(self):
        trace = rss_samples(
            "node:slow-leak", [100 * MB + i * 10 * MB for i in range(8)]
        ) + rss_samples(
            "node:fast-leak", [100 * MB + i * 50 * MB for i in range(8)], pid=5678
        )
        result = _one(
            evaluate_objectives([self.leak_objective()], trace_records=trace)
        )
        assert result.violated
        assert "node:fast-leak" in result.detail
        assert "1 other span" in result.detail

    def test_cli_check_warn_only_and_exit_codes(self, tmp_path, capsys):
        from repro import cli

        trace_path = tmp_path / "trace.jsonl"
        leak = rss_samples(
            "node:leaky", [100 * MB + i * 20 * MB for i in range(8)]
        )
        trace_path.write_text("\n".join(json.dumps(r) for r in leak) + "\n")
        slo_path = tmp_path / "slo.json"
        slo_path.write_text(
            json.dumps(
                [{"name": "leak", "kind": "rss-growth",
                  "threshold": 32 * MB, "fraction": 4}]
            )
        )

        argv = ["slo", "check", "--trace", str(trace_path),
                "--slo-file", str(slo_path)]
        assert cli.main(argv) == 1
        out = capsys.readouterr().out
        assert "violated" in out and "node:leaky" in out

        assert cli.main(argv + ["--warn-only"]) == 0
        out = capsys.readouterr().out
        assert "warn-only" in out

    def test_cli_check_all_no_data_exits_zero(self, capsys):
        from repro import cli

        assert cli.main(["slo", "check"]) == 0
        out = capsys.readouterr().out
        assert "no-data" in out

    def test_cli_check_metrics_file(self, tmp_path, capsys):
        from repro import cli

        metrics = tmp_path / "metrics.txt"
        metrics.write_text(exposition_with_latencies("study", [120.0] * 20))
        assert cli.main(["slo", "check", "--metrics", str(metrics)]) == 1
        out = capsys.readouterr().out
        assert "serve-study-p99" in out and "violated" in out

    def test_cli_check_missing_metrics_file_fails_loudly(self, tmp_path):
        from repro import cli

        with pytest.raises(SystemExit, match="no metrics exposition"):
            cli.main(["slo", "check", "--metrics", str(tmp_path / "absent.txt")])

    def test_samples_attributed_via_span_records(self):
        # samples carrying span_id resolve through the trace's span records
        span = {
            "span_id": "s1", "name": "node:attributed",
            "start": 10.0, "end": 11.0, "pid": 1234,
        }
        samples = [
            {
                "kind": "resource", "pid": 1234, "t": 10.0 + 0.01 * i,
                "rss_bytes": 100 * MB + i * 20 * MB,
                "cpu_seconds": 0.0, "span_id": "s1",
            }
            for i in range(8)
        ]
        result = _one(
            evaluate_objectives(
                [self.leak_objective()], trace_records=[span] + samples
            )
        )
        assert result.violated
        assert "node:attributed" in result.detail
