"""The /proc resource sampler: records, attribution rollups, and the
never-fail contract under every /proc race we can simulate."""

import os
import time

import pytest

from repro import obs
from repro.obs import resources
from repro.obs.resources import (
    ResourceSample,
    ResourceSampler,
    ResourceUsage,
    child_pids,
    is_resource_record,
    proc_available,
    read_resource_sample,
    resource_records,
    rss_series_by_span,
    usage_by_phase,
    usage_by_span_name,
)

needs_proc = pytest.mark.skipif(
    not proc_available(), reason="no /proc on this platform"
)


class TestRecordShape:
    def test_round_trip(self):
        sample = ResourceSample(
            pid=7, t=1.5, rss_bytes=4096, cpu_seconds=0.25,
            read_bytes=10, write_bytes=20, span_id="s1", span_name="node:T1",
        )
        record = sample.to_record()
        assert record["kind"] == "resource"
        assert ResourceSample.from_record(record) == sample

    def test_optional_fields_omitted(self):
        record = ResourceSample(pid=1, t=0.0, rss_bytes=1, cpu_seconds=0.0).to_record()
        assert "read_bytes" not in record
        assert "span_id" not in record

    def test_is_resource_record_distinguishes_spans(self):
        assert is_resource_record({"kind": "resource"})
        assert not is_resource_record({"name": "x", "start": 0.0, "end": 1.0})

    def test_span_consumers_ignore_sample_records(self):
        """Mixed traces keep working in every span-only consumer."""
        span = {
            "name": "phase:a", "span_id": "s1", "parent_id": None,
            "trace_id": "t", "start": 0.0, "end": 1.0, "attrs": {},
        }
        sample = ResourceSample(pid=1, t=0.5, rss_bytes=1, cpu_seconds=0.0).to_record()
        summary = obs.summarize_trace([span, sample])
        assert summary.spans == 1
        assert obs.fold_stacks([span, sample]) == [(("phase:a",), 1.0)]
        document = obs.chrome_trace([span, sample])
        events = document["traceEvents"]
        assert len([e for e in events if e.get("ph") == "X"]) == 1


@needs_proc
class TestProcReaders:
    def test_read_own_sample(self):
        sample = read_resource_sample()
        assert sample is not None
        assert sample.pid == os.getpid()
        assert sample.rss_bytes > 0
        assert sample.cpu_seconds >= 0.0

    def test_vanished_pid_returns_none(self):
        assert read_resource_sample(2 ** 22 + 12345) is None

    def test_child_pids_tolerates_missing(self):
        assert child_pids(2 ** 22 + 12345) == []

    def test_attribution_tags_open_span(self):
        sink = obs.MemorySink()
        tracer = obs.Tracer(sink)
        obs.install(tracer)
        try:
            with obs.span("campaign"):
                with obs.span("unit:replay"):
                    sample = read_resource_sample(attribute=True)
        finally:
            obs.uninstall()
        assert sample is not None
        assert sample.span_name == "unit:replay"


class TestConfiguration:
    @pytest.fixture(autouse=True)
    def _reset(self, monkeypatch):
        monkeypatch.delenv(resources.SAMPLE_ENV, raising=False)
        resources.configure(None)
        yield
        resources.configure(None)

    def test_off_by_default(self):
        assert resources.configured_interval() is None
        assert not resources.sampling_enabled()

    def test_explicit_configure_wins(self, monkeypatch):
        monkeypatch.setenv(resources.SAMPLE_ENV, "0")
        resources.configure(0.5)
        assert resources.configured_interval() == 0.5

    @pytest.mark.parametrize("raw", ["", "0", "false", "off", "no", "bogus", "-1"])
    def test_env_disabled_values(self, monkeypatch, raw):
        monkeypatch.setenv(resources.SAMPLE_ENV, raw)
        assert resources.configured_interval() is None

    @pytest.mark.parametrize("raw", ["1", "true", "yes", "on"])
    def test_env_enabled_default(self, monkeypatch, raw):
        monkeypatch.setenv(resources.SAMPLE_ENV, raw)
        assert resources.configured_interval() == resources.DEFAULT_INTERVAL

    def test_env_float_interval(self, monkeypatch):
        monkeypatch.setenv(resources.SAMPLE_ENV, "0.25")
        assert resources.configured_interval() == 0.25

    def test_configure_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            resources.configure(0.0)


@needs_proc
class TestSampler:
    def test_samples_accumulate_and_drain(self):
        with ResourceSampler(0.005) as sampler:
            time.sleep(0.05)
        records = sampler.take()
        assert records, "expected at least one sample in 50ms at 5ms interval"
        assert all(r["kind"] == "resource" for r in records)
        assert sampler.take() == []  # drained
        assert sampler.peak_rss_bytes() > 0
        assert sampler.rss_log()  # survives draining

    def test_stop_takes_final_sample(self):
        sampler = ResourceSampler(60.0).start()  # interval >> test duration
        sampler.stop()
        assert len(sampler.take()) == 1

    def test_active_sampler_registration(self):
        assert resources.active_sampler() is None
        sampler = ResourceSampler(0.01).start()
        try:
            assert resources.active_sampler() is sampler
        finally:
            sampler.stop()
        assert resources.active_sampler() is None

    def test_peak_rss_since_window(self):
        sampler = ResourceSampler(0.005).start()
        time.sleep(0.03)
        mark = time.monotonic()
        time.sleep(0.03)
        sampler.stop()
        assert sampler.peak_rss_since(mark) > 0
        assert sampler.peak_rss_since(time.monotonic() + 60.0) is None

    def test_reader_failure_counts_never_raises(self, monkeypatch):
        monkeypatch.setattr(
            resources, "read_resource_sample",
            lambda *a, **k: (_ for _ in ()).throw(RuntimeError("proc exploded")),
        )
        sampler = ResourceSampler(0.005).start()
        time.sleep(0.03)
        sampler.stop()
        assert sampler.take() == []
        assert sampler.errors > 0

    def test_include_children_samples_self_without_children(self):
        with ResourceSampler(0.005, include_children=True) as sampler:
            time.sleep(0.02)
        pids = {r["pid"] for r in sampler.take()}
        assert os.getpid() in pids


def _mixed_trace():
    """Two spans, two pids, samples with cumulative cpu/io counters."""
    spans = [
        {"name": "node:T1", "span_id": "a", "trace_id": "t",
         "parent_id": None, "start": 0.0, "end": 2.0, "attrs": {}},
        {"name": "node:T2", "span_id": "b", "trace_id": "t",
         "parent_id": None, "start": 2.0, "end": 4.0, "attrs": {}},
    ]
    def sample(t, pid, rss, cpu, span_id, read=None):
        record = ResourceSample(
            pid=pid, t=t, rss_bytes=rss, cpu_seconds=cpu,
            read_bytes=read, span_id=span_id,
        ).to_record()
        return record
    samples = [
        sample(0.5, 10, 100, 1.0, "a", read=0),
        sample(1.5, 10, 300, 1.5, "a", read=4096),
        sample(2.5, 10, 200, 1.7, "b", read=4096),
        sample(3.5, 10, 250, 2.0, "b", read=8192),
        # second pid entirely inside T1; no io counters
        sample(0.7, 11, 900, 0.2, "a"),
        sample(1.7, 11, 950, 0.5, "a"),
    ]
    return spans + samples


class TestRollups:
    def test_usage_by_span_name(self):
        usage = usage_by_span_name(_mixed_trace())
        t1, t2 = usage["node:T1"], usage["node:T2"]
        assert t1.samples == 4 and t2.samples == 2
        assert t1.peak_rss_bytes == 950  # max across both pids
        assert t2.peak_rss_bytes == 250
        # cpu deltas credited to the later sample's span
        assert t1.cpu_seconds == pytest.approx(0.5 + 0.3)  # pid10 + pid11
        assert t2.cpu_seconds == pytest.approx(0.2 + 0.3)
        assert t1.read_bytes == 4096
        assert t2.read_bytes == 4096

    def test_usage_by_phase_merges_on_prefix(self):
        usage = usage_by_phase(_mixed_trace())
        assert set(usage) == {"node"}
        assert usage["node"].samples == 6
        assert usage["node"].peak_rss_bytes == 950

    def test_unattributed_samples_grouped(self):
        record = ResourceSample(pid=1, t=0.0, rss_bytes=5, cpu_seconds=0.0).to_record()
        usage = usage_by_span_name([record])
        assert usage["(unattributed)"].samples == 1

    def test_span_name_fallback_when_id_unknown(self):
        record = ResourceSample(
            pid=1, t=0.0, rss_bytes=5, cpu_seconds=0.0,
            span_id="gone", span_name="unit:replay",
        ).to_record()
        assert set(usage_by_span_name([record])) == {"unit:replay"}

    def test_cpu_delta_never_negative(self):
        records = [
            ResourceSample(pid=1, t=0.0, rss_bytes=1, cpu_seconds=5.0).to_record(),
            ResourceSample(pid=1, t=1.0, rss_bytes=1, cpu_seconds=4.0).to_record(),
        ]
        usage = usage_by_span_name(records)
        assert usage["(unattributed)"].cpu_seconds == 0.0

    def test_rss_series_by_span_sorted(self):
        series = rss_series_by_span(_mixed_trace())
        for values in series.values():
            assert values == sorted(values)
        assert [rss for _, rss in series["node:T1"]] == [100, 900, 300, 950]

    def test_resource_records_filter(self):
        trace = _mixed_trace()
        assert len(resource_records(trace)) == 6
