"""Deterministic metrics merging, the fix for order-dependent gauges."""

import itertools

from repro.obs import LOCAL_SHARD, MetricsRegistry


def _shard_snapshots():
    """Three shard registries with distinct gauge values."""
    snapshots = []
    for index, utilization in ((0, 0.25), (1, 0.75), (2, 0.5)):
        shard = MetricsRegistry(shard=f"shard{index:04d}")
        shard.count("units.executed", index + 1)
        shard.observe("unit.wall", 0.010 * (index + 1))
        shard.gauge("workers.utilization", utilization)
        snapshots.append(shard.snapshot())
    return snapshots


def test_merge_is_order_independent():
    snapshots = _shard_snapshots()
    baselines = None
    for permutation in itertools.permutations(snapshots):
        merged = MetricsRegistry()
        for snapshot in permutation:
            merged.merge(snapshot)
        wall = merged.timer("unit.wall")
        observed = (
            merged.counter("units.executed"),
            # Round the float sum: addition order may differ in the last ulp.
            (wall.count, round(wall.total, 9), wall.min, wall.max),
            merged.gauge_value("workers.utilization"),
            merged.gauge_max("workers.utilization"),
        )
        if baselines is None:
            baselines = observed
        assert observed == baselines
    assert baselines[0] == 6
    assert baselines[1][0] == 3
    # Last-by-shard-id: shard0002 wrote 0.5; keyed max is shard0001's 0.75.
    assert baselines[2] == 0.5
    assert baselines[3] == 0.75


def test_gauge_value_is_last_write_within_a_shard():
    registry = MetricsRegistry()
    registry.gauge("depth", 3.0)
    registry.gauge("depth", 7.0)
    assert registry.gauge_value("depth") == 7.0
    assert registry.gauge_shards("depth") == {LOCAL_SHARD: 7.0}


def test_merge_accepts_legacy_snapshot_without_gauge_shards():
    legacy = {
        "counters": {"units.executed": 2},
        "timers": {"unit.wall": {"count": 1, "total": 0.5, "min": 0.5, "max": 0.5}},
        "gauges": {"workers.count": 4.0},
    }
    merged = MetricsRegistry()
    merged.merge(legacy)
    assert merged.counter("units.executed") == 2
    assert merged.gauge_value("workers.count") == 4.0
    assert merged.gauge_shards("workers.count") == {LOCAL_SHARD: 4.0}


def test_timer_stats_combine_across_merges():
    a, b = MetricsRegistry(shard="a"), MetricsRegistry(shard="b")
    a.observe("wall", 0.2)
    b.observe("wall", 0.6)
    b.observe("wall", 0.4)
    merged = MetricsRegistry()
    merged.merge(a.snapshot())
    merged.merge(b.snapshot())
    stats = merged.timer("wall")
    assert stats.count == 3
    assert stats.min == 0.2
    assert stats.max == 0.6
    assert abs(stats.total - 1.2) < 1e-9
    assert abs(stats.mean - 0.4) < 1e-9


def test_snapshot_round_trips_through_merge():
    source = MetricsRegistry(shard="shard0042")
    source.count("hits", 5)
    source.gauge("ratio", 0.9)
    copy = MetricsRegistry()
    copy.merge(source.snapshot())
    assert copy.snapshot()["counters"] == {"hits": 5}
    assert copy.gauge_shards("ratio") == {"shard0042": 0.9}
