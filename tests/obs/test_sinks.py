"""Sink behaviour, especially crash-truncation tolerance of JSONL traces."""

import json

import pytest

from repro.obs import JsonlSink, MemorySink, read_trace


def test_jsonl_sink_round_trips(tmp_path):
    path = tmp_path / "trace.jsonl"
    sink = JsonlSink(path)
    sink.emit({"name": "a", "start": 1.0})
    sink.emit({"name": "b", "start": 2.0})
    sink.close()
    assert sink.emitted == 2
    records = read_trace(path)
    assert [r["name"] for r in records] == ["a", "b"]


def test_jsonl_sink_creates_parent_directories(tmp_path):
    path = tmp_path / "deep" / "nested" / "trace.jsonl"
    sink = JsonlSink(path)
    sink.emit({"name": "x"})
    sink.close()
    assert read_trace(path) == [{"name": "x"}]


def test_read_trace_tolerates_truncated_tail(tmp_path):
    """A crashed writer leaves a partial last line; reads keep the prefix."""
    path = tmp_path / "trace.jsonl"
    sink = JsonlSink(path)
    for index in range(3):
        sink.emit({"name": f"span{index}"})
    sink.close()
    intact = path.read_text(encoding="utf-8")
    # Chop the last line mid-record, as a crash mid-write would.
    path.write_text(intact[: intact.rfind('"name"') + 3], encoding="utf-8")
    records = read_trace(path)
    assert [r["name"] for r in records] == ["span0", "span1"]


def test_read_trace_stops_at_first_corrupt_line(tmp_path):
    path = tmp_path / "trace.jsonl"
    lines = [json.dumps({"name": "good"}), "{not json", json.dumps({"name": "after"})]
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    assert [r["name"] for r in read_trace(path)] == ["good"]


def test_read_trace_missing_file_raises(tmp_path):
    with pytest.raises(FileNotFoundError):
        read_trace(tmp_path / "nope.jsonl")


def test_memory_sink_accumulates_in_order():
    sink = MemorySink()
    sink.emit({"n": 1})
    sink.emit({"n": 2})
    sink.close()
    assert [r["n"] for r in sink.records] == [1, 2]
