"""The example scripts must stay runnable (they are documentation)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "mine_and_classify.py",
    "recovery_model_sensitivity.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs_cleanly(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip()


def test_quickstart_prints_headline_numbers():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert "72%-87%" in result.stdout
    assert "5%-14%" in result.stdout

def test_mine_and_classify_reproduces_tables():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "mine_and_classify.py")],
        capture_output=True,
        text=True,
        timeout=240,
    )
    for count in ("36", "39", "38"):
        assert count in result.stdout


def test_all_examples_exist():
    expected = {
        "quickstart.py",
        "mine_and_classify.py",
        "recovery_replay.py",
        "recovery_model_sensitivity.py",
        "availability_simulation.py",
        "heisenbug_sweeps.py",
        "rejuvenation_schedule.py",
        "lee_iyer_explained.py",
    }
    present = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert expected <= present


def test_lee_iyer_example_runs():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "lee_iyer_explained.py")],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr
    assert "0.29" in result.stdout
    assert "90%" in result.stdout
