"""End-to-end integration: raw archives -> mining -> classification -> tables.

This is the whole paper in one test module: the exact Tables 1-3 counts
must emerge from the raw serialized archives with no curated evidence
anywhere in the path.
"""

import pytest

from repro.analysis.aggregate import aggregate_summary
from repro.analysis.tables import classify_and_tabulate
from repro.bugdb import debbugs, gnats, mbox
from repro.bugdb.enums import Application, FaultClass
from repro.corpus.render import apache_raw_archive, gnome_raw_archive, mysql_raw_archive
from repro.mining import GNOME_STUDY_COMPONENTS, mine_apache, mine_gnome, mine_mysql

EI = FaultClass.ENV_INDEPENDENT
EDN = FaultClass.ENV_DEP_NONTRANSIENT
EDT = FaultClass.ENV_DEP_TRANSIENT


class TestFullPipeline:
    def test_apache_table_1_from_raw_archive(self, apache):
        archive = apache_raw_archive(apache, total_reports=600)
        mined = mine_apache(gnats.parse_archive(archive))
        table = classify_and_tabulate(Application.APACHE, mined.items)
        assert table.counts == {EI: 36, EDN: 7, EDT: 7}

    def test_gnome_table_2_from_raw_archive(self, gnome):
        archive = gnome_raw_archive(gnome, study_components=GNOME_STUDY_COMPONENTS)
        mined = mine_gnome(debbugs.parse_archive(archive))
        table = classify_and_tabulate(Application.GNOME, mined.items)
        assert table.counts == {EI: 39, EDN: 3, EDT: 3}

    def test_mysql_table_3_from_raw_archive(self, mysql):
        archive = mysql_raw_archive(mysql, total_messages=2500)
        mined = mine_mysql(mbox.parse_archive(archive))
        table = classify_and_tabulate(Application.MYSQL, mined.items)
        assert table.counts == {EI: 38, EDN: 4, EDT: 2}

    @pytest.mark.parametrize("seed", [1, 42, 1999])
    def test_pipeline_robust_to_noise_seed(self, apache, seed):
        archive = apache_raw_archive(apache, total_reports=400, seed=seed)
        mined = mine_apache(gnats.parse_archive(archive))
        assert len(mined.items) == 50

    def test_aggregate_numbers_from_curated_study(self, study):
        summary = aggregate_summary(study)
        assert summary.total_faults == 139
        assert summary.counts == {EI: 113, EDN: 14, EDT: 12}


class TestSeedRobustness:
    """The pipeline's exactness must not depend on the noise seed."""

    @pytest.mark.parametrize("seed", [7, 2000])
    def test_gnome_robust_to_noise_seed(self, gnome, seed):
        archive = gnome_raw_archive(
            gnome, seed=seed, study_components=GNOME_STUDY_COMPONENTS
        )
        mined = mine_gnome(debbugs.parse_archive(archive))
        table = classify_and_tabulate(Application.GNOME, mined.items)
        assert table.counts == {EI: 39, EDN: 3, EDT: 3}

    @pytest.mark.parametrize("seed", [7, 2000])
    def test_mysql_robust_to_noise_seed(self, mysql, seed):
        archive = mysql_raw_archive(mysql, seed=seed, total_messages=1500)
        mined = mine_mysql(mbox.parse_archive(archive))
        table = classify_and_tabulate(Application.MYSQL, mined.items)
        assert table.counts == {EI: 38, EDN: 4, EDT: 2}
