"""Integration: generated load, naturally arising faults, and recovery.

These tests tie the substrate layers together without any arm()
shortcuts: the load generator drives the mini HTTP server through the
event queue until an environmental condition arises *from the load
itself*, and a recovery technique either survives it or doesn't —
according to the taxonomy.
"""

import datetime

import pytest

from repro.apps.faults import InjectedDefect
from repro.apps.httpserver import MiniHttpServer
from repro.apps.workload import Workload
from repro.bugdb.enums import Application, FaultClass, Symptom, TriggerKind
from repro.corpus.studyspec import StudyFault
from repro.envmodel.environment import Environment, EnvironmentSpec
from repro.envmodel.loadgen import LoadProfile, generate_load
from repro.errors import ApplicationCrash, RecoveryExhausted
from repro.recovery import CheckpointRollback, ProcessPairs


def make_fault(trigger, fault_class, op):
    return StudyFault(
        fault_id=f"LOAD-{trigger.value}",
        application=Application.APACHE,
        component="core",
        version="1.3.4",
        date=datetime.date(1999, 1, 1),
        synopsis="load-driven fault",
        description="x",
        how_to_repeat="x",
        fix_summary="",
        symptom=Symptom.CRASH,
        trigger=trigger,
        fault_class=fault_class,
        workload_op=op,
    )


class TestLoadDrivenFaults:
    def test_fork_per_request_exhausts_process_table_under_load(self):
        """Peak load fills the process table; the defect then fires on
        its own, with no artificial arming."""
        env = Environment(spec=EnvironmentSpec(process_slots=32))
        server = MiniHttpServer(env)
        fault = make_fault(
            TriggerKind.PROCESS_TABLE_FULL, FaultClass.ENV_DEP_TRANSIENT, "fork-child"
        )
        server.injector.inject(InjectedDefect(fault))

        result = generate_load(
            server,
            "fork-child",
            LoadProfile(requests_per_second=10, duration_seconds=10),
        )
        # The first 32 forks succeed; every later request finds the table
        # full and crashes.
        assert result.failures == result.requests_issued - 32

    def test_recovery_under_load_frees_the_table(self):
        env = Environment(spec=EnvironmentSpec(process_slots=16))
        server = MiniHttpServer(env)
        fault = make_fault(
            TriggerKind.PROCESS_TABLE_FULL, FaultClass.ENV_DEP_TRANSIENT, "fork-child"
        )
        server.injector.inject(InjectedDefect(fault))
        technique = ProcessPairs()
        technique.prepare(server)

        for _ in range(16):
            server.run_op("fork-child")
        with pytest.raises(ApplicationCrash):
            server.run_op("fork-child")
        technique.recover(server, attempt=1)
        server.run_op("fork-child")  # slots freed by the failover kill

    def test_log_growth_under_load_hits_the_file_limit(self):
        """Sustained serving fills the access log to the platform's
        per-file limit; requests then fail environmentally."""
        env = Environment(
            spec=EnvironmentSpec(max_file_bytes=120 * 50, disk_capacity_bytes=10**9)
        )
        server = MiniHttpServer(env)
        served = 0
        with pytest.raises(Exception):
            for _ in range(100):
                server.handle_request("/index.html")
                served += 1
        assert served == 50  # exactly the limit's worth of log records


class TestRunWithRecovery:
    def _crashing_server(self, fault_class, trigger, *, arm=True):
        env = Environment(spec=EnvironmentSpec(process_slots=8))
        env.dns.add_record("client.example.net", "10.0.0.99")
        server = MiniHttpServer(env)
        fault = make_fault(trigger, fault_class, "the-op")
        defect = InjectedDefect(fault)
        server.injector.inject(defect)
        if arm:
            defect.arm(env, server)
        return server

    def test_transient_fault_completes_with_one_recovery(self):
        server = self._crashing_server(
            FaultClass.ENV_DEP_TRANSIENT, TriggerKind.PROCESS_TABLE_FULL
        )
        technique = CheckpointRollback()
        attempts = technique.run_with_recovery(server, Workload(ops=("warm", "the-op")))
        assert attempts == 1

    def test_clean_workload_needs_no_recovery(self):
        server = self._crashing_server(
            FaultClass.ENV_DEP_TRANSIENT, TriggerKind.PROCESS_TABLE_FULL, arm=False
        )
        technique = CheckpointRollback()
        # Timing defect families are armed implicitly; a resource defect
        # whose condition never arises stays silent.
        assert technique.run_with_recovery(server, Workload(ops=("warm",))) == 0

    def test_nontransient_fault_exhausts_recovery(self):
        server = self._crashing_server(
            FaultClass.ENV_DEP_NONTRANSIENT, TriggerKind.DISK_FULL
        )
        technique = CheckpointRollback(max_attempts=2)
        with pytest.raises(RecoveryExhausted) as excinfo:
            technique.run_with_recovery(server, Workload(ops=("the-op",)))
        assert excinfo.value.attempts == 2

    def test_on_recovery_callback_invoked(self):
        server = self._crashing_server(
            FaultClass.ENV_DEP_TRANSIENT, TriggerKind.DNS_ERROR
        )
        attempts_seen = []
        technique = CheckpointRollback()
        technique.run_with_recovery(
            server, Workload(ops=("the-op",)), on_recovery=attempts_seen.append
        )
        assert attempts_seen == [1]
