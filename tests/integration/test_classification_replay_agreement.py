"""Cross-validation: the classifier's verdicts agree with the replay.

The paper reasons *from bug reports* about what generic recovery would
do; our replay driver *executes* generic recovery against injected
faults.  The two must agree: a fault classified transient should survive
generic recovery in the replay, and vice versa.  This is the paper's
proposed "end-to-end check on whether the bug report had a complete list
of environmental dependencies" (Section 5.4), automated.
"""

import pytest

from repro.bugdb.enums import FaultClass, TriggerKind
from repro.classify.recovery_model import ELASTIC_ENVIRONMENT, RESTART_FRESH
from repro.classify.rules import RuleClassifier
from repro.recovery import CheckpointRollback, RestartFresh, replay_fault

TIMING_TRIGGERS = {
    TriggerKind.RACE_CONDITION,
    TriggerKind.SIGNAL_TIMING,
    TriggerKind.WORKLOAD_TIMING,
    TriggerKind.UNKNOWN_TRANSIENT,
}


class TestClassifierPredictsReplay:
    def test_paper_default_agreement(self, study):
        """Classification under the paper model predicts rollback survival."""
        classifier = RuleClassifier()
        for fault in study.all_faults():
            predicted = classifier.classify_evidence(fault.evidence)
            outcome = replay_fault(fault, CheckpointRollback(max_attempts=3))
            if predicted.fault_class is FaultClass.ENV_DEP_TRANSIENT:
                if fault.trigger not in TIMING_TRIGGERS:
                    # Deterministic environmental repairs always work.
                    assert outcome.survived, fault.fault_id
            else:
                assert not outcome.survived, fault.fault_id

    def test_timing_faults_usually_survive_with_budget(self, study):
        timing_faults = [
            fault for fault in study.all_faults() if fault.trigger in TIMING_TRIGGERS
        ]
        survived = sum(
            replay_fault(fault, CheckpointRollback(max_attempts=4)).survived
            for fault in timing_faults
        )
        assert survived >= 0.75 * len(timing_faults)

    def test_restart_fresh_model_agreement(self, study):
        """Reclassifying under RESTART_FRESH predicts RestartFresh replay."""
        classifier = RuleClassifier(RESTART_FRESH)
        for fault in study.all_faults():
            predicted = classifier.classify_evidence(fault.evidence)
            outcome = replay_fault(fault, RestartFresh(max_attempts=3))
            if predicted.fault_class is FaultClass.ENV_INDEPENDENT:
                assert not outcome.survived, fault.fault_id
            elif (
                predicted.fault_class is FaultClass.ENV_DEP_TRANSIENT
                and fault.trigger not in TIMING_TRIGGERS
            ):
                assert outcome.survived, fault.fault_id
            elif predicted.fault_class is FaultClass.ENV_DEP_NONTRANSIENT:
                assert not outcome.survived, fault.fault_id

    def test_elastic_model_agreement(self, study):
        """The elastic environment makes storage faults survivable."""
        classifier = RuleClassifier(ELASTIC_ENVIRONMENT)
        storage_triggers = {
            TriggerKind.DISK_FULL,
            TriggerKind.FILE_SIZE_LIMIT,
            TriggerKind.DISK_CACHE_FULL,
            TriggerKind.FILE_DESCRIPTOR_EXHAUSTION,
        }
        for fault in study.all_faults():
            if fault.trigger not in storage_triggers:
                continue
            predicted = classifier.classify_evidence(fault.evidence)
            assert predicted.fault_class is FaultClass.ENV_DEP_TRANSIENT
            outcome = replay_fault(
                fault, CheckpointRollback(ELASTIC_ENVIRONMENT, max_attempts=2)
            )
            assert outcome.survived, fault.fault_id
