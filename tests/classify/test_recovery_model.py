"""Tests for the parameterised recovery model."""

import pytest

from repro.bugdb.enums import TriggerKind
from repro.classify.recovery_model import (
    ELASTIC_ENVIRONMENT,
    PAPER_DEFAULT,
    RESTART_FRESH,
    RecoveryModel,
)

ALWAYS_TRANSIENT = (
    TriggerKind.RACE_CONDITION,
    TriggerKind.SIGNAL_TIMING,
    TriggerKind.WORKLOAD_TIMING,
    TriggerKind.ENTROPY_EXHAUSTION,
    TriggerKind.UNKNOWN_TRANSIENT,
)

ALWAYS_NONTRANSIENT = (
    TriggerKind.HARDWARE_REMOVAL,
    TriggerKind.DNS_MISCONFIGURED,
    TriggerKind.CORRUPT_EXTERNAL_STATE,
)


class TestPaperDefault:
    @pytest.mark.parametrize("trigger", ALWAYS_TRANSIENT)
    def test_timing_triggers_clear(self, trigger):
        assert PAPER_DEFAULT.condition_clears_on_retry(trigger)

    @pytest.mark.parametrize(
        "trigger",
        [
            TriggerKind.RESOURCE_LEAK,
            TriggerKind.FILE_DESCRIPTOR_EXHAUSTION,
            TriggerKind.DISK_FULL,
            TriggerKind.FILE_SIZE_LIMIT,
            TriggerKind.DISK_CACHE_FULL,
            TriggerKind.NETWORK_RESOURCE_EXHAUSTION,
            TriggerKind.HOST_CONFIG_CHANGE,
        ]
        + list(ALWAYS_NONTRANSIENT),
    )
    def test_persistent_conditions_do_not_clear(self, trigger):
        assert not PAPER_DEFAULT.condition_clears_on_retry(trigger)

    @pytest.mark.parametrize(
        "trigger",
        [TriggerKind.PROCESS_TABLE_FULL, TriggerKind.PORT_IN_USE],
    )
    def test_process_kill_clears_process_conditions(self, trigger):
        assert PAPER_DEFAULT.condition_clears_on_retry(trigger)

    @pytest.mark.parametrize(
        "trigger",
        [TriggerKind.DNS_ERROR, TriggerKind.DNS_SLOW, TriggerKind.NETWORK_SLOW],
    )
    def test_external_services_expected_repaired(self, trigger):
        assert PAPER_DEFAULT.condition_clears_on_retry(trigger)

    def test_no_trigger_is_rejected(self):
        with pytest.raises(ValueError, match="no trigger condition"):
            PAPER_DEFAULT.condition_clears_on_retry(TriggerKind.NONE)


class TestModelVariants:
    def test_restart_fresh_clears_application_leaks(self):
        assert RESTART_FRESH.condition_clears_on_retry(TriggerKind.RESOURCE_LEAK)
        assert RESTART_FRESH.condition_clears_on_retry(TriggerKind.FILE_DESCRIPTOR_EXHAUSTION)
        assert RESTART_FRESH.condition_clears_on_retry(TriggerKind.NETWORK_RESOURCE_EXHAUSTION)

    def test_restart_fresh_does_not_fix_the_disk(self):
        assert not RESTART_FRESH.condition_clears_on_retry(TriggerKind.DISK_FULL)

    def test_restart_fresh_adopts_a_changed_hostname(self):
        # The stale cached identity is application state; a fresh start
        # authenticates against the new name.
        assert RESTART_FRESH.condition_clears_on_retry(TriggerKind.HOST_CONFIG_CHANGE)
        assert not PAPER_DEFAULT.condition_clears_on_retry(TriggerKind.HOST_CONFIG_CHANGE)

    def test_elastic_environment_fixes_storage(self):
        for trigger in (
            TriggerKind.DISK_FULL,
            TriggerKind.FILE_SIZE_LIMIT,
            TriggerKind.DISK_CACHE_FULL,
        ):
            assert ELASTIC_ENVIRONMENT.condition_clears_on_retry(trigger)

    def test_elastic_environment_reclaims_descriptors(self):
        assert ELASTIC_ENVIRONMENT.condition_clears_on_retry(
            TriggerKind.FILE_DESCRIPTOR_EXHAUSTION
        )

    def test_elastic_environment_keeps_state_leaks_nontransient(self):
        # An in-memory leak lives in checkpointed state; elasticity of the
        # environment does not help.
        assert not ELASTIC_ENVIRONMENT.condition_clears_on_retry(TriggerKind.RESOURCE_LEAK)

    def test_no_process_kill_makes_process_conditions_persist(self):
        model = RecoveryModel(kills_application_processes=False)
        assert not model.condition_clears_on_retry(TriggerKind.PROCESS_TABLE_FULL)
        assert not model.condition_clears_on_retry(TriggerKind.PORT_IN_USE)

    def test_no_external_repair_makes_dns_persist(self):
        model = RecoveryModel(expects_external_repair=False)
        assert not model.condition_clears_on_retry(TriggerKind.DNS_ERROR)
        assert not model.condition_clears_on_retry(TriggerKind.NETWORK_SLOW)

    @pytest.mark.parametrize("trigger", ALWAYS_NONTRANSIENT)
    def test_admin_conditions_never_clear_under_any_model(self, trigger):
        generous = RecoveryModel(
            preserves_all_state=False,
            auto_extends_storage=True,
            reclaims_leaked_os_resources=True,
        )
        assert not generous.condition_clears_on_retry(trigger)

    @pytest.mark.parametrize("trigger", ALWAYS_TRANSIENT)
    def test_timing_conditions_clear_under_any_model(self, trigger):
        stingy = RecoveryModel(
            kills_application_processes=False,
            expects_external_repair=False,
        )
        assert stingy.condition_clears_on_retry(trigger)

    def test_model_is_frozen(self):
        with pytest.raises(Exception):
            PAPER_DEFAULT.auto_extends_storage = True
