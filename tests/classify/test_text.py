"""Tests for the end-to-end text classifier."""

import datetime

from repro.bugdb.enums import Application, FaultClass, Severity, Symptom, TriggerKind
from repro.bugdb.model import BugReport, TriggerEvidence
from repro.classify.recovery_model import ELASTIC_ENVIRONMENT, PAPER_DEFAULT
from repro.classify.text import TextClassifier


def make_report(description, *, evidence=None):
    return BugReport(
        report_id="X-1",
        application=Application.APACHE,
        component="core",
        version="1.3.4",
        date=datetime.date(1999, 1, 1),
        reporter="user@example.net",
        synopsis="a failure",
        severity=Severity.CRITICAL,
        symptom=Symptom.CRASH,
        description=description,
        evidence=evidence,
    )


class TestTextClassifier:
    def test_classifies_from_text_when_no_evidence(self):
        report = make_report("a race condition between two threads")
        result = TextClassifier().classify_report(report)
        assert result.fault_class is FaultClass.ENV_DEP_TRANSIENT
        assert result.trigger is TriggerKind.RACE_CONDITION

    def test_prefers_curated_evidence_over_text(self):
        # The text says race, but the curated evidence says disk-full;
        # curated ground truth wins.
        report = make_report(
            "a race condition between two threads",
            evidence=TriggerEvidence(trigger=TriggerKind.DISK_FULL),
        )
        result = TextClassifier().classify_report(report)
        assert result.fault_class is FaultClass.ENV_DEP_NONTRANSIENT

    def test_plain_bug_is_environment_independent(self):
        report = make_report("missing initialization in the request path")
        result = TextClassifier().classify_report(report)
        assert result.fault_class is FaultClass.ENV_INDEPENDENT

    def test_recovery_model_is_carried_through(self):
        report = make_report("a full file system blocks all writes")
        default = TextClassifier(PAPER_DEFAULT).classify_report(report)
        elastic = TextClassifier(ELASTIC_ENVIRONMENT).classify_report(report)
        assert default.fault_class is FaultClass.ENV_DEP_NONTRANSIENT
        assert elastic.fault_class is FaultClass.ENV_DEP_TRANSIENT

    def test_recovery_model_property(self):
        assert TextClassifier(ELASTIC_ENVIRONMENT).recovery_model is ELASTIC_ENVIRONMENT

    def test_classify_all_preserves_order(self):
        reports = [
            make_report("a race condition between threads"),
            make_report("missing initialization"),
            make_report("a full file system"),
        ]
        results = TextClassifier().classify_all(reports)
        assert [r.fault_class for r in results] == [
            FaultClass.ENV_DEP_TRANSIENT,
            FaultClass.ENV_INDEPENDENT,
            FaultClass.ENV_DEP_NONTRANSIENT,
        ]


class TestClassifierOnCuratedCorpora:
    def test_text_classifier_recovers_all_ground_truth(self, study):
        classifier = TextClassifier()
        for corpus in study.corpora.values():
            truth = corpus.ground_truth()
            for report in corpus.to_reports(attach_evidence=False):
                predicted = classifier.classify_report(report).fault_class
                assert predicted is truth[report.report_id], report.report_id
