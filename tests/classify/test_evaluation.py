"""Tests for classifier evaluation (confusion matrix, accuracy)."""

import datetime

from repro.bugdb.enums import Application, FaultClass, Severity, Symptom
from repro.bugdb.model import BugReport
from repro.classify.evaluation import (
    ConfusionMatrix,
    class_distribution,
    evaluate_classifier,
)
from repro.classify.rules import Classification
from repro.bugdb.enums import TriggerKind

EI = FaultClass.ENV_INDEPENDENT
EDN = FaultClass.ENV_DEP_NONTRANSIENT
EDT = FaultClass.ENV_DEP_TRANSIENT


class StubClassifier:
    """Predicts a fixed class per report id."""

    def __init__(self, predictions):
        self.predictions = predictions

    def classify_report(self, report):
        return Classification(
            fault_class=self.predictions[report.report_id],
            trigger=TriggerKind.NONE,
            rationale="stub",
        )


def make_report(report_id):
    return BugReport(
        report_id=report_id,
        application=Application.APACHE,
        component="core",
        version="1.3.4",
        date=datetime.date(1999, 1, 1),
        reporter="u@x",
        synopsis=report_id,
        severity=Severity.CRITICAL,
        symptom=Symptom.CRASH,
    )


class TestConfusionMatrix:
    def test_perfect_accuracy(self):
        matrix = ConfusionMatrix(counts={(EI, EI): 10, (EDT, EDT): 5})
        assert matrix.accuracy == 1.0
        assert matrix.misclassified() == 0
        assert matrix.total == 15

    def test_mixed_accuracy(self):
        matrix = ConfusionMatrix(counts={(EI, EI): 8, (EI, EDT): 2})
        assert matrix.accuracy == 0.8
        assert matrix.misclassified() == 2

    def test_empty_matrix(self):
        matrix = ConfusionMatrix(counts={})
        assert matrix.accuracy == 0.0
        assert matrix.total == 0

    def test_precision_and_recall(self):
        matrix = ConfusionMatrix(counts={(EI, EI): 8, (EDN, EI): 2, (EDN, EDN): 3})
        assert matrix.precision(EI) == 8 / 10
        assert matrix.recall(EI) == 1.0
        assert matrix.precision(EDN) == 1.0
        assert matrix.recall(EDN) == 3 / 5

    def test_precision_of_never_predicted_class_is_one(self):
        matrix = ConfusionMatrix(counts={(EI, EI): 5})
        assert matrix.precision(EDT) == 1.0

    def test_recall_of_absent_class_is_one(self):
        matrix = ConfusionMatrix(counts={(EI, EI): 5})
        assert matrix.recall(EDT) == 1.0


class TestEvaluateClassifier:
    def test_counts_truth_vs_prediction(self):
        reports = [make_report("a"), make_report("b"), make_report("c")]
        truth = {"a": EI, "b": EDN, "c": EDT}
        classifier = StubClassifier({"a": EI, "b": EDT, "c": EDT})
        matrix = evaluate_classifier(classifier, reports, truth)
        assert matrix.counts[(EI, EI)] == 1
        assert matrix.counts[(EDN, EDT)] == 1
        assert matrix.counts[(EDT, EDT)] == 1
        assert matrix.accuracy == 2 / 3

    def test_reports_without_ground_truth_are_skipped(self):
        reports = [make_report("a"), make_report("noise")]
        classifier = StubClassifier({"a": EI, "noise": EI})
        matrix = evaluate_classifier(classifier, reports, {"a": EI})
        assert matrix.total == 1


class TestClassDistribution:
    def test_zero_filled(self):
        distribution = class_distribution([])
        assert distribution == {EI: 0, EDN: 0, EDT: 0}

    def test_counts(self):
        classifications = [
            Classification(fault_class=EI, trigger=TriggerKind.NONE, rationale=""),
            Classification(fault_class=EI, trigger=TriggerKind.NONE, rationale=""),
            Classification(fault_class=EDT, trigger=TriggerKind.RACE_CONDITION, rationale=""),
        ]
        assert class_distribution(classifications) == {EI: 2, EDN: 0, EDT: 1}
