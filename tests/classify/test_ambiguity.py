"""Tests for trigger-ambiguity auditing of report texts."""

from repro.bugdb.enums import TriggerKind
from repro.classify.evidence import ambiguity_report, match_all_triggers


class TestMatchAllTriggers:
    def test_single_trigger_text(self):
        matches = match_all_triggers("the process runs out of file descriptors")
        assert matches == [TriggerKind.FILE_DESCRIPTOR_EXHAUSTION]

    def test_multi_trigger_text_ordered_by_priority(self):
        text = (
            "a race condition between the masking of a signal and its arrival"
        )
        matches = match_all_triggers(text)
        assert matches[0] is TriggerKind.RACE_CONDITION
        assert TriggerKind.SIGNAL_TIMING in matches

    def test_clean_text_has_no_matches(self):
        assert match_all_triggers("null dereference on empty input") == []


class TestCuratedCorpusAmbiguity:
    def test_env_independent_texts_are_trigger_free(self, study):
        """No environment-independent fault's text matches any trigger
        pattern -- otherwise the end-to-end table counts would be luck."""
        for corpus in study.corpora.values():
            for fault in corpus.faults:
                if fault.trigger is TriggerKind.NONE:
                    report = fault.to_report(attach_evidence=False)
                    assert match_all_triggers(report.full_text) == [], fault.fault_id

    def test_env_dependent_first_match_is_ground_truth(self, study):
        """For environment-dependent faults, the *first* matching pattern
        must be the curated trigger; later matches are tolerated only if
        they classify the same way (documented ambiguity)."""
        from repro.classify.recovery_model import PAPER_DEFAULT

        for corpus in study.corpora.values():
            for fault in corpus.faults:
                if fault.trigger is TriggerKind.NONE:
                    continue
                report = fault.to_report(attach_evidence=False)
                matches = match_all_triggers(report.full_text)
                assert matches, fault.fault_id
                assert matches[0] is fault.trigger, fault.fault_id
                for extra in ambiguity_report(report):
                    assert PAPER_DEFAULT.condition_clears_on_retry(
                        extra
                    ) == PAPER_DEFAULT.condition_clears_on_retry(fault.trigger), (
                        f"{fault.fault_id}: ambiguous with {extra}"
                    )
