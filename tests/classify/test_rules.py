"""Tests for the evidence-rule classifier."""

import datetime

import pytest

from repro.bugdb.enums import Application, FaultClass, Severity, Symptom, TriggerKind
from repro.bugdb.model import BugReport, TriggerEvidence
from repro.classify.recovery_model import ELASTIC_ENVIRONMENT, RecoveryModel
from repro.classify.rules import RuleClassifier
from repro.errors import ClassificationError


def evidence(trigger=TriggerKind.NONE, **kwargs):
    return TriggerEvidence(trigger=trigger, **kwargs)


class TestRuleClassifier:
    def test_no_trigger_is_environment_independent(self):
        result = RuleClassifier().classify_evidence(evidence())
        assert result.fault_class is FaultClass.ENV_INDEPENDENT
        assert result.trigger is TriggerKind.NONE
        assert "deterministic" in result.rationale

    def test_persistent_trigger_is_nontransient(self):
        result = RuleClassifier().classify_evidence(evidence(TriggerKind.DISK_FULL))
        assert result.fault_class is FaultClass.ENV_DEP_NONTRANSIENT
        assert "persist" in result.rationale

    def test_clearing_trigger_is_transient(self):
        result = RuleClassifier().classify_evidence(evidence(TriggerKind.RACE_CONDITION))
        assert result.fault_class is FaultClass.ENV_DEP_TRANSIENT
        assert "fixed during retry" in result.rationale

    def test_workload_timing_flag_forces_environment_dependence(self):
        # Section 3: request timing is environmental even with no OS
        # resource named.
        result = RuleClassifier().classify_evidence(
            evidence(TriggerKind.NONE, workload_dependent_timing=True)
        )
        assert result.fault_class is FaultClass.ENV_DEP_TRANSIENT
        assert result.trigger is TriggerKind.WORKLOAD_TIMING

    def test_recovery_model_moves_the_boundary(self):
        disk_full = evidence(TriggerKind.DISK_FULL)
        default = RuleClassifier().classify_evidence(disk_full)
        elastic = RuleClassifier(ELASTIC_ENVIRONMENT).classify_evidence(disk_full)
        assert default.fault_class is FaultClass.ENV_DEP_NONTRANSIENT
        assert elastic.fault_class is FaultClass.ENV_DEP_TRANSIENT

    def test_recovery_model_never_moves_environment_independent(self):
        generous = RuleClassifier(
            RecoveryModel(
                preserves_all_state=False,
                auto_extends_storage=True,
                reclaims_leaked_os_resources=True,
            )
        )
        assert generous.classify_evidence(evidence()).fault_class is FaultClass.ENV_INDEPENDENT

    def test_survivability_property(self):
        transient = RuleClassifier().classify_evidence(evidence(TriggerKind.DNS_ERROR))
        nontransient = RuleClassifier().classify_evidence(evidence(TriggerKind.DISK_FULL))
        independent = RuleClassifier().classify_evidence(evidence())
        assert transient.survivable_by_generic_recovery
        assert not nontransient.survivable_by_generic_recovery
        assert not independent.survivable_by_generic_recovery

    def test_classify_report_requires_evidence(self):
        report = BugReport(
            report_id="X-1",
            application=Application.APACHE,
            component="core",
            version="1.3.4",
            date=datetime.date(1999, 1, 1),
            reporter="user@example.net",
            synopsis="crash",
            severity=Severity.CRITICAL,
            symptom=Symptom.CRASH,
        )
        with pytest.raises(ClassificationError, match="no trigger evidence"):
            RuleClassifier().classify_report(report)

    def test_classify_report_uses_attached_evidence(self):
        report = BugReport(
            report_id="X-1",
            application=Application.APACHE,
            component="core",
            version="1.3.4",
            date=datetime.date(1999, 1, 1),
            reporter="user@example.net",
            synopsis="crash",
            severity=Severity.CRITICAL,
            symptom=Symptom.CRASH,
            evidence=TriggerEvidence(trigger=TriggerKind.PORT_IN_USE),
        )
        result = RuleClassifier().classify_report(report)
        assert result.fault_class is FaultClass.ENV_DEP_TRANSIENT
        assert result.trigger is TriggerKind.PORT_IN_USE
