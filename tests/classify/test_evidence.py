"""Tests for trigger-evidence extraction from free text."""

import datetime

import pytest

from repro.bugdb.enums import Application, Severity, Symptom, TriggerKind
from repro.bugdb.model import BugReport
from repro.classify.evidence import extract_evidence, match_trigger


def make_report(description, *, synopsis="a failure", how_to_repeat=""):
    return BugReport(
        report_id="X-1",
        application=Application.APACHE,
        component="core",
        version="1.3.4",
        date=datetime.date(1999, 1, 1),
        reporter="user@example.net",
        synopsis=synopsis,
        severity=Severity.CRITICAL,
        symptom=Symptom.CRASH,
        description=description,
        how_to_repeat=how_to_repeat,
    )


class TestMatchTrigger:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("a race condition between two threads", TriggerKind.RACE_CONDITION),
            ("the masking of a signal loses to its arrival", TriggerKind.SIGNAL_TIMING),
            ("reverse DNS is not configured for the host", TriggerKind.DNS_MISCONFIGURED),
            ("a slow DNS response stalls everything", TriggerKind.DNS_SLOW),
            ("the DNS lookup returns an error", TriggerKind.DNS_ERROR),
            ("a slow network connection times out", TriggerKind.NETWORK_SLOW),
            ("an unknown network resource is exhausted", TriggerKind.NETWORK_RESOURCE_EXHAUSTION),
            ("children consume all slots in the kernel's process table", TriggerKind.PROCESS_TABLE_FULL),
            ("stale children hang onto required network ports", TriggerKind.PORT_IN_USE),
            ("the process runs out of file descriptors", TriggerKind.FILE_DESCRIPTOR_EXHAUSTION),
            ("too many open files", TriggerKind.FILE_DESCRIPTOR_EXHAUSTION),
            ("the disk cache used for temporaries gets full", TriggerKind.DISK_CACHE_FULL),
            ("log grows greater than the maximum allowed file size", TriggerKind.FILE_SIZE_LIMIT),
            ("a full file system blocks writes", TriggerKind.DISK_FULL),
            ("no space left on device", TriggerKind.DISK_FULL),
            ("an unknown resource leak under high load", TriggerKind.RESOURCE_LEAK),
            ("fails after the PCMCIA card is ejected", TriggerKind.HARDWARE_REMOVAL),
            ("the hostname of the machine was changed", TriggerKind.HOST_CONFIG_CHANGE),
            ("an illegal value in the owner field of a file", TriggerKind.CORRUPT_EXTERNAL_STATE),
            ("not enough entropy in /dev/random", TriggerKind.ENTROPY_EXHAUSTION),
            ("the user presses stop during the download", TriggerKind.WORKLOAD_TIMING),
            ("the operation works on a retry", TriggerKind.UNKNOWN_TRANSIENT),
        ],
    )
    def test_trigger_phrases(self, text, expected):
        assert match_trigger(text) is expected

    def test_no_trigger_in_plain_bug_text(self):
        assert match_trigger("null dereference on an empty input record") is TriggerKind.NONE

    def test_matching_is_case_insensitive(self):
        assert match_trigger("RACE CONDITION in the panel") is TriggerKind.RACE_CONDITION

    def test_trace_does_not_match_race(self):
        assert match_trigger("the stack trace shows a null pointer") is TriggerKind.NONE

    def test_most_specific_pattern_wins(self):
        # "race condition ... masking of a signal": the race-condition
        # pattern is checked first, matching the paper's own wording.
        text = "a race condition between the masking of a signal and its arrival"
        assert match_trigger(text) is TriggerKind.RACE_CONDITION

    def test_disk_cache_not_confused_with_disk_full(self):
        assert match_trigger("the disk cache gets full") is TriggerKind.DISK_CACHE_FULL


class TestExtractEvidence:
    def test_environment_independent_report(self):
        evidence = extract_evidence(make_report("null dereference on empty input"))
        assert evidence.trigger is TriggerKind.NONE
        assert evidence.reproducible_on_developer_machine
        assert not evidence.workload_dependent_timing

    def test_reads_how_to_repeat_field(self):
        report = make_report("the server dies", how_to_repeat="fill the file system until full")
        evidence = extract_evidence(report)
        assert evidence.trigger is TriggerKind.DISK_FULL

    def test_non_reproducible_without_trigger_is_unknown_transient(self):
        report = make_report("server died; developers could not reproduce the failure")
        evidence = extract_evidence(report)
        assert evidence.trigger is TriggerKind.UNKNOWN_TRANSIENT
        assert not evidence.reproducible_on_developer_machine

    def test_workload_timing_flag_set(self):
        report = make_report("crashes when the user presses stop mid-transfer")
        evidence = extract_evidence(report)
        assert evidence.workload_dependent_timing

    def test_resource_name_attached(self):
        report = make_report("the process ran out of file descriptors")
        assert extract_evidence(report).resource == "file_descriptors"

    def test_notes_carry_synopsis(self):
        report = make_report("whatever", synopsis="the synopsis line")
        assert extract_evidence(report).notes == "the synopsis line"

    def test_report_not_modified(self):
        report = make_report("a race condition somewhere")
        extract_evidence(report)
        assert report.evidence is None
