"""Campaign-level resource sampling: the sampler observes serial and
forked campaigns without ever changing or failing them."""

import time

import pytest

from repro import obs
from repro.harness import Telemetry, WorkUnit, run_campaign
from repro.harness.pool import fork_available
from repro.obs import resources
from repro.obs.resources import proc_available

needs_proc = pytest.mark.skipif(
    not proc_available(), reason="no /proc on this platform"
)
needs_fork = pytest.mark.skipif(
    not fork_available(), reason="no fork start method"
)


@pytest.fixture(autouse=True)
def _sampling_off_between_tests(monkeypatch):
    monkeypatch.delenv(resources.SAMPLE_ENV, raising=False)
    resources.configure(None)
    yield
    resources.configure(None)


def busy_runner(unit, context):
    """~15ms of work so a 5ms sampler lands a few samples per unit."""
    deadline = time.monotonic() + 0.015
    acc = 0
    while time.monotonic() < deadline:
        acc += unit.seed
    return {"value": unit.seed * 2, "acc_sign": acc >= 0}


def fast_runner(unit, context):
    return {"value": unit.seed * 2}


def _units(count):
    return [WorkUnit.build("toy", f"F-{i}", seed=i) for i in range(count)]


@needs_proc
class TestSerialSampling:
    def test_serial_campaign_emits_attributed_samples(self):
        resources.configure(0.005)
        sink = obs.MemorySink()
        telemetry = Telemetry()
        with obs.tracing(sink):
            campaign = run_campaign(_units(4), busy_runner, telemetry=telemetry)
        assert [r["value"] for r in campaign.results] == [0, 2, 4, 6]
        samples = resources.resource_records(sink.records)
        assert samples, "dispatcher sampler should emit records on the serial path"
        usage = resources.usage_by_span_name(sink.records)
        assert any(name.startswith("unit:") for name in usage)
        assert telemetry.gauge_value("resources.peak_rss_bytes") > 0

    def test_results_identical_sampler_on_and_off(self):
        baseline = run_campaign(_units(6), busy_runner)
        resources.configure(0.005)
        with obs.tracing(obs.MemorySink()):
            sampled = run_campaign(_units(6), busy_runner)
        assert sampled.results == baseline.results

    def test_sub_interval_units_yield_no_per_unit_samples(self):
        """Units finishing inside one interval: zero mid-run samples,
        but stop() still takes a final reading so the peak gauge fills."""
        resources.configure(60.0)
        telemetry = Telemetry()
        campaign = run_campaign(_units(3), fast_runner, telemetry=telemetry)
        assert campaign.executed == 3
        assert telemetry.gauge_value("resources.peak_rss_bytes") > 0

    def test_disabled_means_no_records_and_no_gauge(self):
        sink = obs.MemorySink()
        telemetry = Telemetry()
        with obs.tracing(sink):
            run_campaign(_units(3), fast_runner, telemetry=telemetry)
        assert resources.resource_records(sink.records) == []
        assert telemetry.gauge_value("resources.peak_rss_bytes") == 0.0


class TestSamplerNeverFailsCampaign:
    def test_proc_reader_exploding_does_not_fail_campaign(self, monkeypatch):
        resources.configure(0.005)

        def exploding_reader(*args, **kwargs):
            raise RuntimeError("/proc vanished mid-read")

        monkeypatch.setattr(resources, "read_resource_sample", exploding_reader)
        campaign = run_campaign(_units(4), busy_runner)
        assert [r["value"] for r in campaign.results] == [0, 2, 4, 6]

    def test_sampler_constructor_exploding_does_not_fail_campaign(self, monkeypatch):
        resources.configure(0.005)

        class Broken:
            def __init__(self, *args, **kwargs):
                raise OSError("no threads left")

        monkeypatch.setattr(resources, "ResourceSampler", Broken)
        campaign = run_campaign(_units(3), fast_runner)
        assert campaign.executed == 3

    def test_vanishing_target_pid_counts_errors_only(self):
        sampler = resources.ResourceSampler(0.005)
        sampler._pid = 2 ** 22 + 4242  # guaranteed-absent pid
        sampler.start()
        time.sleep(0.03)
        sampler.stop()
        assert sampler.take() == []
        assert sampler.errors > 0


@needs_proc
@needs_fork
class TestForkedSampling:
    def test_workers_inherit_config_and_ship_samples(self):
        resources.configure(0.003)
        sink = obs.MemorySink()
        with obs.tracing(sink):
            campaign = run_campaign(_units(8), busy_runner, workers=2)
        assert campaign.executed == 8
        samples = resources.resource_records(sink.records)
        assert samples
        worker_pids = {r["pid"] for r in samples}
        assert len(worker_pids) >= 2, "dispatcher plus at least one worker"
        usage = resources.usage_by_span_name(sink.records)
        assert any(name.startswith("unit:") for name in usage)

    def test_parallel_results_match_serial_with_sampling(self):
        resources.configure(0.005)
        serial = run_campaign(_units(9), busy_runner)
        parallel = run_campaign(_units(9), busy_runner, workers=3)
        assert serial.results == parallel.results

    def test_worker_death_surfaces_runner_error_not_sampler_error(self):
        resources.configure(0.005)

        with pytest.raises(Exception) as excinfo:
            run_campaign(_units(4), _exit_runner, workers=2)
        # The pool's broken-process error propagates; nothing from the
        # sampler masks or replaces it.
        assert "sampler" not in str(excinfo.value).lower()
        # And the engine cleaned up: no sampler left running.
        assert resources.active_sampler() is None


def _exit_runner(unit, context):
    """Module-level so forked workers resolve it; kills the worker."""
    import os

    os._exit(13)
