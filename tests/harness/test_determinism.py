"""The harness determinism contract, tested end to end.

Verdicts must be bit-identical for any worker count -- including the
legacy serial path reconstructed fault by fault -- because seeds are
derived per work unit, never from worker identity or scheduling order.
"""

import pytest

from repro.recovery import CheckpointRollback, ProcessPairs, replay_fault, replay_study
from repro.recovery.campaign import sweep_race_window, sweep_retry_budget
from repro.recovery.driver import ReplayReport


@pytest.fixture(scope="module")
def legacy_report(study):
    """The pre-harness serial loop: one replay_fault call per fault."""
    outcomes = tuple(
        replay_fault(fault, CheckpointRollback()) for fault in study.all_faults()
    )
    return ReplayReport(technique="checkpoint-rollback", outcomes=outcomes)


class TestReplayStudyDeterminism:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_bit_identical_to_legacy_serial_path(self, study, legacy_report, workers):
        report = replay_study(study, CheckpointRollback, workers=workers)
        assert report == legacy_report

    def test_default_call_unchanged(self, study, legacy_report):
        assert replay_study(study, CheckpointRollback) == legacy_report

    def test_seed_flows_through_engine(self, study):
        serial = replay_study(study, ProcessPairs, seed=42)
        parallel = replay_study(study, ProcessPairs, seed=42, workers=2)
        other_seed = replay_study(study, ProcessPairs, seed=43)
        assert serial == parallel
        # Seeds only matter for timing-triggered defects, but the reports
        # must at minimum agree on identity fields and differ nowhere
        # except genuinely seed-dependent verdicts.
        assert [o.fault_id for o in other_seed.outcomes] == [
            o.fault_id for o in serial.outcomes
        ]


class TestReplayStudyTechniqueName:
    def test_empty_study_still_reports_technique_name(self):
        class EmptyStudy:
            def all_faults(self):
                return []

        report = replay_study(EmptyStudy(), CheckpointRollback)
        assert report.technique == "checkpoint-rollback"
        assert report.outcomes == ()


class TestSweepDeterminism:
    def test_retry_budget_sweep_parallel_equals_serial(self, study):
        kwargs = dict(budgets=(1, 2, 4), race_window=0.5, replications=4)
        serial = sweep_retry_budget(
            study, lambda b: CheckpointRollback(max_attempts=b), **kwargs
        )
        parallel = sweep_retry_budget(
            study, lambda b: CheckpointRollback(max_attempts=b), workers=3, **kwargs
        )
        assert serial == parallel

    def test_race_window_sweep_parallel_equals_serial(self, study):
        kwargs = dict(windows=(0.05, 0.5, 0.95), replications=4)
        serial = sweep_race_window(study, CheckpointRollback, **kwargs)
        parallel = sweep_race_window(study, CheckpointRollback, workers=4, **kwargs)
        assert serial == parallel

    def test_sweep_point_totals_survive_the_port(self, study):
        from repro.recovery.campaign import timing_faults

        points = sweep_retry_budget(
            study,
            lambda b: CheckpointRollback(max_attempts=b),
            budgets=(2,),
            race_window=0.5,
            replications=3,
        )
        assert points[0].total == len(timing_faults(study)) * 3
