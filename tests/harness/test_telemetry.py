"""Tests for campaign telemetry and progress reporting."""

import io

import pytest

from repro.harness import ProgressReporter, Telemetry


class TestCounters:
    def test_count_and_read(self):
        telemetry = Telemetry()
        telemetry.count("units.executed")
        telemetry.count("units.executed", 4)
        assert telemetry.counter("units.executed") == 5
        assert telemetry.counter("never") == 0


class TestTimers:
    def test_observe_aggregates(self):
        telemetry = Telemetry()
        for value in (0.1, 0.3, 0.2):
            telemetry.observe("unit.wall", value)
        stats = telemetry.timer("unit.wall")
        assert stats.count == 3
        assert stats.total == pytest.approx(0.6)
        assert stats.min == 0.1
        assert stats.max == 0.3
        assert abs(stats.mean - 0.2) < 1e-12

    def test_timed_context_manager(self):
        telemetry = Telemetry()
        with telemetry.timed("block"):
            pass
        assert telemetry.timer("block").count == 1

    def test_unobserved_timer_is_zero(self):
        assert Telemetry().timer("nothing").mean == 0.0


class TestGauges:
    def test_last_write_wins(self):
        telemetry = Telemetry()
        telemetry.gauge("workers.utilization", 0.5)
        telemetry.gauge("workers.utilization", 0.8)
        assert telemetry.gauge_value("workers.utilization") == 0.8


class TestSnapshotMerge:
    def test_merge_folds_counters_timers_gauges(self):
        a = Telemetry()
        a.count("units.executed", 2)
        a.observe("unit.wall", 0.5)
        b = Telemetry()
        b.count("units.executed", 3)
        b.observe("unit.wall", 0.1)
        b.gauge("workers.count", 4)
        a.merge(b.snapshot())
        assert a.counter("units.executed") == 5
        stats = a.timer("unit.wall")
        assert stats.count == 2
        assert stats.min == 0.1
        assert stats.max == 0.5
        assert a.gauge_value("workers.count") == 4

    def test_snapshot_is_json_shaped(self):
        import json

        telemetry = Telemetry()
        telemetry.count("x")
        telemetry.observe("y", 1.0)
        telemetry.gauge("z", 2.0)
        json.dumps(telemetry.snapshot())  # must not raise


class TestSummaryLines:
    def test_mentions_units_and_survival(self):
        telemetry = Telemetry()
        telemetry.count("units.total", 10)
        telemetry.count("units.executed", 10)
        telemetry.count("units.finished", 10)
        telemetry.count("units.survived", 3)
        telemetry.observe("unit.wall", 0.01)
        lines = "\n".join(telemetry.summary_lines())
        assert "10 executed" in lines
        assert "survived: 3/10" in lines


class TestProgressReporter:
    def test_final_line_always_emitted(self):
        stream = io.StringIO()
        reporter = ProgressReporter(4, stream=stream, interval=3600)
        reporter.update(1)
        reporter.update(2)
        reporter.finish(resumed=1)
        output = stream.getvalue()
        assert output.count("\n") == 1  # interval suppressed the middle updates
        assert "4/4" in output
        assert "1 resumed" in output

    def test_completion_emits_even_within_interval(self):
        stream = io.StringIO()
        reporter = ProgressReporter(2, stream=stream, interval=3600)
        reporter.update(2)
        assert "2/2" in stream.getvalue()
