"""Resume semantics for replay campaigns: kill, truncate, rerun.

A journal truncated mid-campaign must resume to the same final
``ReplayReport`` without re-running completed units -- the acceptance
criterion for interrupted campaigns.
"""

import json

import pytest

from repro.harness import Telemetry, load_journal
from repro.harness.campaigns import run_replay_campaign
from repro.recovery import CheckpointRollback, replay_study


@pytest.fixture()
def faults(study):
    return study.all_faults()[:30]


@pytest.fixture()
def baseline(faults):
    return run_replay_campaign(faults, CheckpointRollback)


class TestJournaledCampaign:
    def test_journal_records_every_unit(self, faults, tmp_path):
        journal = str(tmp_path / "run.jsonl")
        run_replay_campaign(faults, CheckpointRollback, journal_path=journal)
        contents = load_journal(journal)
        assert contents.completed == len(faults)
        assert contents.meta["kind"] == "replay"
        assert contents.meta["technique"] == "checkpoint-rollback"

    def test_rerun_resumes_everything(self, faults, baseline, tmp_path):
        journal = str(tmp_path / "run.jsonl")
        run_replay_campaign(faults, CheckpointRollback, journal_path=journal)
        telemetry = Telemetry()
        resumed = run_replay_campaign(
            faults, CheckpointRollback, journal_path=journal, telemetry=telemetry
        )
        assert resumed == baseline
        assert telemetry.counter("units.executed") == 0
        assert telemetry.counter("units.resumed") == len(faults)


class TestTruncatedJournalResume:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_truncated_journal_resumes_to_same_report(
        self, faults, baseline, tmp_path, workers
    ):
        journal = tmp_path / "run.jsonl"
        run_replay_campaign(faults, CheckpointRollback, journal_path=str(journal))

        # Simulate a kill mid-campaign: keep the header, the first 11
        # complete records, and a torn 12th line.
        lines = journal.read_text().splitlines()
        kept = lines[: 1 + 11]
        torn = lines[1 + 11][: len(lines[1 + 11]) // 2]
        journal.write_text("\n".join(kept + [torn]) + "\n")

        telemetry = Telemetry()
        resumed = run_replay_campaign(
            faults,
            CheckpointRollback,
            journal_path=str(journal),
            workers=workers,
            telemetry=telemetry,
        )
        assert resumed == baseline
        assert telemetry.counter("units.resumed") == 11
        assert telemetry.counter("units.executed") == len(faults) - 11
        # The journal is whole again after the resume.
        assert load_journal(journal).completed == len(faults)

    def test_resume_applies_to_replay_study_entry_point(self, study, tmp_path):
        journal = tmp_path / "full.jsonl"
        expected = replay_study(study, CheckpointRollback)
        replay_study(study, CheckpointRollback, journal=str(journal))

        lines = journal.read_text().splitlines()
        journal.write_text("\n".join(lines[:70]) + "\n")

        resumed = replay_study(study, CheckpointRollback, journal=str(journal))
        assert resumed == expected


class TestJournalUnitIdentity:
    def test_journaled_units_are_self_describing(self, faults, tmp_path):
        journal = tmp_path / "run.jsonl"
        run_replay_campaign(faults, CheckpointRollback, journal_path=str(journal))
        for line in journal.read_text().splitlines()[1:3]:
            record = json.loads(line)
            unit = record["unit"]
            assert unit["kind"] == "replay"
            assert unit["technique"] == "checkpoint-rollback"
            assert isinstance(unit["seed"], int)
            assert record["result"]["fault_id"] == unit["fault_id"]
