"""Tests for the campaign engine: execution, journaling, telemetry."""

import pytest

from repro.harness import ProgressReporter, Telemetry, WorkUnit, load_journal, run_campaign


def double_runner(unit, context):
    """Module-level so forked workers resolve it by reference."""
    return {"value": unit.seed * 2, "survived": unit.seed % 2 == 0}


def failing_runner(unit, context):
    if unit.fault_id == "F-3":
        raise RuntimeError("boom")
    return {"value": unit.seed}


def _units(count):
    return [WorkUnit.build("toy", f"F-{i}", seed=i) for i in range(count)]


class TestExecution:
    def test_results_in_submission_order(self):
        units = _units(7)
        campaign = run_campaign(units, double_runner)
        assert [r["value"] for r in campaign.results] == [i * 2 for i in range(7)]
        assert campaign.executed == 7
        assert campaign.resumed == 0

    def test_parallel_matches_serial(self):
        units = _units(23)
        serial = run_campaign(units, double_runner)
        parallel = run_campaign(units, double_runner, workers=3)
        assert serial.results == parallel.results

    def test_empty_campaign(self):
        campaign = run_campaign([], double_runner)
        assert campaign.results == ()

    def test_duplicate_units_rejected(self):
        unit = WorkUnit.build("toy", "F-0", seed=0)
        with pytest.raises(ValueError, match="duplicate"):
            run_campaign([unit, unit], double_runner)

    def test_runner_failure_propagates_but_keeps_journal(self, tmp_path):
        journal = tmp_path / "run.jsonl"
        with pytest.raises(RuntimeError, match="boom"):
            run_campaign(_units(6), failing_runner, journal_path=str(journal))
        # Units completed before the failure are durable.
        assert load_journal(journal).completed == 3


class TestJournalResume:
    def test_full_resume_runs_nothing(self, tmp_path):
        journal = str(tmp_path / "run.jsonl")
        units = _units(5)
        first = run_campaign(units, double_runner, journal_path=journal)
        second = run_campaign(units, double_runner, journal_path=journal)
        assert second.executed == 0
        assert second.resumed == 5
        assert second.results == first.results

    def test_partial_journal_runs_only_missing(self, tmp_path):
        journal = str(tmp_path / "run.jsonl")
        units = _units(8)
        run_campaign(units[:3], double_runner, journal_path=journal)
        campaign = run_campaign(units, double_runner, journal_path=journal)
        assert campaign.resumed == 3
        assert campaign.executed == 5
        assert [r["value"] for r in campaign.results] == [i * 2 for i in range(8)]

    def test_resume_false_reruns_everything(self, tmp_path):
        journal = str(tmp_path / "run.jsonl")
        units = _units(4)
        run_campaign(units, double_runner, journal_path=journal)
        campaign = run_campaign(
            units, double_runner, journal_path=journal, resume=False
        )
        assert campaign.executed == 4
        assert campaign.resumed == 0

    def test_journal_meta_written_once(self, tmp_path):
        journal = str(tmp_path / "run.jsonl")
        meta = {"kind": "toy", "seed": 1}
        run_campaign(_units(2), double_runner, journal_path=journal, journal_meta=meta)
        run_campaign(_units(3), double_runner, journal_path=journal, journal_meta={})
        assert load_journal(journal).meta == meta


class TestTelemetry:
    def test_counters_and_timers(self):
        telemetry = Telemetry()
        run_campaign(_units(6), double_runner, telemetry=telemetry)
        assert telemetry.counter("units.total") == 6
        assert telemetry.counter("units.executed") == 6
        assert telemetry.counter("units.finished") == 6
        assert telemetry.counter("units.survived") == 3
        assert telemetry.timer("unit.wall").count == 6
        assert telemetry.timer("unit.queue").count == 6

    def test_resumed_units_feed_survival_counters(self, tmp_path):
        journal = str(tmp_path / "run.jsonl")
        units = _units(4)
        run_campaign(units, double_runner, journal_path=journal)
        telemetry = Telemetry()
        run_campaign(units, double_runner, journal_path=journal, telemetry=telemetry)
        assert telemetry.counter("units.resumed") == 4
        assert telemetry.counter("units.survived") == 2
        assert telemetry.timer("unit.wall").count == 0  # nothing re-ran

    def test_parallel_records_worker_gauges(self):
        telemetry = Telemetry()
        run_campaign(_units(12), double_runner, workers=2, telemetry=telemetry)
        assert telemetry.gauge_value("workers.count") == 2
        assert 0.0 <= telemetry.gauge_value("workers.utilization") <= 1.0


class TestProgress:
    def test_progress_reaches_total(self):
        import io

        stream = io.StringIO()
        units = _units(5)
        run_campaign(
            units,
            double_runner,
            progress=ProgressReporter(len(units), stream=stream, interval=0.0),
        )
        assert "5/5" in stream.getvalue()
