"""Tests for shard planning and order-preserving reassembly."""

import pytest

from repro.harness import WorkUnit, assemble_results, shard_count_for, shard_units


def _units(count):
    return [WorkUnit.build("replay", f"F-{i}", seed=i) for i in range(count)]


class TestShardCount:
    def test_zero_units(self):
        assert shard_count_for(0, 4) == 0

    def test_small_campaign_one_shard_per_unit_at_most(self):
        assert shard_count_for(3, 4) == 3

    def test_large_campaign_chunks_per_worker(self):
        assert shard_count_for(1000, 4) == 16


class TestShardUnits:
    def test_partition_covers_everything_once(self):
        units = _units(139)
        shards = shard_units(units, shard_count_for(139, 4))
        flattened = [unit for shard in shards for unit in shard]
        assert flattened == units  # contiguous, order-preserving, complete

    def test_sizes_differ_by_at_most_one(self):
        shards = shard_units(_units(10), 3)
        sizes = sorted(len(shard) for shard in shards)
        assert sizes == [3, 3, 4]

    def test_more_shards_than_units_collapses(self):
        shards = shard_units(_units(2), 8)
        assert len(shards) == 2


class TestAssemble:
    def test_orders_results_by_submission(self):
        units = _units(5)
        shuffled = {unit.key(): unit.fault_id for unit in reversed(units)}
        assert assemble_results(units, shuffled) == [u.fault_id for u in units]

    def test_missing_result_raises(self):
        units = _units(2)
        with pytest.raises(KeyError, match="no result"):
            assemble_results(units, {units[0].key(): "x"})
