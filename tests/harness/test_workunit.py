"""Tests for the self-describing work-unit model."""

import pytest

from repro.harness import WorkUnit, check_unique


class TestBuild:
    def test_params_are_sorted_canonically(self):
        a = WorkUnit.build("replay", "F-1", params={"b": 2, "a": 1}, seed=7)
        b = WorkUnit.build("replay", "F-1", params={"a": 1, "b": 2}, seed=7)
        assert a == b
        assert a.params == (("a", 1), ("b", 2))

    def test_params_dict_roundtrip(self):
        unit = WorkUnit.build("replay", "F-1", params={"window": 0.25}, seed=3)
        assert unit.params_dict() == {"window": 0.25}

    def test_non_scalar_param_rejected(self):
        with pytest.raises(TypeError, match="JSON scalar"):
            WorkUnit.build("replay", "F-1", params={"bad": [1, 2]})


class TestKey:
    def test_key_is_content_hash(self):
        a = WorkUnit.build("replay", "F-1", technique="t", seed=7)
        b = WorkUnit.build("replay", "F-1", technique="t", seed=7)
        assert a.key() == b.key()

    def test_key_changes_with_any_field(self):
        base = WorkUnit.build("replay", "F-1", technique="t", seed=7)
        variants = [
            WorkUnit.build("sweep", "F-1", technique="t", seed=7),
            WorkUnit.build("replay", "F-2", technique="t", seed=7),
            WorkUnit.build("replay", "F-1", technique="u", seed=7),
            WorkUnit.build("replay", "F-1", technique="t", seed=8),
            WorkUnit.build("replay", "F-1", technique="t", params={"x": 1}, seed=7),
        ]
        keys = {unit.key() for unit in variants}
        assert base.key() not in keys
        assert len(keys) == len(variants)

    def test_key_stable_across_dict_roundtrip(self):
        unit = WorkUnit.build(
            "retry-budget", "F-9", technique="t",
            params={"budget": 4, "replication": 2, "race_window": 0.25}, seed=99,
        )
        assert WorkUnit.from_dict(unit.to_dict()) == unit
        assert WorkUnit.from_dict(unit.to_dict()).key() == unit.key()


class TestCheckUnique:
    def test_accepts_distinct_units(self):
        check_unique(
            [WorkUnit.build("replay", f"F-{i}", seed=i) for i in range(5)]
        )

    def test_rejects_duplicates(self):
        unit = WorkUnit.build("replay", "F-1", seed=1)
        with pytest.raises(ValueError, match="duplicate work units"):
            check_unique([unit, unit])
