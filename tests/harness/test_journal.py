"""Tests for the crash-safe JSONL journal."""

import json

import pytest

from repro.harness import JournalWriter, WorkUnit, load_journal


def _write_sample(path, count=3):
    units = [WorkUnit.build("replay", f"F-{i}", seed=i) for i in range(count)]
    with JournalWriter(path, meta={"kind": "replay", "seed": 7}) as writer:
        for unit in units:
            writer.append(
                unit.key(), unit.to_dict(), {"survived": i_even(unit)},
                wall_seconds=0.001,
            )
    return units


def i_even(unit):
    return int(unit.fault_id.split("-")[1]) % 2 == 0


class TestRoundTrip:
    def test_header_and_records(self, tmp_path):
        path = tmp_path / "run.jsonl"
        units = _write_sample(path)
        contents = load_journal(path)
        assert contents.meta == {"kind": "replay", "seed": 7}
        assert contents.completed == 3
        assert contents.skipped_lines == 0
        for unit in units:
            record = contents.records[unit.key()]
            assert record["unit"] == unit.to_dict()
            assert record["result"] == {"survived": i_even(unit)}
            assert record["wall_ms"] == 1.0

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_journal(tmp_path / "absent.jsonl")


class TestTruncationTolerance:
    def test_truncated_last_line_is_skipped(self, tmp_path):
        path = tmp_path / "run.jsonl"
        _write_sample(path)
        text = path.read_text()
        path.write_text(text[: len(text) - 25])  # cut into the last record
        contents = load_journal(path)
        assert contents.completed == 2
        assert contents.skipped_lines == 1

    def test_garbage_middle_line_is_skipped(self, tmp_path):
        path = tmp_path / "run.jsonl"
        _write_sample(path)
        lines = path.read_text().splitlines()
        lines.insert(2, "{not json")
        path.write_text("\n".join(lines) + "\n")
        contents = load_journal(path)
        assert contents.completed == 3
        assert contents.skipped_lines == 1

    def test_duplicate_key_last_record_wins(self, tmp_path):
        path = tmp_path / "run.jsonl"
        unit = WorkUnit.build("replay", "F-0", seed=0)
        with JournalWriter(path) as writer:
            writer.append(unit.key(), unit.to_dict(), {"survived": False})
            writer.append(unit.key(), unit.to_dict(), {"survived": True})
        contents = load_journal(path)
        assert contents.completed == 1
        assert contents.records[unit.key()]["result"]["survived"] is True


class TestAppendSemantics:
    def test_reopening_does_not_rewrite_header(self, tmp_path):
        path = tmp_path / "run.jsonl"
        _write_sample(path, count=1)
        unit = WorkUnit.build("replay", "F-99", seed=99)
        with JournalWriter(path, meta={"kind": "other"}) as writer:
            writer.append(unit.key(), unit.to_dict(), {"survived": True})
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        headers = [line for line in lines if line.get("type") == "header"]
        assert len(headers) == 1
        assert headers[0]["meta"] == {"kind": "replay", "seed": 7}
        assert load_journal(path).completed == 2
