"""Property test: the reproduction's central coherence theorem.

For every deterministic (non-timing) environmental trigger and every
recovery model: arm the trigger's condition in a fresh environment, run
one recovery's worth of state handling and environmental perturbation,
and the condition must still hold **iff** the model classifies it as
persisting.  This ties :mod:`repro.apps.faults` (what the injected
defects check), :mod:`repro.envmodel.perturb` (what recovery does to the
environment), and :mod:`repro.classify.recovery_model` (what the
classifier assumes) into one mutually consistent system -- which is what
makes the classification-vs-replay agreement a theorem rather than a
coincidence.
"""

import datetime

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.base import MiniApplication
from repro.apps.faults import InjectedDefect
from repro.bugdb.enums import Application, FaultClass, Symptom, TriggerKind
from repro.classify.recovery_model import RecoveryModel
from repro.corpus.studyspec import StudyFault
from repro.envmodel.environment import Environment, EnvironmentSpec
from repro.envmodel.perturb import apply_recovery_perturbation

#: Every trigger whose condition is a deterministic environment/state
#: predicate (timing triggers are stochastic and tested separately).
DETERMINISTIC_TRIGGERS = (
    TriggerKind.RESOURCE_LEAK,
    TriggerKind.FILE_DESCRIPTOR_EXHAUSTION,
    TriggerKind.DISK_FULL,
    TriggerKind.FILE_SIZE_LIMIT,
    TriggerKind.DISK_CACHE_FULL,
    TriggerKind.NETWORK_RESOURCE_EXHAUSTION,
    TriggerKind.HARDWARE_REMOVAL,
    TriggerKind.HOST_CONFIG_CHANGE,
    TriggerKind.DNS_MISCONFIGURED,
    TriggerKind.CORRUPT_EXTERNAL_STATE,
    TriggerKind.PROCESS_TABLE_FULL,
    TriggerKind.PORT_IN_USE,
    TriggerKind.DNS_ERROR,
    TriggerKind.DNS_SLOW,
    TriggerKind.NETWORK_SLOW,
    TriggerKind.ENTROPY_EXHAUSTION,
)

recovery_models = st.builds(
    RecoveryModel,
    preserves_all_state=st.booleans(),
    kills_application_processes=st.booleans(),
    auto_extends_storage=st.booleans(),
    reclaims_leaked_os_resources=st.booleans(),
    expects_external_repair=st.booleans(),
)


class PlainApp(MiniApplication):
    pass


def arm_defect(trigger: TriggerKind):
    env = Environment(
        seed=7,
        spec=EnvironmentSpec(file_descriptors=16, process_slots=8, network_ports=8),
    )
    app = PlainApp(env, name="prop-app")
    fault = StudyFault(
        fault_id=f"PROP-{trigger.value}",
        application=Application.APACHE,
        component="core",
        version="1.3.4",
        date=datetime.date(1999, 1, 1),
        synopsis="property fault",
        description="x",
        how_to_repeat="x",
        fix_summary="",
        symptom=Symptom.CRASH,
        trigger=trigger,
        fault_class=FaultClass.ENV_DEP_NONTRANSIENT
        if not RecoveryModel().condition_clears_on_retry(trigger)
        else FaultClass.ENV_DEP_TRANSIENT,
        workload_op="the-op",
    )
    defect = InjectedDefect(fault)
    defect.arm(env, app)
    return env, app, defect


class TestConditionPerturbationCoherence:
    @given(model=recovery_models, trigger=st.sampled_from(DETERMINISTIC_TRIGGERS))
    @settings(max_examples=200, deadline=None)
    def test_condition_clears_iff_model_says_so(self, model, trigger):
        env, app, defect = arm_defect(trigger)
        checkpoint = app.snapshot()
        assert defect.condition_holds(env, app), "arming must establish the condition"

        # One recovery's worth of effects: environmental perturbation per
        # the model, and the matching state handling (restore for truly
        # generic recovery, re-initialise for restart-from-scratch).
        apply_recovery_perturbation(env, model, app.footprint)
        if model.preserves_all_state:
            app.restore(checkpoint)
        else:
            app.reset_fresh()

        still_holds = defect.condition_holds(env, app)
        assert still_holds == (not model.condition_clears_on_retry(trigger)), (
            f"{trigger.value} under {model}"
        )

    @given(trigger=st.sampled_from(DETERMINISTIC_TRIGGERS))
    @settings(max_examples=50, deadline=None)
    def test_arming_is_idempotent_for_condition(self, trigger):
        env, app, defect = arm_defect(trigger)
        assert defect.condition_holds(env, app)
        assert defect.condition_holds(env, app)  # checking has no side effect
