"""Property tests: archive formats round-trip arbitrary reports."""

import datetime

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bugdb import debbugs, gnats, mbox
from repro.bugdb.enums import Application, Resolution, Severity, Status, Symptom
from repro.bugdb.model import BugReport, Comment

# Text that survives line-oriented formats: no newlines, no leading/
# trailing whitespace ambiguity.
line_text = st.text(
    alphabet=st.characters(blacklist_categories=("Cs", "Cc"), blacklist_characters="\n\r"),
    min_size=1,
    max_size=60,
).map(str.strip).filter(bool)

# Multi-line bodies: lines must not collide with structural markers.
body_line = line_text.filter(
    lambda s: not s.startswith((">", "From ", "Control:", "Message from", "  "))
    and ":" not in s.split(" ")[0]
    and s != "To reproduce:"
)
body_text = st.lists(body_line, min_size=0, max_size=4).map("\n".join)

dates = st.dates(min_value=datetime.date(1997, 1, 1), max_value=datetime.date(2000, 1, 1))

identifiers = st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789-", min_size=1, max_size=20)


@st.composite
def bug_reports(draw, application=Application.APACHE):
    fixed = draw(st.booleans())
    return BugReport(
        report_id=draw(identifiers),
        application=application,
        component=draw(identifiers),
        version=draw(st.sampled_from(["1.2.4", "1.3.4", "3.22.25", "1.0"])),
        date=draw(dates),
        reporter=draw(identifiers) + "@example.net",
        synopsis=draw(body_line),
        severity=draw(st.sampled_from(list(Severity))),
        status=Status.CLOSED if fixed else Status.OPEN,
        resolution=Resolution.FIXED if fixed else Resolution.UNRESOLVED,
        symptom=draw(st.sampled_from(list(Symptom) + [None])),
        description=draw(body_text),
        how_to_repeat=draw(body_text),
        environment=draw(body_line),
        comments=[
            Comment(author=draw(identifiers), date=draw(dates), text=draw(body_text))
            for _ in range(draw(st.integers(0, 2)))
        ],
        fix_summary=draw(body_text) if fixed else "",
        is_production_version=draw(st.booleans()),
    )


class TestGnatsRoundTrip:
    @given(report=bug_reports())
    @settings(max_examples=60, deadline=None)
    def test_core_fields_survive(self, report):
        parsed = gnats.parse_pr(gnats.render_pr(report))
        assert parsed.report_id == report.report_id
        assert parsed.component == report.component
        assert parsed.version == report.version
        assert parsed.date == report.date
        assert parsed.synopsis == report.synopsis
        assert parsed.severity is report.severity
        assert parsed.symptom is report.symptom
        assert parsed.description == report.description
        assert parsed.how_to_repeat == report.how_to_repeat
        assert parsed.is_production_version == report.is_production_version
        assert len(parsed.comments) == len(report.comments)


class TestDebbugsRoundTrip:
    @given(report=bug_reports(application=Application.GNOME))
    @settings(max_examples=60, deadline=None)
    def test_core_fields_survive(self, report):
        parsed = debbugs.parse_report(debbugs.render_report(report))
        assert parsed.report_id == report.report_id
        assert parsed.component == report.component
        assert parsed.version == report.version
        assert parsed.severity is report.severity
        assert parsed.status is report.status
        assert parsed.is_production_version == report.is_production_version


@st.composite
def mail_messages(draw):
    return mbox.MailMessage(
        message_id=draw(identifiers) + "@lists.example.com",
        sender=draw(identifiers) + "@example.net",
        date=draw(dates),
        subject=draw(body_line),
        body=draw(st.lists(line_text, min_size=0, max_size=5).map("\n".join)),
        in_reply_to=draw(st.none() | identifiers.map(lambda s: s + "@lists.example.com")),
    )


class TestMboxRoundTrip:
    @given(message=mail_messages())
    @settings(max_examples=60, deadline=None)
    def test_message_survives(self, message):
        parsed = mbox.parse_archive(mbox.render_message(message))
        assert len(parsed) == 1
        assert parsed[0] == mbox.MailMessage(
            message_id=message.message_id,
            sender=message.sender,
            date=message.date,
            subject=message.subject,
            body=message.body.strip("\n"),
            in_reply_to=message.in_reply_to,
        )

    @given(messages=st.lists(mail_messages(), min_size=0, max_size=8, unique_by=lambda m: m.message_id))
    @settings(max_examples=30, deadline=None)
    def test_archive_preserves_count_and_order(self, messages):
        parsed = mbox.parse_archive(mbox.render_archive(messages)) if messages else []
        assert [m.message_id for m in parsed] == [m.message_id for m in messages]
