"""Property-style checks for the fast archive path.

The pipeline's whole claim is an equivalence: splitting, sharding, and
worker count must never change what gets parsed or mined.  These tests
sweep worker counts and archive sizes (including sizes that leave torn,
odd-sized final shards) across all three formats and compare against
the serial reference.
"""

import pytest

from repro.bugdb import debbugs, gnats, mbox
from repro.bugdb.enums import Application
from repro.pipeline import format_for, mine_archive_text, parse_archive_sharded

WORKER_COUNTS = (1, 2, 7)

_RENDERERS = {
    Application.APACHE: gnats.render_archive,
    Application.GNOME: debbugs.render_archive,
    Application.MYSQL: mbox.render_archive,
}


@pytest.fixture(scope="module")
def base_records(study):
    """A pool of parsed records per application to cut sub-archives from."""
    scales = {
        Application.APACHE: 200,
        Application.GNOME: None,
        Application.MYSQL: 900,
    }
    pool = {}
    for application, scale in scales.items():
        fmt = format_for(application)
        pool[application] = fmt.parse(fmt.render(study.corpus(application), scale))
    return pool


class TestShardedParseEqualsSerial:
    @pytest.mark.parametrize("application", list(Application))
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    # Sizes chosen to exercise: fewer records than shards, one-record
    # shards, and torn final shards (sizes not divisible by shard count).
    @pytest.mark.parametrize("size", [1, 2, 7, 23, 61])
    def test_subarchive_equivalence(self, base_records, application, workers, size):
        fmt = format_for(application)
        records = base_records[application][:size]
        assert len(records) == size
        text = _RENDERERS[application](records)
        serial = fmt.parse(text)
        assert serial == records
        parsed = parse_archive_sharded(fmt, text, workers=workers)
        assert parsed.records == serial

    @pytest.mark.parametrize("application", list(Application))
    def test_split_then_parse_is_parse_archive(self, base_records, application):
        fmt = format_for(application)
        text = _RENDERERS[application](base_records[application])
        legacy = {
            Application.APACHE: gnats.parse_archive,
            Application.GNOME: debbugs.parse_archive,
            Application.MYSQL: mbox.parse_archive,
        }[application]
        assert [fmt.parse_record(chunk) for chunk in fmt.split(text)] == legacy(text)


class TestMiningEqualsSerial:
    @pytest.mark.parametrize("application", list(Application))
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_full_pipeline_equivalence(self, study, application, workers):
        fmt = format_for(application)
        scale = {
            Application.APACHE: 300,
            Application.GNOME: None,
            Application.MYSQL: 1500,
        }[application]
        text = fmt.render(study.corpus(application), scale)
        serial = fmt.mine(fmt.parse(text), None)
        run = mine_archive_text(application, text, workers=workers)
        assert run.result.items == serial.items
        assert run.result.trace.as_rows() == serial.trace.as_rows()
