"""Property tests: the text index agrees with a naive scan."""

import re

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bugdb.textindex import TextIndex

words = st.text(alphabet="abcdefghij", min_size=1, max_size=6)
documents = st.lists(
    st.lists(words, min_size=0, max_size=8).map(" ".join), min_size=0, max_size=12
)


def naive_token_hits(texts, token):
    pattern = re.compile(rf"\b{re.escape(token)}\b")
    return {index for index, text in enumerate(texts) if pattern.search(text)}


def naive_prefix_hits(texts, prefix):
    pattern = re.compile(rf"\b{re.escape(prefix)}[a-z0-9]*")
    return {index for index, text in enumerate(texts) if pattern.search(text)}


class TestIndexAgainstScan:
    @given(texts=documents, token=words)
    @settings(max_examples=80, deadline=None)
    def test_exact_lookup_agrees_with_scan(self, texts, token):
        index = TextIndex()
        index.add_all(enumerate(texts))
        assert index.lookup(token) == naive_token_hits(texts, token)

    @given(texts=documents, prefix=words)
    @settings(max_examples=80, deadline=None)
    def test_prefix_lookup_agrees_with_scan(self, texts, prefix):
        index = TextIndex()
        index.add_all(enumerate(texts))
        assert index.lookup_prefix(prefix) == naive_prefix_hits(texts, prefix)

    @given(texts=documents, keywords=st.lists(words, min_size=1, max_size=3))
    @settings(max_examples=60, deadline=None)
    def test_search_any_is_union(self, texts, keywords):
        index = TextIndex()
        index.add_all(enumerate(texts))
        expected = set()
        for keyword in keywords:
            expected |= naive_prefix_hits(texts, keyword)
        assert index.search_any(keywords) == expected

    @given(texts=documents, keywords=st.lists(words, min_size=1, max_size=3))
    @settings(max_examples=60, deadline=None)
    def test_search_all_is_intersection(self, texts, keywords):
        index = TextIndex()
        index.add_all(enumerate(texts))
        expected = None
        for keyword in keywords:
            hits = naive_prefix_hits(texts, keyword)
            expected = hits if expected is None else expected & hits
        assert index.search_all(keywords) == (expected or set())


class TestJsonRoundTripProperty:
    @given(
        seed=st.integers(0, 10_000),
        counts=st.tuples(st.integers(0, 6), st.integers(0, 4), st.integers(0, 4)),
    )
    @settings(max_examples=25, deadline=None)
    def test_synthetic_corpus_round_trips_through_json(self, seed, counts, tmp_path_factory):
        from repro.bugdb.database import BugDatabase
        from repro.bugdb.enums import Application
        from repro.bugdb.jsonstore import dump_database, load_database
        from repro.corpus.synthetic import synthetic_corpus

        ei, edn, edt = counts
        if ei + edn + edt == 0:
            return
        corpus = synthetic_corpus(
            Application.GNOME, env_independent=ei, nontransient=edn, transient=edt, seed=seed
        )
        db = BugDatabase(corpus.to_reports(attach_evidence=True))
        path = tmp_path_factory.mktemp("json") / "corpus.json"
        dump_database(db, path)
        loaded = load_database(path)
        assert len(loaded) == len(db)
        for report in db:
            assert loaded.get(report.application, report.report_id) == report
