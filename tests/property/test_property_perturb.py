"""Property tests: recovery-model composition is order-independent.

The commuting side effects (killing processes, reclaiming leaked OS
resources, growing storage, expecting external repair) are additive, so
composing models in any order must produce the same composed model and
the same environment end-state; models that disagree on
``preserves_all_state`` must raise rather than silently pick an order.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.classify.recovery_model import RecoveryModel
from repro.envmodel.environment import Environment, EnvironmentSpec
from repro.envmodel.perturb import (
    ResourceFootprint,
    apply_recovery_perturbation,
    apply_recovery_perturbations,
    compose_recovery_models,
)
from repro.errors import PerturbationConflict, SimulationError


def models(preserves=st.booleans()):
    return st.builds(
        RecoveryModel,
        preserves_all_state=preserves,
        kills_application_processes=st.booleans(),
        auto_extends_storage=st.booleans(),
        reclaims_leaked_os_resources=st.booleans(),
        expects_external_repair=st.booleans(),
    )


def commuting_lists(min_size=1, max_size=4):
    """Lists of models that agree on ``preserves_all_state``."""
    return st.booleans().flatmap(
        lambda p: st.lists(
            models(preserves=st.just(p)), min_size=min_size, max_size=max_size
        )
    )


def _snapshot(env):
    return (
        env.file_descriptors.in_use,
        env.process_table.in_use,
        env.ports.in_use,
        env.network.buffers.in_use,
        env.disk.capacity_bytes,
        env.disk_cache.capacity_bytes,
        env.disk.max_file_bytes,
        env.dns.state,
        env.network.state,
        env.clock.now,
    )


def _loaded_env_and_footprint():
    env = Environment(
        seed=11,
        spec=EnvironmentSpec(file_descriptors=16, process_slots=8, network_ports=8),
    )
    env.file_descriptors.acquire(10)
    env.process_table.acquire(4)
    env.ports.acquire(3)
    env.network.buffers.acquire(5)
    footprint = ResourceFootprint(
        descriptors=10,
        leaked_descriptors=6,
        process_slots=4,
        ports=3,
        network_buffers=5,
    )
    return env, footprint


class TestComposeAlgebra:
    @given(a=models(), b=models())
    @settings(max_examples=80, deadline=None)
    def test_compose_commutes_or_conflicts_symmetrically(self, a, b):
        try:
            forward = compose_recovery_models([a, b])
        except PerturbationConflict:
            with pytest.raises(PerturbationConflict):
                compose_recovery_models([b, a])
            return
        assert forward == compose_recovery_models([b, a])

    @given(group=commuting_lists(min_size=1, max_size=4), seed=st.integers(0, 999))
    @settings(max_examples=80, deadline=None)
    def test_compose_is_permutation_invariant(self, group, seed):
        import random

        shuffled = list(group)
        random.Random(seed).shuffle(shuffled)
        assert compose_recovery_models(group) == compose_recovery_models(shuffled)

    @given(group=commuting_lists())
    @settings(max_examples=60, deadline=None)
    def test_composed_flags_are_the_union(self, group):
        composed = compose_recovery_models(group)
        for flag in (
            "kills_application_processes",
            "auto_extends_storage",
            "reclaims_leaked_os_resources",
            "expects_external_repair",
        ):
            assert getattr(composed, flag) == any(getattr(m, flag) for m in group)
        assert composed.preserves_all_state == group[0].preserves_all_state

    @given(a=models(preserves=st.just(True)), b=models(preserves=st.just(False)))
    @settings(max_examples=30, deadline=None)
    def test_state_disagreement_is_a_conflict(self, a, b):
        with pytest.raises(PerturbationConflict, match="state"):
            compose_recovery_models([a, b])

    def test_empty_composition_rejected(self):
        with pytest.raises(ValueError, match="zero"):
            compose_recovery_models([])

    def test_conflict_is_a_simulation_error(self):
        assert issubclass(PerturbationConflict, SimulationError)


class TestAppliedEndState:
    @given(group=commuting_lists(min_size=2, max_size=4), seed=st.integers(0, 999))
    @settings(max_examples=40, deadline=None)
    def test_application_order_never_changes_the_environment(self, group, seed):
        import random

        shuffled = list(group)
        random.Random(seed).shuffle(shuffled)
        env_a, fp_a = _loaded_env_and_footprint()
        env_b, fp_b = _loaded_env_and_footprint()
        apply_recovery_perturbations(env_a, group, fp_a)
        apply_recovery_perturbations(env_b, shuffled, fp_b)
        assert _snapshot(env_a) == _snapshot(env_b)

    @given(group=commuting_lists(min_size=1, max_size=4))
    @settings(max_examples=40, deadline=None)
    def test_composed_apply_equals_applying_the_composed_model(self, group):
        env_a, fp_a = _loaded_env_and_footprint()
        env_b, fp_b = _loaded_env_and_footprint()
        returned = apply_recovery_perturbations(env_a, group, fp_a)
        apply_recovery_perturbation(env_b, compose_recovery_models(group), fp_b)
        assert returned == compose_recovery_models(group)
        assert _snapshot(env_a) == _snapshot(env_b)

    @given(a=models(preserves=st.just(True)), b=models(preserves=st.just(False)))
    @settings(max_examples=20, deadline=None)
    def test_conflicting_apply_raises_before_touching_the_environment(self, a, b):
        env, footprint = _loaded_env_and_footprint()
        before = _snapshot(env)
        with pytest.raises(PerturbationConflict):
            apply_recovery_perturbations(env, [a, b], footprint)
        assert _snapshot(env) == before
