"""Property tests: deduplication invariants."""

import datetime

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bugdb.dedup_keys import content_tokens, jaccard_similarity, normalize_synopsis
from repro.bugdb.enums import Application, Severity, Symptom
from repro.bugdb.model import BugReport
from repro.mining.dedup import Deduplicator

words = st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=3, max_size=10)
synopses = st.lists(words, min_size=2, max_size=8).map(" ".join)


def make_report(index, synopsis, day):
    return BugReport(
        report_id=f"R-{index}",
        application=Application.APACHE,
        component="core",
        version="1.3.4",
        date=datetime.date(1999, 1, 1) + datetime.timedelta(days=day),
        reporter="u@x",
        synopsis=synopsis,
        severity=Severity.CRITICAL,
        symptom=Symptom.CRASH,
    )


@st.composite
def report_lists(draw):
    synopsis_pool = draw(st.lists(synopses, min_size=1, max_size=6, unique=True))
    count = draw(st.integers(1, 15))
    return [
        make_report(
            index,
            draw(st.sampled_from(synopsis_pool)),
            draw(st.integers(0, 300)),
        )
        for index in range(count)
    ]


class TestDedupProperties:
    @given(reports=report_lists())
    @settings(max_examples=60, deadline=None)
    def test_partition_covers_all_reports(self, reports):
        result = Deduplicator().dedup(reports)
        seen = [group.primary for group in result.groups]
        for group in result.groups:
            seen.extend(group.duplicates)
        assert sorted(r.report_id for r in seen) == sorted(r.report_id for r in reports)

    @given(reports=report_lists())
    @settings(max_examples=60, deadline=None)
    def test_primary_is_earliest_in_group(self, reports):
        for group in Deduplicator().dedup(reports).groups:
            for duplicate in group.duplicates:
                assert (group.primary.date, group.primary.report_id) <= (
                    duplicate.date,
                    duplicate.report_id,
                )

    @given(reports=report_lists())
    @settings(max_examples=60, deadline=None)
    def test_identical_synopses_always_merge(self, reports):
        result = Deduplicator(use_fuzzy=False).dedup(reports)
        keys = [normalize_synopsis(group.primary.synopsis) for group in result.groups]
        assert len(keys) == len(set(keys))

    @given(reports=report_lists())
    @settings(max_examples=40, deadline=None)
    def test_fuzzy_never_yields_more_groups_than_exact(self, reports):
        exact = Deduplicator(use_fuzzy=False).dedup(reports)
        fuzzy = Deduplicator(use_fuzzy=True).dedup(reports)
        assert len(fuzzy.groups) <= len(exact.groups)

    @given(reports=report_lists())
    @settings(max_examples=40, deadline=None)
    def test_unique_count_plus_duplicates_is_total(self, reports):
        result = Deduplicator().dedup(reports)
        assert len(result.primaries) + result.duplicate_count == len(reports)


class TestSimilarityProperties:
    @given(left=synopses, right=synopses)
    @settings(max_examples=80, deadline=None)
    def test_jaccard_bounds_and_symmetry(self, left, right):
        lt, rt = content_tokens(left), content_tokens(right)
        similarity = jaccard_similarity(lt, rt)
        assert 0.0 <= similarity <= 1.0
        assert similarity == jaccard_similarity(rt, lt)

    @given(synopsis=synopses)
    @settings(max_examples=80, deadline=None)
    def test_normalize_is_idempotent(self, synopsis):
        once = normalize_synopsis(synopsis)
        assert normalize_synopsis(once) == once

    @given(synopsis=synopses, extra=words)
    @settings(max_examples=80, deadline=None)
    def test_word_order_invariance(self, synopsis, extra):
        shuffled = " ".join(reversed((synopsis + " " + extra).split()))
        assert normalize_synopsis(synopsis + " " + extra) == normalize_synopsis(shuffled)
