"""Property tests: environment-model invariants."""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.envmodel.clock import SimulationClock
from repro.envmodel.resources import BoundedResource, DiskVolume
from repro.envmodel.scheduler import ThreadScheduler
from repro.errors import ResourceExhaustedError


class TestBoundedResourceInvariants:
    @given(
        capacity=st.integers(0, 100),
        operations=st.lists(st.tuples(st.booleans(), st.integers(0, 20)), max_size=40),
    )
    @settings(max_examples=80, deadline=None)
    def test_in_use_never_exceeds_capacity_or_goes_negative(self, capacity, operations):
        resource = BoundedResource("r", capacity)
        for is_acquire, units in operations:
            try:
                if is_acquire:
                    resource.acquire(units)
                else:
                    resource.release(units)
            except (ResourceExhaustedError, ValueError):
                pass
            assert 0 <= resource.in_use <= resource.capacity
            assert resource.available == resource.capacity - resource.in_use

    @given(capacity=st.integers(0, 50), acquired=st.integers(0, 50))
    @settings(max_examples=60, deadline=None)
    def test_release_all_restores_full_availability(self, capacity, acquired):
        assume(acquired <= capacity)
        resource = BoundedResource("r", capacity)
        resource.acquire(acquired)
        assert resource.release_all() == acquired
        assert resource.available == capacity


class TestDiskInvariants:
    @given(
        capacity=st.integers(0, 10_000),
        writes=st.lists(
            st.tuples(st.sampled_from(["a", "b", "c"]), st.integers(0, 3000)), max_size=20
        ),
    )
    @settings(max_examples=80, deadline=None)
    def test_used_never_exceeds_capacity(self, capacity, writes):
        disk = DiskVolume(capacity)
        for path, size in writes:
            try:
                disk.write(path, size)
            except ResourceExhaustedError:
                pass
            assert 0 <= disk.used_bytes <= disk.capacity_bytes
            assert disk.free_bytes == disk.capacity_bytes - disk.used_bytes

    @given(capacity=st.integers(1, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_fill_then_free_is_identity(self, capacity):
        disk = DiskVolume(capacity)
        disk.fill()
        assert disk.full
        disk.free_external()
        assert disk.free_bytes == capacity

    @given(
        capacity=st.integers(100, 10_000),
        limit=st.integers(1, 99),
    )
    @settings(max_examples=40, deadline=None)
    def test_file_limit_enforced(self, capacity, limit):
        disk = DiskVolume(capacity, max_file_bytes=limit)
        disk.write("f", limit)
        try:
            disk.write("f", 1)
            assert False, "limit not enforced"
        except ResourceExhaustedError as exc:
            assert exc.resource == "max_file_size"


class TestClockInvariants:
    @given(advances=st.lists(st.floats(0, 1e6, allow_nan=False), max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_time_is_monotone(self, advances):
        clock = SimulationClock()
        previous = clock.now
        for amount in advances:
            clock.advance(amount)
            assert clock.now >= previous
            previous = clock.now


class TestSchedulerInvariants:
    @given(
        seed=st.integers(0, 2**32),
        thread_ops=st.dictionaries(
            st.sampled_from(["a", "b", "c"]),
            st.lists(st.integers(0, 9), min_size=1, max_size=5),
            min_size=1,
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_interleaving_is_a_permutation_preserving_program_order(self, seed, thread_ops):
        threads = {
            name: [f"{name}{i}" for i in range(len(ops))] for name, ops in thread_ops.items()
        }
        order = ThreadScheduler(seed=seed).interleave(threads)
        assert sorted(op for _, op in order) == sorted(
            op for ops in threads.values() for op in ops
        )
        for name, ops in threads.items():
            assert [op for n, op in order if n == name] == ops

    @given(seed=st.integers(0, 2**32), window=st.floats(0, 1, allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_race_fires_deterministic(self, seed, window):
        assert ThreadScheduler(seed=seed).race_fires(window) == ThreadScheduler(
            seed=seed
        ).race_fires(window)
