"""Property tests: classification invariants over all models and corpora."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.stats import wilson_interval
from repro.bugdb.enums import Application, FaultClass, TriggerKind
from repro.bugdb.model import TriggerEvidence
from repro.classify.recovery_model import RecoveryModel
from repro.classify.rules import RuleClassifier
from repro.classify.text import TextClassifier
from repro.corpus.synthetic import synthetic_corpus

recovery_models = st.builds(
    RecoveryModel,
    preserves_all_state=st.booleans(),
    kills_application_processes=st.booleans(),
    auto_extends_storage=st.booleans(),
    reclaims_leaked_os_resources=st.booleans(),
    expects_external_repair=st.booleans(),
)

triggers = st.sampled_from(list(TriggerKind))


class TestClassifierInvariants:
    @given(model=recovery_models)
    @settings(max_examples=32, deadline=None)
    def test_no_trigger_is_always_environment_independent(self, model):
        result = RuleClassifier(model).classify_evidence(TriggerEvidence())
        assert result.fault_class is FaultClass.ENV_INDEPENDENT

    @given(model=recovery_models, trigger=triggers)
    @settings(max_examples=100, deadline=None)
    def test_any_trigger_is_environment_dependent(self, model, trigger):
        evidence = TriggerEvidence(trigger=trigger)
        result = RuleClassifier(model).classify_evidence(evidence)
        if trigger is TriggerKind.NONE:
            assert result.fault_class is FaultClass.ENV_INDEPENDENT
        else:
            assert result.fault_class in (
                FaultClass.ENV_DEP_NONTRANSIENT,
                FaultClass.ENV_DEP_TRANSIENT,
            )

    @given(model=recovery_models, trigger=triggers)
    @settings(max_examples=100, deadline=None)
    def test_classification_is_deterministic(self, model, trigger):
        evidence = TriggerEvidence(trigger=trigger)
        classifier = RuleClassifier(model)
        assert (
            classifier.classify_evidence(evidence).fault_class
            is classifier.classify_evidence(evidence).fault_class
        )

    @given(model=recovery_models, trigger=triggers)
    @settings(max_examples=100, deadline=None)
    def test_transient_iff_condition_clears(self, model, trigger):
        if trigger is TriggerKind.NONE:
            return
        result = RuleClassifier(model).classify_evidence(TriggerEvidence(trigger=trigger))
        expected_transient = model.condition_clears_on_retry(trigger)
        assert (result.fault_class is FaultClass.ENV_DEP_TRANSIENT) == expected_transient


class TestSyntheticCorpusRecovery:
    @given(
        ei=st.integers(0, 20),
        edn=st.integers(0, 10),
        edt=st.integers(0, 10),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_text_classifier_recovers_any_synthetic_mix(self, ei, edn, edt, seed):
        if ei + edn + edt == 0:
            return
        corpus = synthetic_corpus(
            Application.MYSQL, env_independent=ei, nontransient=edn, transient=edt, seed=seed
        )
        classifier = TextClassifier()
        truth = corpus.ground_truth()
        for report in corpus.to_reports(attach_evidence=False):
            assert classifier.classify_report(report).fault_class is truth[report.report_id]


class TestWilsonProperties:
    @given(total=st.integers(1, 500), data=st.data())
    @settings(max_examples=80, deadline=None)
    def test_interval_contains_point_estimate(self, total, data):
        successes = data.draw(st.integers(0, total))
        low, high = wilson_interval(successes, total)
        assert 0.0 <= low <= successes / total <= high <= 1.0

    @given(total=st.integers(1, 200), data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_higher_confidence_is_wider(self, total, data):
        successes = data.draw(st.integers(0, total))
        low95, high95 = wilson_interval(successes, total, z=1.96)
        low99, high99 = wilson_interval(successes, total, z=2.58)
        assert high99 - low99 >= high95 - low95
