"""The scenario.* study nodes: grid wiring and bit-identical matrices."""

import pytest

from repro.cli import main
from repro.scenarios.engine import INTERACTION_CLASSES
from repro.scenarios.nodes import (
    BASELINE_NODE,
    PAIRS_FAMILY,
    SCENARIO_BUDGET,
    TEMPORAL_NODE,
    scenario_pair_labels,
)
from repro.studygraph import (
    StudyContext,
    default_registry,
    run_single_node,
    run_study,
)

_TARGETS = [PAIRS_FAMILY, TEMPORAL_NODE]


@pytest.fixture(scope="module")
def serial_result():
    return run_study(StudyContext.default(), nodes=list(_TARGETS), outputs=list(_TARGETS))


class TestGridWiring:
    def test_pair_labels_are_a_pure_function_of_the_catalog(self, study):
        default = scenario_pair_labels()
        explicit = scenario_pair_labels(study)
        assert default == explicit
        assert len(default) == SCENARIO_BUDGET
        assert len(set(default)) == SCENARIO_BUDGET

    def test_labels_survive_grid_name_validation(self):
        """Fault ids contain none of the grid-reserved characters, so the
        registered family (which validates axis values) holds every label."""
        registry = default_registry()
        family = registry.family(PAIRS_FAMILY)
        assert family.size == SCENARIO_BUDGET
        assert family.axes == (("pair", tuple(scenario_pair_labels())),)
        assert family.aggregate == PAIRS_FAMILY

    def test_scenario_nodes_are_registered(self):
        registry = default_registry()
        assert BASELINE_NODE in registry
        assert TEMPORAL_NODE in registry
        assert PAIRS_FAMILY in registry

    def test_every_pair_point_depends_on_the_shared_baseline(self):
        registry = default_registry()
        for name in registry.family(PAIRS_FAMILY).points:
            assert registry.node(name).deps == (BASELINE_NODE,)


class TestMatrixInvariance:
    def test_parallel_run_matches_serial(self, serial_result):
        parallel = run_study(
            StudyContext.default(workers=4),
            nodes=list(_TARGETS),
            outputs=list(_TARGETS),
        )
        assert parallel.outputs == serial_result.outputs
        assert {n: r.digest for n, r in parallel.runs.items()} == {
            n: r.digest for n, r in serial_result.runs.items()
        }

    def test_dispatch_order_never_changes_the_matrix(self, serial_result):
        """Longest-first dispatch (perfdb priorities) reorders execution
        only; verdicts and digests are identical to FIFO."""
        registry = default_registry()
        closure = registry.topo_order(list(_TARGETS))
        priorities = {name: float(i) for i, name in enumerate(closure)}
        prioritized = run_study(
            StudyContext.default(workers=2),
            nodes=list(_TARGETS),
            outputs=list(_TARGETS),
            priorities=priorities,
        )
        assert prioritized.outputs == serial_result.outputs

    def test_single_node_path_matches_batch(self, serial_result):
        """`run_single_node` is the serve daemon's execution path: a
        served matrix is byte-identical to the batch one."""
        payload = run_single_node(PAIRS_FAMILY)
        assert payload == serial_result.outputs[PAIRS_FAMILY]

    def test_warm_rerun_executes_nothing_and_matches(self, tmp_path):
        cold = run_study(
            StudyContext.default(cache_dir=tmp_path / "memo"),
            nodes=[PAIRS_FAMILY],
            outputs=[PAIRS_FAMILY],
        )
        warm = run_study(
            StudyContext.default(cache_dir=tmp_path / "memo"),
            nodes=[PAIRS_FAMILY],
            outputs=[PAIRS_FAMILY],
        )
        assert warm.executed == 0
        assert warm.outputs == cold.outputs


class TestMatrixContent:
    def test_counts_cover_the_budget(self, serial_result):
        payload = serial_result.outputs[PAIRS_FAMILY]
        assert sum(payload["counts"].values()) == SCENARIO_BUDGET
        assert set(payload["counts"]) == set(INTERACTION_CLASSES)

    def test_sample_contains_a_recovery_defeated_pair(self, serial_result):
        """The acceptance headline: at least one catalog pair where each
        fault is survivable alone but the composition defeats recovery."""
        payload = serial_result.outputs[PAIRS_FAMILY]
        assert payload["counts"]["recovery-defeated"] >= 1
        assert payload["defeated"]
        assert all("+" in pair for pair in payload["defeated"])

    def test_matrix_text_lists_defeated_pairs(self, serial_result):
        payload = serial_result.outputs[PAIRS_FAMILY]
        assert "Pair-interaction matrix" in payload["text"]
        for pair in payload["defeated"]:
            assert pair in payload["text"]

    def test_baseline_text_reports_survival_rate(self, serial_result):
        baseline = run_single_node(BASELINE_NODE)
        survived = sum(
            entry["survived"] for entry in baseline["baselines"].values()
        )
        assert baseline["text"].endswith(f"{survived}/139 survived")

    def test_temporal_table_has_one_row_per_archive(self, serial_result):
        payload = serial_result.outputs[TEMPORAL_NODE]
        assert [p["application"] for p in payload["profiles"]] == [
            "apache",
            "gnome",
            "mysql",
            "all",
        ]
        assert "Temporal clustering" in payload["text"]


class TestCli:
    def test_scenario_matrix_prints_the_aggregate_text(self, capsys, serial_result):
        assert main(["scenario", "matrix", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert out == serial_result.outputs[PAIRS_FAMILY]["text"] + "\n"

    def test_scenario_status_defaults_to_the_scenario_closure(self, capsys):
        assert main(["scenario", "status", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert PAIRS_FAMILY in out
        assert TEMPORAL_NODE in out

    def test_scenario_run_targets_the_scenario_nodes(self, capsys, serial_result):
        assert (
            main(
                [
                    "scenario",
                    "run",
                    "--no-cache",
                    "--quiet",
                    "--workers",
                    "2",
                    "--show",
                    PAIRS_FAMILY,
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Study run:" in out
        assert serial_result.outputs[PAIRS_FAMILY]["text"] in out
