"""Temporal clustering: gaps, burstiness, cluster sizes, archive profiles."""

import datetime

from repro.scenarios.temporal import (
    TemporalProfile,
    arrival_gaps,
    burstiness,
    cluster_sizes,
    profile_dates,
    temporal_profile,
)


def _dates(*days):
    return [datetime.date(1999, 1, 1) + datetime.timedelta(days=d) for d in days]


class TestArrivalGaps:
    def test_gaps_come_from_sorted_dates(self):
        assert arrival_gaps(_dates(10, 0, 3)) == [3.0, 7.0]

    def test_simultaneous_reports_produce_zero_gaps(self):
        assert arrival_gaps(_dates(5, 5, 5)) == [0.0, 0.0]

    def test_fewer_than_two_dates_produce_no_gaps(self):
        assert arrival_gaps(_dates(1)) == []
        assert arrival_gaps([]) == []


class TestBurstiness:
    def test_regular_arrivals_are_maximally_antibursty(self):
        assert burstiness([7.0, 7.0, 7.0, 7.0]) == -1.0

    def test_bursty_arrivals_are_positive(self):
        assert burstiness([0.0] * 20 + [365.0]) > 0.5

    def test_degenerate_inputs_are_zero(self):
        assert burstiness([]) == 0.0
        assert burstiness([3.0]) == 0.0
        assert burstiness([0.0, 0.0]) == 0.0


class TestClusterSizes:
    def test_reports_within_the_window_join_one_cluster(self):
        assert cluster_sizes(_dates(0, 3, 6, 100, 104), window_days=7) == [3, 2]

    def test_isolated_reports_are_singleton_clusters(self):
        assert cluster_sizes(_dates(0, 50, 100), window_days=7) == [1, 1, 1]

    def test_empty_archive_has_no_clusters(self):
        assert cluster_sizes([]) == []


class TestProfiles:
    def test_profile_of_a_synthetic_archive(self):
        profile = profile_dates("x", _dates(0, 3, 6, 100), window_days=7)
        assert profile == TemporalProfile(
            application="x",
            faults=4,
            span_days=100,
            mean_gap_days=100 / 3,
            median_gap_days=3.0,
            burstiness=burstiness([3.0, 3.0, 94.0]),
            clusters=2,
            largest_cluster=3,
            multi_fault_share=0.75,
            window_days=7,
        )

    def test_study_profiles_cover_each_archive_plus_all(self, study):
        profiles = temporal_profile(study)
        assert [p.application for p in profiles] == [
            "apache",
            "gnome",
            "mysql",
            "all",
        ]
        assert profiles[-1].faults == sum(p.faults for p in profiles[:-1])
        assert all(-1.0 <= p.burstiness <= 1.0 for p in profiles)
        assert all(0.0 <= p.multi_fault_share <= 1.0 for p in profiles)
