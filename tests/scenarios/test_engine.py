"""The multi-fault engine: timelines, determinism, the interaction taxonomy."""

import pytest

from repro.recovery.driver import replay_fault
from repro.recovery.nodes import TECHNIQUES
from repro.scenarios.engine import (
    CLASS_AMPLIFIED,
    CLASS_INDEPENDENT,
    CLASS_MASKED,
    CLASS_RECOVERY_DEFEATED,
    INTERACTION_CLASSES,
    BaselineOutcome,
    Manifestation,
    ScenarioOutcome,
    baseline_outcomes,
    classify_interaction,
    run_scenario,
    scenario_timeline,
)
from repro.scenarios.enumerate import fault_index
from repro.scenarios.spec import SHAPE_CASCADED, pair_scenario

TECHNIQUE = "checkpoint-rollback"

#: A timing pair where each fault is survivable alone but the composition
#: defeats recovery (both faults re-fire while sharing one attempt budget).
DEFEATED_PAIR = ("GNOME-EDT-02", "GNOME-EDT-03")


@pytest.fixture(scope="module")
def faults(study):
    return fault_index(study)


@pytest.fixture(scope="module")
def baselines(study):
    return baseline_outcomes(study, TECHNIQUE)


def _outcome(fault_ids, *, survived, attempts, manifested=None):
    records = tuple(
        Manifestation(fault_id=fid, first_run=1, first_step=i, fires=1)
        for i, fid in enumerate(manifested if manifested is not None else fault_ids)
    )
    return ScenarioOutcome(
        scenario_id="scn-000000000000",
        shape="concurrent",
        technique=TECHNIQUE,
        fault_ids=tuple(fault_ids),
        survived=survived,
        attempts_used=attempts,
        manifested=records,
        collateral=(),
    )


class TestTimeline:
    def test_every_application_warms_up_first(self, study, faults):
        scenario = pair_scenario("APACHE-EI-01", "MYSQL-EDT-01")
        timeline = scenario_timeline(scenario, faults)
        apps = {app for app, _ in timeline}
        assert len(apps) == 2
        warmups = [step for step in timeline if step[1].startswith("warmup-")]
        assert timeline[: len(warmups)] == tuple(warmups)
        assert len(warmups) == 2 * len(apps)

    def test_concurrent_faults_run_back_to_back(self, faults):
        scenario = pair_scenario("GNOME-EDT-02", "GNOME-EDT-03")
        timeline = scenario_timeline(scenario, faults)
        fault_ops = timeline[-2:]
        assert {op for _, op in fault_ops} == {
            faults["GNOME-EDT-02"].workload_op,
            faults["GNOME-EDT-03"].workload_op,
        }

    def test_cascaded_phases_are_separated_by_gap_ops(self, faults):
        scenario = pair_scenario(
            "GNOME-EDT-02", "GNOME-EDT-03", shape=SHAPE_CASCADED
        )
        timeline = scenario_timeline(scenario, faults)
        assert any(op.startswith("phase-gap-") for _, op in timeline)


class TestBaselines:
    def test_baselines_match_single_fault_replay(self, study, baselines):
        """The pair classifier compares against exactly the verdicts the
        single-fault study measured -- fault by fault."""
        factory = TECHNIQUES[TECHNIQUE]
        for fault in study.all_faults():
            outcome = replay_fault(fault, factory())
            baseline = baselines[fault.fault_id]
            assert baseline.survived == outcome.survived
            assert baseline.attempts_used == outcome.attempts_used

    def test_baseline_covers_the_whole_catalog(self, baselines):
        assert len(baselines) == 139


class TestRunScenario:
    def test_replay_is_deterministic(self, faults):
        scenario = pair_scenario(*DEFEATED_PAIR)
        first = run_scenario(scenario, faults, TECHNIQUE)
        second = run_scenario(scenario, faults, TECHNIQUE)
        assert first == second

    def test_defeated_pair_survives_alone_but_not_together(
        self, faults, baselines
    ):
        scenario = pair_scenario(*DEFEATED_PAIR)
        outcome = run_scenario(scenario, faults, TECHNIQUE)
        assert all(baselines[fid].survived for fid in DEFEATED_PAIR)
        assert not outcome.survived
        assert classify_interaction(outcome, baselines) == CLASS_RECOVERY_DEFEATED

    def test_manifestations_record_first_fire_order(self, faults):
        scenario = pair_scenario(*DEFEATED_PAIR)
        outcome = run_scenario(scenario, faults, TECHNIQUE)
        firings = [(m.first_run, m.first_step) for m in outcome.manifested]
        assert firings == sorted(firings)
        assert all(m.fires >= 1 for m in outcome.manifested)

    def test_unknown_technique_raises(self, faults):
        with pytest.raises(KeyError):
            run_scenario(pair_scenario(*DEFEATED_PAIR), faults, "reboot-the-world")


class TestClassification:
    def test_recovery_defeated_takes_precedence(self):
        outcome = _outcome(("A", "B"), survived=False, attempts=3)
        baselines = {
            "A": BaselineOutcome("A", survived=True, attempts_used=1),
            "B": BaselineOutcome("B", survived=True, attempts_used=1),
        }
        assert classify_interaction(outcome, baselines) == CLASS_RECOVERY_DEFEATED

    def test_masked_when_a_fault_never_manifests(self):
        outcome = _outcome(
            ("A", "B"), survived=False, attempts=3, manifested=("A",)
        )
        baselines = {
            "A": BaselineOutcome("A", survived=False, attempts_used=3),
            "B": BaselineOutcome("B", survived=True, attempts_used=1),
        }
        assert classify_interaction(outcome, baselines) == CLASS_MASKED

    def test_amplified_when_survival_costs_extra_attempts(self):
        outcome = _outcome(("A", "B"), survived=True, attempts=5)
        baselines = {
            "A": BaselineOutcome("A", survived=True, attempts_used=1),
            "B": BaselineOutcome("B", survived=True, attempts_used=1),
        }
        assert classify_interaction(outcome, baselines) == CLASS_AMPLIFIED

    def test_independent_when_alone_outcomes_predict_the_joint(self):
        outcome = _outcome(("A", "B"), survived=True, attempts=2)
        baselines = {
            "A": BaselineOutcome("A", survived=True, attempts_used=1),
            "B": BaselineOutcome("B", survived=True, attempts_used=1),
        }
        assert classify_interaction(outcome, baselines) == CLASS_INDEPENDENT

    def test_missing_baseline_raises(self):
        outcome = _outcome(("A", "B"), survived=True, attempts=0)
        with pytest.raises(KeyError, match="no baselines"):
            classify_interaction(outcome, {})

    def test_taxonomy_is_complete_and_ordered(self):
        assert INTERACTION_CLASSES == (
            CLASS_INDEPENDENT,
            CLASS_MASKED,
            CLASS_AMPLIFIED,
            CLASS_RECOVERY_DEFEATED,
        )
