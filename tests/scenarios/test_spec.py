"""Scenario identity: content digests, canonical order, derived streams."""

import pytest

from repro.rng import DEFAULT_SEED
from repro.scenarios.spec import (
    SHAPE_CASCADED,
    SHAPE_CONCURRENT,
    SHAPE_NESTED,
    SHAPES,
    Scenario,
    ScenarioComponent,
    compose_scenario,
    pair_label,
    pair_scenario,
)


class TestComponentValidation:
    def test_empty_fault_id_rejected(self):
        with pytest.raises(ValueError, match="fault id"):
            ScenarioComponent(fault_id="")

    def test_negative_offset_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            ScenarioComponent(fault_id="A", activation_offset=-1)

    @pytest.mark.parametrize("window", [-0.1, 1.1])
    def test_window_outside_unit_interval_rejected(self, window):
        with pytest.raises(ValueError, match="overlap window"):
            ScenarioComponent(fault_id="A", overlap_window=window)


class TestScenarioValidation:
    def test_single_fault_rejected(self):
        with pytest.raises(ValueError, match="at least two"):
            Scenario.build(SHAPE_CONCURRENT, [ScenarioComponent(fault_id="A")])

    def test_repeated_fault_rejected(self):
        with pytest.raises(ValueError, match="repeats fault"):
            Scenario.build(
                SHAPE_CONCURRENT,
                [ScenarioComponent(fault_id="A"), ScenarioComponent(fault_id="A")],
            )

    def test_unknown_shape_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario shape"):
            Scenario.build(
                "overlapping",
                [ScenarioComponent(fault_id="A"), ScenarioComponent(fault_id="B")],
            )

    def test_components_are_canonically_ordered(self):
        scenario = Scenario.build(
            SHAPE_CONCURRENT,
            [ScenarioComponent(fault_id="B"), ScenarioComponent(fault_id="A")],
        )
        assert scenario.fault_ids == ("A", "B")


class TestScenarioDigest:
    def test_concurrent_digest_is_symmetric(self):
        assert (
            pair_scenario("APACHE-EI-01", "MYSQL-EDT-01").scenario_id
            == pair_scenario("MYSQL-EDT-01", "APACHE-EI-01").scenario_id
        )

    def test_digest_is_order_invariant_for_equal_offsets(self):
        forward = compose_scenario(("A", "B", "C"))
        backward = compose_scenario(("C", "B", "A"))
        assert forward.scenario_id == backward.scenario_id

    def test_digest_depends_on_shape(self):
        ids = {
            compose_scenario(("A", "B"), shape=shape).scenario_id
            for shape in SHAPES
        }
        assert len(ids) == 3

    def test_digest_depends_on_window(self):
        assert (
            pair_scenario("A", "B", overlap_window=0.3).scenario_id
            != pair_scenario("A", "B", overlap_window=0.6).scenario_id
        )

    def test_digest_shape_is_stable(self):
        scenario_id = pair_scenario("A", "B").scenario_id
        assert scenario_id.startswith("scn-")
        assert len(scenario_id) == len("scn-") + 12


class TestShapeGeometry:
    def test_concurrent_activates_everything_at_zero(self):
        scenario = compose_scenario(("A", "B", "C"), shape=SHAPE_CONCURRENT)
        assert [c.activation_offset for c in scenario.components] == [0, 0, 0]

    def test_nested_activates_one_step_apart(self):
        scenario = compose_scenario(("A", "B", "C"), shape=SHAPE_NESTED)
        assert [c.activation_offset for c in scenario.components] == [0, 1, 2]

    def test_cascaded_activates_in_separated_phases(self):
        scenario = compose_scenario(("A", "B", "C"), shape=SHAPE_CASCADED)
        assert [c.activation_offset for c in scenario.components] == [0, 2, 4]

    def test_nested_activation_order_follows_given_ids(self):
        scenario = compose_scenario(("B", "A"), shape=SHAPE_NESTED)
        assert scenario.fault_ids == ("B", "A")


class TestDerivedStreams:
    def test_seed_derives_from_scenario_identity(self):
        one = pair_scenario("A", "B")
        other = pair_scenario("A", "C")
        assert one.seed_for(DEFAULT_SEED) != other.seed_for(DEFAULT_SEED)
        assert one.seed_for(DEFAULT_SEED) == pair_scenario("B", "A").seed_for(
            DEFAULT_SEED
        )

    def test_stream_labels_are_distinct_per_fault(self):
        scenario = pair_scenario("A", "B")
        labels = {scenario.stream_label_for(fid) for fid in scenario.fault_ids}
        assert len(labels) == 2
        assert all(label.startswith(scenario.scenario_id) for label in labels)

    def test_same_fault_gets_fresh_stream_in_each_scenario(self):
        assert (
            pair_scenario("A", "B").stream_label_for("A")
            != pair_scenario("A", "C").stream_label_for("A")
        )

    def test_stream_label_for_outsider_raises(self):
        with pytest.raises(KeyError, match="not part of"):
            pair_scenario("A", "B").stream_label_for("C")

    def test_resolve_reports_missing_faults(self):
        with pytest.raises(KeyError, match="unknown faults"):
            pair_scenario("A", "B").resolve({})


class TestPairLabel:
    def test_label_joins_canonical_ids(self):
        assert pair_label(pair_scenario("B", "A")) == "A+B"
