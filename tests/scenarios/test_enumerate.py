"""Enumeration invariants: pair counts, symmetry dedup, stratified samples."""

import math

import pytest

from repro.scenarios.enumerate import (
    EXHAUSTIVE_STRATUM_LIMIT,
    TIMING_LABEL,
    class_label,
    enumerate_pairs,
    fault_index,
    pair_stratum,
    sample_k_scenarios,
    stratified_pair_sample,
)
from repro.scenarios.spec import SHAPE_NESTED


class TestFullEnumeration:
    def test_full_pair_space_is_c_139_2(self, study):
        scenarios = enumerate_pairs(study)
        assert len(scenarios) == math.comb(139, 2) == 9591

    def test_no_duplicates_under_symmetry(self, study):
        scenarios = enumerate_pairs(study)
        assert len({s.scenario_id for s in scenarios}) == len(scenarios)

    def test_every_pair_composes_two_distinct_faults(self, study):
        scenarios = enumerate_pairs(study)
        assert all(len(set(s.fault_ids)) == 2 for s in scenarios)

    def test_full_enumeration_is_deterministic(self, study):
        first = [s.scenario_id for s in enumerate_pairs(study)]
        second = [s.scenario_id for s in enumerate_pairs(study)]
        assert first == second


class TestStratifiedSample:
    @pytest.mark.parametrize("size", [10, 40, 100])
    def test_sample_size_is_exact(self, study, size):
        assert len(stratified_pair_sample(study, size)) == size

    def test_sample_is_deterministic(self, study):
        first = [s.scenario_id for s in stratified_pair_sample(study, 40)]
        second = [s.scenario_id for s in stratified_pair_sample(study, 40)]
        assert first == second

    def test_sample_has_no_duplicates(self, study):
        sample = stratified_pair_sample(study, 100)
        assert len({s.scenario_id for s in sample}) == 100

    def test_sample_seed_changes_the_draw(self, study):
        default = {s.scenario_id for s in stratified_pair_sample(study, 40)}
        other = {s.scenario_id for s in stratified_pair_sample(study, 40, seed=7)}
        assert default != other

    def test_sampled_digests_come_from_the_full_space(self, study):
        """Digests are invariant to enumeration order: every sampled id
        is exactly one of the ids full enumeration produces."""
        full = {s.scenario_id for s in enumerate_pairs(study)}
        sample = {s.scenario_id for s in stratified_pair_sample(study, 100)}
        assert sample <= full

    def test_small_strata_enter_whole(self, study):
        """The interaction-dense strata (at most EXHAUSTIVE_STRATUM_LIMIT
        pairs) are enumerated exhaustively before any sampling."""
        faults = fault_index(study)
        sample = stratified_pair_sample(study, 40)
        timing = [
            s
            for s in sample
            if pair_stratum(faults[s.fault_ids[0]], faults[s.fault_ids[1]])
            == (TIMING_LABEL, TIMING_LABEL)
        ]
        timing_faults = [f for f in faults.values() if class_label(f) == TIMING_LABEL]
        assert len(timing) == math.comb(len(timing_faults), 2) == 15
        assert 15 <= EXHAUSTIVE_STRATUM_LIMIT

    def test_every_stratum_is_represented(self, study):
        faults = fault_index(study)
        all_strata = {
            pair_stratum(faults[s.fault_ids[0]], faults[s.fault_ids[1]])
            for s in enumerate_pairs(study)
        }
        sampled_strata = {
            pair_stratum(faults[s.fault_ids[0]], faults[s.fault_ids[1]])
            for s in stratified_pair_sample(study, 40)
        }
        assert sampled_strata == all_strata

    def test_budget_larger_than_space_returns_everything(self, study):
        sample = stratified_pair_sample(study, 20_000)
        assert len(sample) == 9591

    def test_budgeted_enumeration_delegates_to_the_sample(self, study):
        assert [s.scenario_id for s in enumerate_pairs(study, budget=40)] == [
            s.scenario_id for s in stratified_pair_sample(study, 40)
        ]

    def test_zero_size_rejected(self, study):
        with pytest.raises(ValueError, match="at least 1"):
            stratified_pair_sample(study, 0)


class TestStrata:
    def test_class_label_splits_timing_faults(self, study):
        labels = {class_label(f) for f in study.all_faults()}
        assert labels == {"EI", "EDN", "EDT", TIMING_LABEL}

    def test_pair_stratum_is_unordered(self, study):
        faults = list(fault_index(study).values())
        assert pair_stratum(faults[0], faults[-1]) == pair_stratum(
            faults[-1], faults[0]
        )


class TestHigherOrderSampling:
    def test_k3_sample_is_deterministic_and_distinct(self, study):
        first = sample_k_scenarios(study, k=3, count=8)
        second = sample_k_scenarios(study, k=3, count=8)
        assert [s.scenario_id for s in first] == [s.scenario_id for s in second]
        assert len({s.scenario_id for s in first}) == 8
        assert all(len(s.fault_ids) == 3 for s in first)

    def test_shape_threads_through(self, study):
        sample = sample_k_scenarios(study, k=3, count=2, shape=SHAPE_NESTED)
        assert all(s.shape == SHAPE_NESTED for s in sample)

    def test_invalid_arguments_rejected(self, study):
        with pytest.raises(ValueError, match="at least two"):
            sample_k_scenarios(study, k=1, count=1)
        with pytest.raises(ValueError, match="at least 1"):
            sample_k_scenarios(study, k=2, count=0)
        with pytest.raises(ValueError, match="exceeds"):
            sample_k_scenarios(study, k=140, count=1)
