"""Seed regression: labelled scheduler streams never move single-fault verdicts.

The scenario engine gave timing defects independent scheduler streams
(derived from ``(scenario_id, fault_id)``).  The single-fault path keeps
drawing from the shared legacy stream -- these tests pin that stream to
an independently-constructed RNG and pin the replay verdicts the paper
reproduction has always produced, so the multi-fault machinery can never
silently shift the single-fault study.
"""

from repro.apps.faults import InjectedDefect
from repro.envmodel.scheduler import ThreadScheduler
from repro.recovery.campaign import TIMING_TRIGGERS
from repro.recovery.driver import replay_fault
from repro.recovery.nodes import TECHNIQUES
from repro.rng import make_rng

TECHNIQUE = "checkpoint-rollback"

#: (survived, attempts_used) for every timing-triggered fault under
#: checkpoint-rollback at the default seed -- the pre-scenario verdicts.
PINNED_TIMING_VERDICTS = {
    "APACHE-EDT-03": (True, 2),
    "GNOME-EDT-01": (True, 1),
    "GNOME-EDT-02": (True, 1),
    "GNOME-EDT-03": (True, 1),
    "MYSQL-EDT-01": (True, 1),
    "MYSQL-EDT-02": (True, 2),
}

#: Catalog-wide survival under checkpoint-rollback at the default seed.
PINNED_SURVIVAL = 12


class TestSharedStreamUnchanged:
    def test_unlabelled_draws_are_the_legacy_stream(self):
        """``race_fires`` without a label draws exactly the sequence the
        pre-labelled-stream scheduler drew: ``make_rng(seed, "scheduler")``."""
        scheduler = ThreadScheduler(seed=42)
        legacy = make_rng(42, "scheduler")
        drawn = [scheduler.race_fires(0.5) for _ in range(32)]
        expected = [legacy.random() < 0.5 for _ in range(32)]
        assert drawn == expected

    def test_labelled_draws_never_perturb_the_shared_stream(self):
        """Interleaving labelled draws (what a multi-fault scenario does)
        leaves the shared sequence byte-identical."""
        plain = ThreadScheduler(seed=7)
        interleaved = ThreadScheduler(seed=7)
        baseline = []
        mixed = []
        for index in range(16):
            baseline.append(plain.race_fires(0.5))
            interleaved.race_fires(0.5, label=f"scn:{index}")
            mixed.append(interleaved.race_fires(0.5))
        assert mixed == baseline

    def test_labelled_streams_are_deterministic_and_independent(self):
        one = ThreadScheduler(seed=9)
        other = ThreadScheduler(seed=9)
        a = [one.race_fires(0.5, label="scn:A") for _ in range(16)]
        b = [one.race_fires(0.5, label="scn:B") for _ in range(16)]
        assert a != b  # independent streams, not one stream shared
        assert a == [other.race_fires(0.5, label="scn:A") for _ in range(16)]

    def test_reseed_drops_labelled_streams(self):
        scheduler = ThreadScheduler(seed=3)
        first = [scheduler.race_fires(0.5, label="scn:A") for _ in range(8)]
        scheduler.reseed(3)
        second = [scheduler.race_fires(0.5, label="scn:A") for _ in range(8)]
        assert first == second


class TestSingleFaultVerdictsUnchanged:
    def test_defects_default_to_the_shared_stream(self, study):
        """The single-fault driver injects defects without a stream label,
        so its draws come from the legacy shared stream by construction."""
        fault = study.all_faults()[0]
        assert InjectedDefect(fault).stream_label is None

    def test_timing_verdicts_match_the_pre_scenario_pins(self, study):
        factory = TECHNIQUES[TECHNIQUE]
        timing = {
            f.fault_id: f
            for f in study.all_faults()
            if f.trigger in TIMING_TRIGGERS
        }
        assert set(timing) == set(PINNED_TIMING_VERDICTS)
        for fault_id, fault in timing.items():
            outcome = replay_fault(fault, factory())
            assert (outcome.survived, outcome.attempts_used) == (
                PINNED_TIMING_VERDICTS[fault_id]
            ), fault_id

    def test_catalog_survival_matches_the_pre_scenario_pin(self, study):
        factory = TECHNIQUES[TECHNIQUE]
        survived = sum(
            replay_fault(fault, factory()).survived
            for fault in study.all_faults()
        )
        assert survived == PINNED_SURVIVAL
