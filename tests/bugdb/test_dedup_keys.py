"""Tests for duplicate-detection keys and similarity."""

from repro.bugdb.dedup_keys import (
    content_tokens,
    jaccard_similarity,
    normalize_synopsis,
)


class TestNormalizeSynopsis:
    def test_case_and_punctuation_insensitive(self):
        assert normalize_synopsis("Server CRASHES, badly!") == normalize_synopsis(
            "server crashes badly"
        )

    def test_word_order_insensitive(self):
        assert normalize_synopsis("segfault on long URL") == normalize_synopsis(
            "long URL segfault on"
        )

    def test_version_numbers_removed(self):
        assert normalize_synopsis("crash in 1.3.4 handler") == normalize_synopsis(
            "crash in 3.22.25 handler"
        )

    def test_stopwords_removed(self):
        assert normalize_synopsis("the server crashes when it is loaded") == normalize_synopsis(
            "server crashes loaded"
        )

    def test_distinct_bugs_have_distinct_keys(self):
        key_a = normalize_synopsis("COUNT on an empty table crashes MySQL")
        key_b = normalize_synopsis("OPTIMIZE TABLE query crashes the server")
        assert key_a != key_b


class TestJaccard:
    def test_identical_sets(self):
        tokens = content_tokens("segfault long url handler")
        assert jaccard_similarity(tokens, tokens) == 1.0

    def test_disjoint_sets(self):
        assert jaccard_similarity(frozenset({"a"}), frozenset({"b"})) == 0.0

    def test_empty_sets_are_dissimilar(self):
        assert jaccard_similarity(frozenset(), frozenset()) == 0.0
        assert jaccard_similarity(frozenset({"a"}), frozenset()) == 0.0

    def test_partial_overlap(self):
        left = frozenset({"a", "b", "c"})
        right = frozenset({"b", "c", "d"})
        assert jaccard_similarity(left, right) == 2 / 4

    def test_symmetry(self):
        left = content_tokens("segfault parsing long headers")
        right = content_tokens("long headers make parsing die")
        assert jaccard_similarity(left, right) == jaccard_similarity(right, left)

    def test_reworded_duplicate_scores_high(self):
        original = content_tokens("dies with a segfault when the submitted URL is very long")
        duplicate = content_tokens("again: dies very long segfault submitted URL when with the a is")
        assert jaccard_similarity(original, duplicate) > 0.6
