"""Tests for the debbugs archive format (GNOME)."""

import datetime

import pytest

from repro.bugdb.debbugs import parse_archive, parse_report, render_archive, render_report
from repro.bugdb.enums import Application, Resolution, Severity, Status, Symptom
from repro.bugdb.model import BugReport, Comment
from repro.errors import ParseError


def make_report(**overrides):
    defaults = dict(
        report_id="1234",
        application=Application.GNOME,
        component="gnumeric",
        version="1.0",
        date=datetime.date(1999, 3, 5),
        reporter="user@example.net",
        synopsis="gnumeric crashes on tab in define-name dialog",
        severity=Severity.CRITICAL,
        status=Status.CLOSED,
        resolution=Resolution.FIXED,
        symptom=Symptom.CRASH,
        description="Pressing tab crashes the application.",
        how_to_repeat="Open the dialog and press tab.",
        environment="GNOME 1.0 on Linux 2.2",
        fix_summary="Initialized the focus chain.",
        comments=[
            Comment(author="dev@gnome.org", date=datetime.date(1999, 3, 12),
                    text="Reproduced; patch attached."),
        ],
    )
    defaults.update(overrides)
    return BugReport(**defaults)


class TestRoundTrip:
    def test_basic_round_trip(self):
        original = make_report()
        parsed = parse_report(render_report(original))
        assert parsed.report_id == original.report_id
        assert parsed.application is Application.GNOME
        assert parsed.component == original.component
        assert parsed.version == original.version
        assert parsed.date == original.date
        assert parsed.reporter == original.reporter
        assert parsed.synopsis == original.synopsis
        assert parsed.severity is original.severity
        assert parsed.status is Status.CLOSED
        assert parsed.resolution is Resolution.FIXED
        assert parsed.symptom is Symptom.CRASH
        assert parsed.description == original.description
        assert parsed.how_to_repeat == original.how_to_repeat
        assert parsed.fix_summary == original.fix_summary

    def test_comment_round_trip(self):
        parsed = parse_report(render_report(make_report()))
        assert len(parsed.comments) == 1
        assert parsed.comments[0].author == "dev@gnome.org"
        assert parsed.comments[0].text == "Reproduced; patch attached."

    def test_open_report_round_trip(self):
        original = make_report(status=Status.OPEN, resolution=Resolution.UNRESOLVED,
                               fix_summary="", comments=[])
        parsed = parse_report(render_report(original))
        assert parsed.status is Status.OPEN
        assert parsed.resolution is Resolution.UNRESOLVED
        assert parsed.fix_summary == ""

    def test_merge_control_round_trip(self):
        parsed = parse_report(render_report(make_report(duplicate_of="1200")))
        assert parsed.duplicate_of == "1200"

    def test_unreleased_tag_round_trip(self):
        parsed = parse_report(render_report(make_report(is_production_version=False)))
        assert not parsed.is_production_version

    @pytest.mark.parametrize("severity", list(Severity))
    def test_all_severities_round_trip(self, severity):
        parsed = parse_report(render_report(make_report(severity=severity)))
        assert parsed.severity is severity

    def test_archive_round_trip(self):
        reports = [make_report(report_id=str(1000 + index)) for index in range(4)]
        parsed = parse_archive(render_archive(reports))
        assert [r.report_id for r in parsed] == ["1000", "1001", "1002", "1003"]


class TestParseErrors:
    def test_bad_header(self):
        with pytest.raises(ParseError, match="bad report header"):
            parse_report("not a report header\nbody")

    def test_empty_block(self):
        with pytest.raises(ParseError, match="empty report block"):
            parse_report("")

    def test_missing_pseudo_header(self):
        text = render_report(make_report()).replace("  Version: 1.0\n", "")
        with pytest.raises(ParseError, match="Version"):
            parse_report(text)

    def test_unknown_severity(self):
        text = render_report(make_report()).replace("Severity: grave", "Severity: meh")
        with pytest.raises(ParseError, match="unknown severity"):
            parse_report(text)


class TestSplitArchive:
    def test_split_then_parse_equals_parse_archive(self):
        from repro.bugdb.debbugs import render_archive, split_archive

        reports = [make_report(report_id=str(2000 + i)) for i in range(7)]
        text = render_archive(reports)
        chunks = split_archive(text)
        assert len(chunks) == 7
        assert [parse_report(chunk) for chunk in chunks] == parse_archive(text)

    def test_form_feeds_never_leak_into_chunks(self):
        from repro.bugdb.debbugs import render_archive, split_archive

        text = render_archive([make_report(report_id=str(2000 + i)) for i in range(3)])
        for chunk in split_archive(text):
            assert "\x0c" not in chunk

    def test_empty_text(self):
        from repro.bugdb.debbugs import split_archive

        assert split_archive("") == []
