"""Tests for the inverted text index."""

from repro.bugdb.textindex import TextIndex
from repro.mining.keywords import KeywordMatcher, MYSQL_STUDY_KEYWORDS


class TestTextIndex:
    def build(self):
        index = TextIndex()
        index.add("d1", "the server crashed during startup")
        index.add("d2", "question about LEFT JOIN syntax")
        index.add("d3", "a race between two threads; crashes often")
        index.add("d4", "the stack trace shows nothing")
        return index

    def test_exact_lookup(self):
        index = self.build()
        assert index.lookup("crashed") == {"d1"}
        assert index.lookup("server") == {"d1"}
        assert index.lookup("missing") == set()

    def test_lookup_is_case_insensitive(self):
        index = self.build()
        assert index.lookup("LEFT") == {"d2"}

    def test_prefix_lookup(self):
        index = self.build()
        assert index.lookup_prefix("crash") == {"d1", "d3"}

    def test_prefix_does_not_cross_word_boundaries(self):
        # "trace" contains "race" but the token is "trace", so a "race"
        # prefix query must not match d4.
        index = self.build()
        assert index.lookup_prefix("race") == {"d3"}

    def test_search_any(self):
        index = self.build()
        assert index.search_any(("crash", "race")) == {"d1", "d3"}

    def test_search_all(self):
        index = self.build()
        assert index.search_all(("race", "crash")) == {"d3"}
        assert index.search_all(("race", "join")) == set()

    def test_search_all_empty_keywords(self):
        assert self.build().search_all(()) == set()

    def test_counts(self):
        index = self.build()
        assert index.document_count == 4
        assert index.token_count > 0

    def test_incremental_add_after_prefix_query(self):
        index = self.build()
        assert index.lookup_prefix("crash") == {"d1", "d3"}
        index.add("d5", "another crashing report")
        assert index.lookup_prefix("crash") == {"d1", "d3", "d5"}

    def test_agrees_with_keyword_matcher_on_archive(self, mysql):
        """Index-based search finds the same messages as the linear scan."""
        from repro.corpus.render import mysql_raw_archive
        from repro.bugdb import mbox

        messages = mbox.parse_archive(mysql_raw_archive(mysql, total_messages=1200))
        matcher = KeywordMatcher(MYSQL_STUDY_KEYWORDS)
        index = TextIndex()
        linear_hits = set()
        for message in messages:
            text = message.subject + "\n" + message.body
            index.add(message.message_id, text)
            if matcher.matches(text):
                linear_hits.add(message.message_id)
        assert index.search_any(MYSQL_STUDY_KEYWORDS) == linear_hits


class TestMerge:
    def test_merge_combines_postings(self):
        left = TextIndex()
        left.add("d1", "server crashed")
        right = TextIndex()
        right.add("d2", "another crash; a race too")
        left.merge(right)
        assert left.lookup("crashed") == {"d1"}
        assert left.lookup("crash") == {"d2"}
        assert left.lookup("race") == {"d2"}

    def test_merge_equals_serial_indexing(self):
        texts = [
            "server crashed during startup",
            "question about LEFT JOIN",
            "a race between threads",
            "segmentation fault in the parser",
        ]
        serial = TextIndex()
        for position, text in enumerate(texts):
            serial.add(position, text)
        left, right = TextIndex(), TextIndex()
        for position, text in enumerate(texts):
            (left if position < 2 else right).add(position, text)
        left.merge(right)
        assert left.document_count == serial.document_count
        assert left.search_any(MYSQL_STUDY_KEYWORDS) == (
            serial.search_any(MYSQL_STUDY_KEYWORDS)
        )
        for token in ("server", "race", "segmentation", "join"):
            assert left.lookup_prefix(token) == serial.lookup_prefix(token)

    def test_prefix_queries_see_merged_tokens(self):
        # merge must invalidate the sorted-token cache built by an
        # earlier prefix query.
        left = TextIndex()
        left.add("d1", "server crashed")
        assert left.lookup_prefix("crash") == {"d1"}
        right = TextIndex()
        right.add("d2", "crashing again")
        left.merge(right)
        assert left.lookup_prefix("crash") == {"d1", "d2"}

    def test_merge_empty_index_is_a_no_op(self):
        index = TextIndex()
        index.add("d1", "server crashed")
        index.merge(TextIndex())
        assert index.document_count == 1
        assert index.lookup("crashed") == {"d1"}

    def test_merge_never_double_counts_shared_doc_ids(self):
        # both sides indexed the same document (e.g. a record on a shard
        # boundary); the merged count is distinct documents, not a sum.
        left, right = TextIndex(), TextIndex()
        left.add("d1", "server crashed")
        left.add("d2", "race condition")
        right.add("d2", "race condition")
        right.add("d3", "deadlock found")
        left.merge(right)
        assert left.document_count == 3
        assert left.lookup("race") == {"d2"}

    def test_merge_with_no_new_tokens_keeps_prefix_cache(self):
        left, right = TextIndex(), TextIndex()
        left.add("d1", "server crashed")
        right.add("d2", "server crashed")
        assert left.lookup_prefix("crash") == {"d1"}
        cache = left._sorted_tokens
        assert cache is not None
        left.merge(right)
        # same token set: the sorted cache survives and stays correct
        assert left._sorted_tokens is cache
        assert left.lookup_prefix("crash") == {"d1", "d2"}


class TestSortedTokenCache:
    def test_add_existing_token_does_not_invalidate(self):
        index = TextIndex()
        index.add("d1", "server crashed")
        assert index.lookup_prefix("serv") == {"d1"}
        cache = index._sorted_tokens
        index.add("d2", "crashed server")  # no new tokens
        assert index._sorted_tokens is cache
        assert index.lookup_prefix("serv") == {"d1", "d2"}

    def test_new_token_inserted_into_live_cache(self):
        index = TextIndex()
        index.add("d1", "server crashed")
        assert index.lookup_prefix("serv") == {"d1"}
        cache = index._sorted_tokens
        index.add("d2", "assertion tripped")
        # the cache object is extended in place, never rebuilt
        assert index._sorted_tokens is cache
        assert index._sorted_tokens == sorted(index._postings)
        assert index.lookup_prefix("assert") == {"d2"}

    def test_iter_postings_sorted_and_complete(self):
        index = TextIndex()
        index.add(1, "zebra apple")
        index.add(0, "apple mango")
        postings = list(index.iter_postings())
        assert [token for token, _ in postings] == ["apple", "mango", "zebra"]
        assert dict(postings)["apple"] == [0, 1]
