"""Tests for the LSM-style segmented text index."""

import json

import pytest

from repro.bugdb.segments import (
    CompactionStats,
    SegmentedTextIndex,
    SegmentError,
    segment_from_index,
    segmented_equal_to_monolithic,
    write_segment,
)
from repro.bugdb.textindex import TextIndex

TEXTS = [
    "the server crashed during startup",
    "question about LEFT JOIN syntax",
    "a race between two threads; crashes often",
    "the stack trace shows nothing",
    "segmentation fault deep in the parser",
    "assertion failed: table handler returned error",
    "how do I tune the key buffer",
    "deadlock detected while inserting rows",
]

PROBES = ("crash", "race", "segmentation", "deadlock", "join", "missing", "the")


def monolithic(texts=TEXTS):
    index = TextIndex()
    for position, text in enumerate(texts):
        index.add(position, text)
    return index


class TestSegmentFiles:
    def test_write_segment_round_trips_postings(self, tmp_path):
        info = write_segment(
            tmp_path, "s1", [("crash", [0, 2]), ("race", [1])], doc_count=3
        )
        assert info.token_count == 2
        assert info.doc_count == 3
        assert (tmp_path / "s1.seg").exists()
        assert (tmp_path / "s1.toc").exists()
        toc = json.loads((tmp_path / "s1.toc").read_text())
        assert toc["doc_count"] == 3

    def test_segment_from_index_uses_sorted_postings(self, tmp_path):
        index = TextIndex()
        index.add(0, "zebra apple")
        index.add(1, "apple")
        info = segment_from_index(tmp_path, "s1", index)
        assert info.doc_count == 2
        lines = (tmp_path / "s1.seg").read_bytes().decode().splitlines()
        tokens = [line.split("\t")[0] for line in lines]
        assert tokens == sorted(tokens)


class TestSegmentedTextIndex:
    def build(self, tmp_path, *, memtable_limit=50_000):
        index = SegmentedTextIndex(tmp_path, memtable_limit=memtable_limit)
        for text in TEXTS:
            index.add(text)
        return index

    def test_add_returns_sequential_global_ids(self, tmp_path):
        index = SegmentedTextIndex(tmp_path)
        assert [index.add(text) for text in TEXTS] == list(range(len(TEXTS)))
        assert index.document_count == len(TEXTS)

    def test_ids_stay_sequential_across_auto_flush(self, tmp_path):
        # the add that trips the memtable limit must return its own id,
        # not one shifted by the flush it triggered.
        index = SegmentedTextIndex(tmp_path, memtable_limit=3)
        assert [index.add(text) for text in TEXTS] == list(range(len(TEXTS)))

    def test_memtable_only_queries_match_monolithic(self, tmp_path):
        index = self.build(tmp_path)
        assert segmented_equal_to_monolithic(index, monolithic(), probes=PROBES)

    def test_flushed_queries_match_monolithic(self, tmp_path):
        index = self.build(tmp_path)
        index.flush()
        assert index.segment_count == 1
        assert segmented_equal_to_monolithic(index, monolithic(), probes=PROBES)

    def test_auto_flush_at_memtable_limit(self, tmp_path):
        index = self.build(tmp_path, memtable_limit=3)
        assert index.segment_count >= 2
        assert index.document_count == len(TEXTS)
        assert segmented_equal_to_monolithic(index, monolithic(), probes=PROBES)

    def test_queries_span_segments_and_memtable(self, tmp_path):
        index = SegmentedTextIndex(tmp_path)
        for text in TEXTS[:4]:
            index.add(text)
        index.flush()
        for text in TEXTS[4:]:
            index.add(text)  # stays in the memtable
        assert index.lookup_prefix("crash") == monolithic().lookup_prefix("crash")
        assert index.lookup("deadlock") == monolithic().lookup("deadlock")

    def test_lookup_is_case_insensitive(self, tmp_path):
        index = self.build(tmp_path)
        index.flush()
        assert index.lookup("LEFT") == {1}

    def test_search_any_and_all(self, tmp_path):
        index = self.build(tmp_path)
        index.flush()
        mono = monolithic()
        keywords = ("crash", "race")
        assert index.search_any(keywords) == mono.search_any(keywords)
        assert index.search_all(keywords) == mono.search_all(keywords)
        assert index.search_all(()) == set()

    def test_persistence_across_reopen(self, tmp_path):
        index = self.build(tmp_path)
        index.flush()
        reopened = SegmentedTextIndex(tmp_path)
        assert reopened.document_count == len(TEXTS)
        assert segmented_equal_to_monolithic(reopened, monolithic(), probes=PROBES)

    def test_reopen_continues_global_id_space(self, tmp_path):
        index = self.build(tmp_path)
        index.flush()
        reopened = SegmentedTextIndex(tmp_path)
        assert reopened.add("yet another crash report") == len(TEXTS)
        assert len(TEXTS) in reopened.lookup_prefix("crash")

    def test_iter_postings_matches_monolithic(self, tmp_path):
        index = self.build(tmp_path, memtable_limit=3)
        assert list(index.iter_postings()) == list(monolithic().iter_postings())

    def test_commit_assigns_cumulative_doc_bases(self, tmp_path):
        left, right = TextIndex(), TextIndex()
        for position, text in enumerate(TEXTS[:5]):
            left.add(position, text)
        for position, text in enumerate(TEXTS[5:]):
            right.add(position, text)
        segment_from_index(tmp_path, "wal-000000", left)
        segment_from_index(tmp_path, "wal-000001", right)
        index = SegmentedTextIndex(tmp_path)
        committed = index.commit_segments(["wal-000000", "wal-000001"])
        assert [info.doc_base for info in committed] == [0, 5]
        assert segmented_equal_to_monolithic(index, monolithic(), probes=PROBES)

    def test_commit_missing_segment_raises(self, tmp_path):
        index = SegmentedTextIndex(tmp_path)
        with pytest.raises(SegmentError, match="not found"):
            index.commit_segments(["wal-999999"])

    def test_commit_rejects_already_committed_name(self, tmp_path):
        staged = TextIndex()
        staged.add(0, "crash report")
        segment_from_index(tmp_path, "wal-000001", staged)
        index = SegmentedTextIndex(tmp_path)
        index.commit_segments(["wal-000001"])
        with pytest.raises(SegmentError, match="already committed"):
            index.commit_segments(["wal-000001"])
        with pytest.raises(SegmentError, match="already committed"):
            SegmentedTextIndex(tmp_path).commit_segments(
                ["wal-000002", "wal-000002"]
            )

    def test_commit_with_memtable_documents_raises(self, tmp_path):
        staged = TextIndex()
        staged.add(0, "crash report")
        segment_from_index(tmp_path, "wal-000001", staged)
        index = SegmentedTextIndex(tmp_path)
        index.add("a memtable document")
        with pytest.raises(SegmentError, match="memtable"):
            index.commit_segments(["wal-000001"])
        # flush() keeps every id add() handed out, then the commit lands.
        index.flush()
        committed = index.commit_segments(["wal-000001"])[0]
        assert committed.doc_base == 1
        assert index.lookup("memtable") == {0}
        assert index.lookup("report") == {1}

    def test_commit_tolerates_dashless_digit_names(self, tmp_path):
        staged = TextIndex()
        staged.add(0, "crash report")
        segment_from_index(tmp_path, "123456", staged)
        index = SegmentedTextIndex(tmp_path)
        committed = index.commit_segments(["123456"])[0]
        assert committed.doc_count == 1
        assert index.next_segment_name() == "seg-123457"

    def test_reserved_names_never_collide_with_committed(self, tmp_path):
        index = self.build(tmp_path)
        index.flush()
        reopened = SegmentedTextIndex(tmp_path)
        committed = {info.name for info in reopened.segments}
        reserved = reopened.reserve_segment_names(3)
        assert len(set(reserved)) == 3
        assert not committed & set(reserved)
        numbers = {int(name.rsplit("-", 1)[-1]) for name in committed}
        assert all(
            int(name.rsplit("-", 1)[-1]) not in numbers for name in reserved
        )

    def test_status_shape(self, tmp_path):
        index = self.build(tmp_path)
        index.flush()
        status = index.status()
        assert status["documents"] == len(TEXTS)
        assert status["segment_count"] == 1
        assert status["size_bytes"] > 0
        assert status["memtable_documents"] == 0
        json.dumps(status)  # JSON-safe for the CLI

    def test_equivalence_reports_mismatched_probe(self, tmp_path):
        index = self.build(tmp_path)
        other = monolithic()
        other.add(99, "crashproof extra document")
        missed = []
        assert not segmented_equal_to_monolithic(
            index, other, probes=("crash",), on_mismatch=missed.append
        )
        assert missed == ["crash"]


class TestCompaction:
    def fill(self, tmp_path, *, docs=40, memtable_limit=5):
        index = SegmentedTextIndex(tmp_path, memtable_limit=memtable_limit)
        texts = [TEXTS[i % len(TEXTS)] + f" filler{i}" for i in range(docs)]
        for text in texts:
            index.add(text)
        index.flush()
        mono = TextIndex()
        for position, text in enumerate(texts):
            mono.add(position, text)
        return index, mono

    def test_tiered_compaction_reduces_segments(self, tmp_path):
        index, mono = self.fill(tmp_path)
        before = index.segment_count
        stats = index.compact()
        assert isinstance(stats, CompactionStats)
        assert stats.compacted
        assert index.segment_count < before
        assert segmented_equal_to_monolithic(index, mono, probes=PROBES)

    def test_full_compaction_yields_single_segment(self, tmp_path):
        index, mono = self.fill(tmp_path)
        stats = index.compact(full=True)
        assert stats.compacted
        assert index.segment_count == 1
        assert index.document_count == mono.document_count
        assert segmented_equal_to_monolithic(index, mono, probes=PROBES)
        assert list(index.iter_postings()) == list(mono.iter_postings())

    def test_compaction_survives_reopen(self, tmp_path):
        index, mono = self.fill(tmp_path)
        index.compact(full=True)
        reopened = SegmentedTextIndex(tmp_path)
        assert reopened.segment_count == 1
        assert segmented_equal_to_monolithic(reopened, mono, probes=PROBES)

    def test_compaction_removes_merged_files(self, tmp_path):
        index, _ = self.fill(tmp_path)
        index.compact(full=True)
        survivors = {info.name for info in index.segments}
        on_disk = {path.stem for path in index.root.glob("*.seg")}
        assert on_disk == survivors

    def test_compact_on_single_segment_is_a_no_op(self, tmp_path):
        index = SegmentedTextIndex(tmp_path)
        index.add("one crash")
        index.flush()
        stats = index.compact(full=True)
        assert not stats.compacted
        assert index.segment_count == 1

    def test_candidates_group_by_size_tier(self, tmp_path):
        index, _ = self.fill(tmp_path)
        candidates = index.compaction_candidates(tier_fanout=2)
        assert candidates
        for group in candidates:
            assert len(group) >= 2
