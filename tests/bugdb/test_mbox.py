"""Tests for the mbox mailing-list format (MySQL)."""

import datetime

import pytest

from repro.bugdb.mbox import MailMessage, parse_archive, render_archive, render_message
from repro.errors import ParseError


def make_message(**overrides):
    defaults = dict(
        message_id="msg-1@lists.mysql.com",
        sender="reporter@example.com",
        date=datetime.date(1999, 6, 10),
        subject="server crashes on ORDER BY with zero records",
        body="SELECT with order by crashes.\nmysql version: 3.22.25",
    )
    defaults.update(overrides)
    return MailMessage(**defaults)


class TestMailMessage:
    def test_normalized_subject_strips_re_prefixes(self):
        message = make_message(subject="Re: Re: server crashes")
        assert message.normalized_subject == "server crashes"

    def test_normalized_subject_is_case_insensitive_on_re(self):
        message = make_message(subject="RE: re: server crashes")
        assert message.normalized_subject == "server crashes"

    def test_is_reply_by_header(self):
        assert make_message(in_reply_to="root@x").is_reply
        assert not make_message().is_reply

    def test_is_reply_by_subject(self):
        assert make_message(subject="Re: anything").is_reply


class TestRoundTrip:
    def test_single_message_round_trip(self):
        original = make_message()
        parsed = parse_archive(render_message(original))
        assert len(parsed) == 1
        message = parsed[0]
        assert message.message_id == original.message_id
        assert message.sender == original.sender
        assert message.date == original.date
        assert message.subject == original.subject
        assert message.body == original.body
        assert message.in_reply_to is None

    def test_reply_round_trip(self):
        original = make_message(message_id="r1@x", in_reply_to="msg-1@lists.mysql.com",
                                subject="Re: server crashes")
        parsed = parse_archive(render_message(original))[0]
        assert parsed.in_reply_to == "msg-1@lists.mysql.com"

    def test_from_stuffing(self):
        # Body lines starting with "From " must survive the round trip.
        original = make_message(body="From here it looks bad.\nFrom  the logs: nothing.")
        parsed = parse_archive(render_message(original))[0]
        assert parsed.body == original.body

    def test_archive_round_trip_many(self):
        messages = [make_message(message_id=f"m{index}@x", subject=f"subject {index}")
                    for index in range(6)]
        parsed = parse_archive(render_archive(messages))
        assert [m.message_id for m in parsed] == [f"m{index}@x" for index in range(6)]

    def test_multiline_bodies_preserved(self):
        body = "line one\n\nline three after a blank"
        parsed = parse_archive(render_message(make_message(body=body)))[0]
        assert parsed.body == body


class TestParseErrors:
    def test_missing_subject(self):
        text = render_message(make_message()).replace("Subject: server crashes on ORDER BY with zero records\n", "")
        with pytest.raises(ParseError, match="subject"):
            parse_archive(text)

    def test_bad_date(self):
        text = render_message(make_message()).replace("Date: 1999-06-10", "Date: June 10")
        with pytest.raises(ParseError, match="bad Date"):
            parse_archive(text)

    def test_content_before_first_separator(self):
        with pytest.raises(ParseError, match="before first separator"):
            parse_archive("garbage\nFrom x 1999-06-10\nMessage-ID: <a@b>\nFrom: x\nDate: 1999-06-10\nSubject: s\n\nbody")

    def test_malformed_header_line(self):
        bad = "From x 1999-06-10\nMessage-ID <a@b>\n\nbody"
        with pytest.raises(ParseError, match="malformed header"):
            parse_archive(bad)

    def test_empty_archive(self):
        assert parse_archive("") == []


class TestMailDateParsing:
    def test_rfc822_with_weekday(self):
        from repro.bugdb.mbox import parse_mail_date
        import datetime

        assert parse_mail_date("Thu, 10 Jun 1999 12:01:02 +0200") == datetime.date(1999, 6, 10)

    def test_rfc822_without_weekday(self):
        from repro.bugdb.mbox import parse_mail_date
        import datetime

        assert parse_mail_date("10 Jun 1999") == datetime.date(1999, 6, 10)

    def test_two_digit_year(self):
        from repro.bugdb.mbox import parse_mail_date
        import datetime

        assert parse_mail_date("3 Mar 99") == datetime.date(1999, 3, 3)

    def test_two_digit_year_window_boundaries(self):
        from repro.bugdb.mbox import parse_mail_date
        import datetime

        # The study era only spans 1970-1999, so only 70-99 are safe.
        assert parse_mail_date("1 Jan 70") == datetime.date(1970, 1, 1)
        assert parse_mail_date("31 Dec 99") == datetime.date(1999, 12, 31)

    @pytest.mark.parametrize("value", ["1 Jan 69", "1 Jan 00", "15 Jun 04"])
    def test_two_digit_year_outside_window_is_ambiguous(self, value):
        from repro.bugdb.mbox import parse_mail_date

        with pytest.raises(ValueError, match="ambiguous two-digit year"):
            parse_mail_date(value)

    def test_four_digit_years_bypass_the_window(self):
        from repro.bugdb.mbox import parse_mail_date
        import datetime

        # 2004 is outside the study era but unambiguous as written.
        assert parse_mail_date("15 Jun 2004") == datetime.date(2004, 6, 15)

    def test_iso_still_accepted(self):
        from repro.bugdb.mbox import parse_mail_date
        import datetime

        assert parse_mail_date("1999-06-10") == datetime.date(1999, 6, 10)

    def test_garbage_rejected(self):
        from repro.bugdb.mbox import parse_mail_date

        with pytest.raises(ValueError, match="unparseable"):
            parse_mail_date("sometime last week")

    def test_rfc822_date_in_archive(self):
        text = (
            "From x 1999-06-10\n"
            "Message-ID: <a@b>\n"
            "From: x@example.com\n"
            "Date: Thu, 10 Jun 1999 12:01:02 +0200\n"
            "Subject: s\n"
            "\n"
            "body"
        )
        message = parse_archive(text)[0]
        import datetime

        assert message.date == datetime.date(1999, 6, 10)


class TestSplitArchive:
    def make_archive(self, count=5):
        messages = [
            make_message(
                message_id=f"m{i}@lists.mysql.com",
                subject=f"crash report {i}",
                body=f"body {i}\nFrom the start it crashed",
            )
            for i in range(count)
        ]
        return render_archive(messages), messages

    def test_split_then_parse_equals_parse_archive(self):
        from repro.bugdb.mbox import parse_message, split_archive

        text, _ = self.make_archive()
        chunks = split_archive(text)
        assert len(chunks) == 5
        assert [parse_message(chunk) for chunk in chunks] == parse_archive(text)

    def test_chunks_are_contiguous_slices(self):
        from repro.bugdb.mbox import split_archive

        text, _ = self.make_archive()
        assert "".join(split_archive(text)) == text

    def test_from_stuffed_bodies_do_not_split(self):
        from repro.bugdb.mbox import split_archive

        # "From " inside a body is escaped by the renderer, so the body
        # line above never becomes a record boundary.
        text, messages = self.make_archive(count=2)
        assert len(split_archive(text)) == 2
        assert parse_archive(text) == messages

    def test_blank_preamble_tolerated(self):
        from repro.bugdb.mbox import split_archive

        text, _ = self.make_archive(count=2)
        assert len(split_archive("\n\n" + text)) == 2

    def test_non_blank_preamble_rejected(self):
        from repro.bugdb.mbox import split_archive

        text, _ = self.make_archive(count=1)
        with pytest.raises(ParseError, match="content before first separator"):
            split_archive("not a separator\n" + text)

    def test_empty_text(self):
        from repro.bugdb.mbox import split_archive

        assert split_archive("") == []
