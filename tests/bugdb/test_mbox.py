"""Tests for the mbox mailing-list format (MySQL)."""

import datetime

import pytest

from repro.bugdb.mbox import MailMessage, parse_archive, render_archive, render_message
from repro.errors import ParseError


def make_message(**overrides):
    defaults = dict(
        message_id="msg-1@lists.mysql.com",
        sender="reporter@example.com",
        date=datetime.date(1999, 6, 10),
        subject="server crashes on ORDER BY with zero records",
        body="SELECT with order by crashes.\nmysql version: 3.22.25",
    )
    defaults.update(overrides)
    return MailMessage(**defaults)


class TestMailMessage:
    def test_normalized_subject_strips_re_prefixes(self):
        message = make_message(subject="Re: Re: server crashes")
        assert message.normalized_subject == "server crashes"

    def test_normalized_subject_is_case_insensitive_on_re(self):
        message = make_message(subject="RE: re: server crashes")
        assert message.normalized_subject == "server crashes"

    def test_is_reply_by_header(self):
        assert make_message(in_reply_to="root@x").is_reply
        assert not make_message().is_reply

    def test_is_reply_by_subject(self):
        assert make_message(subject="Re: anything").is_reply


class TestRoundTrip:
    def test_single_message_round_trip(self):
        original = make_message()
        parsed = parse_archive(render_message(original))
        assert len(parsed) == 1
        message = parsed[0]
        assert message.message_id == original.message_id
        assert message.sender == original.sender
        assert message.date == original.date
        assert message.subject == original.subject
        assert message.body == original.body
        assert message.in_reply_to is None

    def test_reply_round_trip(self):
        original = make_message(message_id="r1@x", in_reply_to="msg-1@lists.mysql.com",
                                subject="Re: server crashes")
        parsed = parse_archive(render_message(original))[0]
        assert parsed.in_reply_to == "msg-1@lists.mysql.com"

    def test_from_stuffing(self):
        # Body lines starting with "From " must survive the round trip.
        original = make_message(body="From here it looks bad.\nFrom  the logs: nothing.")
        parsed = parse_archive(render_message(original))[0]
        assert parsed.body == original.body

    def test_archive_round_trip_many(self):
        messages = [make_message(message_id=f"m{index}@x", subject=f"subject {index}")
                    for index in range(6)]
        parsed = parse_archive(render_archive(messages))
        assert [m.message_id for m in parsed] == [f"m{index}@x" for index in range(6)]

    def test_multiline_bodies_preserved(self):
        body = "line one\n\nline three after a blank"
        parsed = parse_archive(render_message(make_message(body=body)))[0]
        assert parsed.body == body


class TestParseErrors:
    def test_missing_subject(self):
        text = render_message(make_message()).replace("Subject: server crashes on ORDER BY with zero records\n", "")
        with pytest.raises(ParseError, match="subject"):
            parse_archive(text)

    def test_bad_date(self):
        text = render_message(make_message()).replace("Date: 1999-06-10", "Date: June 10")
        with pytest.raises(ParseError, match="bad Date"):
            parse_archive(text)

    def test_content_before_first_separator(self):
        with pytest.raises(ParseError, match="before first separator"):
            parse_archive("garbage\nFrom x 1999-06-10\nMessage-ID: <a@b>\nFrom: x\nDate: 1999-06-10\nSubject: s\n\nbody")

    def test_malformed_header_line(self):
        bad = "From x 1999-06-10\nMessage-ID <a@b>\n\nbody"
        with pytest.raises(ParseError, match="malformed header"):
            parse_archive(bad)

    def test_empty_archive(self):
        assert parse_archive("") == []


class TestMailDateParsing:
    def test_rfc822_with_weekday(self):
        from repro.bugdb.mbox import parse_mail_date
        import datetime

        assert parse_mail_date("Thu, 10 Jun 1999 12:01:02 +0200") == datetime.date(1999, 6, 10)

    def test_rfc822_without_weekday(self):
        from repro.bugdb.mbox import parse_mail_date
        import datetime

        assert parse_mail_date("10 Jun 1999") == datetime.date(1999, 6, 10)

    def test_two_digit_year(self):
        from repro.bugdb.mbox import parse_mail_date
        import datetime

        assert parse_mail_date("3 Mar 99") == datetime.date(1999, 3, 3)

    def test_iso_still_accepted(self):
        from repro.bugdb.mbox import parse_mail_date
        import datetime

        assert parse_mail_date("1999-06-10") == datetime.date(1999, 6, 10)

    def test_garbage_rejected(self):
        from repro.bugdb.mbox import parse_mail_date

        with pytest.raises(ValueError, match="unparseable"):
            parse_mail_date("sometime last week")

    def test_rfc822_date_in_archive(self):
        text = (
            "From x 1999-06-10\n"
            "Message-ID: <a@b>\n"
            "From: x@example.com\n"
            "Date: Thu, 10 Jun 1999 12:01:02 +0200\n"
            "Subject: s\n"
            "\n"
            "body"
        )
        message = parse_archive(text)[0]
        import datetime

        assert message.date == datetime.date(1999, 6, 10)
