"""Tests for JSON persistence of bug databases."""

import json

import pytest

from repro.bugdb.jsonstore import (
    dump_database,
    load_database,
    report_from_dict,
    report_to_dict,
)
from repro.errors import ParseError


class TestRoundTrip:
    def test_full_study_round_trips(self, study, tmp_path):
        db = study.to_database(attach_evidence=True)
        path = tmp_path / "study.json"
        dump_database(db, path)
        loaded = load_database(path)
        assert len(loaded) == 139
        for report in db:
            restored = loaded.get(report.application, report.report_id)
            assert restored == report

    def test_evidence_round_trips(self, apache, tmp_path):
        db = apache.to_reports(attach_evidence=True)
        data = report_to_dict(db[0])
        restored = report_from_dict(data)
        assert restored.evidence == db[0].evidence

    def test_reports_without_evidence_round_trip(self, apache):
        report = apache.faults[0].to_report(attach_evidence=False)
        assert report_from_dict(report_to_dict(report)).evidence is None

    def test_serialized_form_is_plain_json(self, apache, tmp_path):
        from repro.bugdb.database import BugDatabase

        path = tmp_path / "a.json"
        dump_database(BugDatabase(apache.to_reports()), path)
        payload = json.loads(path.read_text())
        assert payload["format_version"] == 1
        assert len(payload["reports"]) == 50


class TestErrors:
    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ParseError, match="invalid JSON"):
            load_database(path)

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "future.json"
        path.write_text(json.dumps({"format_version": 99, "reports": []}))
        with pytest.raises(ParseError, match="unsupported format version"):
            load_database(path)

    def test_malformed_record_rejected(self):
        with pytest.raises(ParseError, match="bad report record"):
            report_from_dict({"report_id": "only-this"})

    def test_bad_enum_value_rejected(self, apache):
        data = report_to_dict(apache.faults[0].to_report())
        data["severity"] = "apocalyptic"
        with pytest.raises(ParseError):
            report_from_dict(data)
