"""Tests for the composable query layer."""

import datetime

from repro.bugdb.database import BugDatabase
from repro.bugdb.enums import Application, Resolution, Severity, Status, Symptom
from repro.bugdb.model import BugReport
from repro.bugdb.query import Query


def make_report(report_id, **overrides):
    defaults = dict(
        report_id=report_id,
        application=Application.APACHE,
        component="core",
        version="1.3.4",
        date=datetime.date(1999, 1, 15),
        reporter="user@example.net",
        synopsis=f"report {report_id} crashes",
        severity=Severity.CRITICAL,
        symptom=Symptom.CRASH,
    )
    defaults.update(overrides)
    return BugReport(**defaults)


def build_db():
    return BugDatabase(
        [
            make_report("A"),
            make_report("B", severity=Severity.NON_CRITICAL),
            make_report("C", application=Application.GNOME, component="panel"),
            make_report("D", is_production_version=False),
            make_report("E", duplicate_of="A"),
            make_report("F", date=datetime.date(1998, 3, 1), version="1.2.4"),
            make_report("G", status=Status.CLOSED, resolution=Resolution.FIXED,
                        synopsis="hang in logging", symptom=Symptom.HANG),
        ]
    )


class TestQueryRefinements:
    def test_query_is_immutable_builder(self):
        base = Query()
        refined = base.where_application(Application.APACHE)
        assert base.application is None
        assert refined.application is Application.APACHE

    def test_application_filter(self):
        ids = {r.report_id for r in Query().where_application(Application.GNOME).run(build_db())}
        assert ids == {"C"}

    def test_min_severity(self):
        ids = {r.report_id for r in Query().where_min_severity(Severity.SERIOUS).run(build_db())}
        assert "B" not in ids
        assert "A" in ids

    def test_production_only(self):
        ids = {r.report_id for r in Query().where_production_only().run(build_db())}
        assert "D" not in ids

    def test_not_duplicate(self):
        ids = {r.report_id for r in Query().where_not_duplicate().run(build_db())}
        assert "E" not in ids

    def test_date_between(self):
        query = Query().where_date_between(datetime.date(1999, 1, 1), datetime.date(1999, 12, 31))
        ids = {r.report_id for r in query.run(build_db())}
        assert "F" not in ids
        assert "A" in ids

    def test_keywords(self):
        ids = {r.report_id for r in Query().where_keywords("hang").run(build_db())}
        assert ids == {"G"}

    def test_symptom_filter(self):
        ids = {r.report_id for r in Query().where_symptom(Symptom.HANG).run(build_db())}
        assert ids == {"G"}

    def test_status_filter(self):
        ids = {r.report_id for r in Query().where_status(Status.CLOSED).run(build_db())}
        assert ids == {"G"}

    def test_component_filter_uses_index(self):
        query = Query().where_application(Application.GNOME).where_component("panel")
        ids = {r.report_id for r in query.run(build_db())}
        assert ids == {"C"}

    def test_version_filter_uses_index(self):
        query = Query().where_application(Application.APACHE).where_version("1.2.4")
        ids = {r.report_id for r in query.run(build_db())}
        assert ids == {"F"}

    def test_extra_predicate(self):
        query = Query().where(lambda r: r.report_id in ("A", "B"))
        assert query.count(build_db()) == 2

    def test_chained_filters_conjunction(self):
        query = (
            Query()
            .where_application(Application.APACHE)
            .where_min_severity(Severity.SERIOUS)
            .where_production_only()
            .where_not_duplicate()
        )
        ids = {r.report_id for r in query.run(build_db())}
        assert ids == {"A", "F", "G"}

    def test_count_matches_run_length(self):
        query = Query().where_application(Application.APACHE)
        db = build_db()
        assert query.count(db) == len(query.run(db))
