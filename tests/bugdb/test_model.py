"""Tests for the bug-report data model."""

import datetime

import pytest

from repro.bugdb.enums import Application, Severity, Symptom, TriggerKind
from repro.bugdb.model import BugReport, Comment, TriggerEvidence


def make_report(**overrides):
    defaults = dict(
        report_id="PR-1",
        application=Application.APACHE,
        component="core",
        version="1.3.4",
        date=datetime.date(1999, 2, 1),
        reporter="user@example.net",
        synopsis="server crashes on long URL",
        severity=Severity.CRITICAL,
        symptom=Symptom.CRASH,
        description="The server dies with a segmentation fault.",
        how_to_repeat="Request a very long URL.",
    )
    defaults.update(overrides)
    return BugReport(**defaults)


class TestBugReport:
    def test_requires_report_id(self):
        with pytest.raises(ValueError, match="report_id"):
            make_report(report_id="")

    def test_requires_version(self):
        with pytest.raises(ValueError, match="version"):
            make_report(version="")

    def test_high_impact_iff_symptom_present(self):
        assert make_report().is_high_impact
        assert not make_report(symptom=None).is_high_impact

    def test_duplicate_detection(self):
        assert not make_report().is_duplicate
        assert make_report(duplicate_of="PR-0").is_duplicate

    def test_full_text_concatenates_all_fields(self):
        report = make_report(fix_summary="Bounds-checked the hash.")
        report.add_comment(
            Comment(author="dev@a.org", date=datetime.date(1999, 2, 10), text="confirmed here")
        )
        text = report.full_text
        assert "long URL" in text
        assert "segmentation fault" in text
        assert "Request a very long URL." in text
        assert "Bounds-checked the hash." in text
        assert "confirmed here" in text

    def test_full_text_skips_empty_fields(self):
        report = make_report(description="", how_to_repeat="")
        assert report.full_text == "server crashes on long URL"

    def test_matches_keywords_case_insensitive(self):
        report = make_report()
        assert report.matches_keywords(["SEGMENTATION"])
        assert report.matches_keywords(["nothing", "crash"])
        assert not report.matches_keywords(["deadlock"])


class TestTriggerEvidence:
    def test_default_is_environment_independent(self):
        assert not TriggerEvidence().environment_dependent

    def test_any_trigger_is_environment_dependent(self):
        evidence = TriggerEvidence(trigger=TriggerKind.DISK_FULL)
        assert evidence.environment_dependent

    def test_evidence_is_immutable(self):
        evidence = TriggerEvidence()
        with pytest.raises(AttributeError):
            evidence.trigger = TriggerKind.DISK_FULL
