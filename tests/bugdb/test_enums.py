"""Tests for the bug-report enumerations."""

import pytest

from repro.bugdb.enums import Application, FaultClass, Severity, Symptom, TriggerKind


class TestApplication:
    def test_display_names(self):
        assert Application.APACHE.display_name == "Apache"
        assert Application.GNOME.display_name == "GNOME"
        assert Application.MYSQL.display_name == "MySQL"

    def test_three_applications(self):
        assert len(Application) == 3


class TestSeverity:
    def test_ordering_means_at_least_as_severe(self):
        assert Severity.CRITICAL > Severity.SERIOUS > Severity.NON_CRITICAL > Severity.ENHANCEMENT

    @pytest.mark.parametrize(
        "text,expected",
        [
            ("critical", Severity.CRITICAL),
            ("grave", Severity.CRITICAL),
            ("serious", Severity.SERIOUS),
            ("severe", Severity.SERIOUS),
            ("important", Severity.SERIOUS),
            ("normal", Severity.NON_CRITICAL),
            ("non-critical", Severity.NON_CRITICAL),
            ("minor", Severity.NON_CRITICAL),
            ("wishlist", Severity.ENHANCEMENT),
            ("enhancement", Severity.ENHANCEMENT),
        ],
    )
    def test_from_text_aliases(self, text, expected):
        assert Severity.from_text(text) is expected

    def test_from_text_is_case_insensitive(self):
        assert Severity.from_text("  CRITICAL ") is Severity.CRITICAL

    def test_from_text_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown severity"):
            Severity.from_text("catastrophic")


class TestFaultClass:
    def test_only_env_independent_is_deterministic(self):
        assert FaultClass.ENV_INDEPENDENT.is_deterministic
        assert not FaultClass.ENV_DEP_NONTRANSIENT.is_deterministic
        assert not FaultClass.ENV_DEP_TRANSIENT.is_deterministic

    def test_only_transient_is_generic_recoverable(self):
        assert FaultClass.ENV_DEP_TRANSIENT.generic_recovery_likely
        assert not FaultClass.ENV_INDEPENDENT.generic_recovery_likely
        assert not FaultClass.ENV_DEP_NONTRANSIENT.generic_recovery_likely

    def test_values_match_paper_vocabulary(self):
        assert FaultClass.ENV_INDEPENDENT.value == "environment-independent"
        assert FaultClass.ENV_DEP_NONTRANSIENT.value == "environment-dependent-nontransient"
        assert FaultClass.ENV_DEP_TRANSIENT.value == "environment-dependent-transient"


class TestTriggerKind:
    def test_none_marks_environment_independence(self):
        assert TriggerKind.NONE.value == "none"

    def test_paper_triggers_present(self):
        # Every trigger the paper itemises in Section 5 must exist.
        for name in (
            "RESOURCE_LEAK",
            "FILE_DESCRIPTOR_EXHAUSTION",
            "DISK_FULL",
            "FILE_SIZE_LIMIT",
            "DISK_CACHE_FULL",
            "NETWORK_RESOURCE_EXHAUSTION",
            "HARDWARE_REMOVAL",
            "HOST_CONFIG_CHANGE",
            "DNS_MISCONFIGURED",
            "CORRUPT_EXTERNAL_STATE",
            "RACE_CONDITION",
            "SIGNAL_TIMING",
            "DNS_ERROR",
            "DNS_SLOW",
            "NETWORK_SLOW",
            "PROCESS_TABLE_FULL",
            "PORT_IN_USE",
            "WORKLOAD_TIMING",
            "ENTROPY_EXHAUSTION",
            "UNKNOWN_TRANSIENT",
        ):
            assert hasattr(TriggerKind, name)


class TestSymptom:
    def test_all_symptoms_high_impact(self):
        for symptom in Symptom:
            assert symptom.is_high_impact
