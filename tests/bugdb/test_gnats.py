"""Tests for the GNATS archive format (Apache)."""

import datetime

import pytest

from repro.bugdb.enums import Application, Resolution, Severity, Status, Symptom
from repro.bugdb.gnats import parse_archive, parse_pr, render_archive, render_pr
from repro.bugdb.model import BugReport, Comment
from repro.errors import ParseError


def make_report(**overrides):
    defaults = dict(
        report_id="PR-3487",
        application=Application.APACHE,
        component="mod_cgi",
        version="1.3.4",
        date=datetime.date(1999, 2, 1),
        reporter="user@example.net",
        synopsis="child crashes on CGI output with no headers",
        severity=Severity.CRITICAL,
        status=Status.CLOSED,
        resolution=Resolution.FIXED,
        symptom=Symptom.CRASH,
        description="Multi-line\ndescription text.",
        how_to_repeat="Install a one-line CGI.\nRequest it.",
        environment="Apache 1.3.4 on Linux 2.2",
        fix_summary="Defaulted the content type.",
        comments=[
            Comment(author="dev@apache.org", date=datetime.date(1999, 2, 14),
                    text="Confirmed on two platforms.\nFix committed."),
        ],
    )
    defaults.update(overrides)
    return BugReport(**defaults)


class TestRoundTrip:
    def test_single_pr_round_trip(self):
        original = make_report()
        parsed = parse_pr(render_pr(original))
        assert parsed.report_id == original.report_id
        assert parsed.component == original.component
        assert parsed.version == original.version
        assert parsed.date == original.date
        assert parsed.synopsis == original.synopsis
        assert parsed.severity is original.severity
        assert parsed.status is original.status
        assert parsed.resolution is original.resolution
        assert parsed.symptom is original.symptom
        assert parsed.description == original.description
        assert parsed.how_to_repeat == original.how_to_repeat
        assert parsed.environment == original.environment
        assert parsed.fix_summary == original.fix_summary
        assert parsed.is_production_version == original.is_production_version

    def test_comments_round_trip(self):
        parsed = parse_pr(render_pr(make_report()))
        assert len(parsed.comments) == 1
        comment = parsed.comments[0]
        assert comment.author == "dev@apache.org"
        assert comment.date == datetime.date(1999, 2, 14)
        assert comment.text == "Confirmed on two platforms.\nFix committed."

    def test_duplicate_marker_round_trip(self):
        parsed = parse_pr(render_pr(make_report(duplicate_of="PR-100")))
        assert parsed.duplicate_of == "PR-100"

    def test_non_production_round_trip(self):
        parsed = parse_pr(render_pr(make_report(is_production_version=False)))
        assert not parsed.is_production_version

    def test_evidence_never_serialized(self):
        parsed = parse_pr(render_pr(make_report()))
        assert parsed.evidence is None

    def test_archive_round_trip_many(self):
        reports = [make_report(report_id=f"PR-{index}") for index in range(5)]
        parsed = parse_archive(render_archive(reports))
        assert [r.report_id for r in parsed] == [f"PR-{index}" for index in range(5)]

    @pytest.mark.parametrize("severity", list(Severity))
    def test_all_severities_round_trip(self, severity):
        parsed = parse_pr(render_pr(make_report(severity=severity)))
        assert parsed.severity is severity

    @pytest.mark.parametrize("symptom", list(Symptom) + [None])
    def test_all_symptoms_round_trip(self, symptom):
        parsed = parse_pr(render_pr(make_report(symptom=symptom)))
        assert parsed.symptom is symptom


class TestParseErrors:
    def test_missing_required_field(self):
        text = render_pr(make_report()).replace(">Number:         PR-3487\n", "")
        with pytest.raises(ParseError, match="Number"):
            parse_pr(text)

    def test_bad_date(self):
        text = render_pr(make_report()).replace("1999-02-01", "not-a-date")
        with pytest.raises(ParseError, match="bad field value"):
            parse_pr(text)

    def test_bad_severity(self):
        text = render_pr(make_report()).replace("critical", "catastrophic")
        with pytest.raises(ParseError, match="bad field value"):
            parse_pr(text)

    def test_content_outside_section(self):
        with pytest.raises(ParseError, match="outside any section"):
            parse_pr("stray line\n" + render_pr(make_report()))

    def test_empty_archive_parses_to_nothing(self):
        assert parse_archive("") == []


class TestSplitArchive:
    def test_split_then_parse_equals_parse_archive(self):
        from repro.bugdb.gnats import render_archive, split_archive

        reports = [make_report(report_id=f"PR-{3500 + i}") for i in range(7)]
        text = render_archive(reports)
        chunks = split_archive(text)
        assert len(chunks) == 7
        assert [parse_pr(chunk) for chunk in chunks] == parse_archive(text)

    def test_separator_lines_never_leak_into_chunks(self):
        from repro.bugdb.gnats import render_archive, split_archive

        text = render_archive([make_report(report_id=f"PR-{3500 + i}") for i in range(3)])
        for chunk in split_archive(text):
            assert ">Number:" in chunk
            assert not chunk.startswith("=")

    def test_empty_text(self):
        from repro.bugdb.gnats import split_archive

        assert split_archive("") == []
