"""Tests for the indexed bug database."""

import datetime

import pytest

from repro.bugdb.database import BugDatabase
from repro.bugdb.enums import Application, Severity, Symptom
from repro.bugdb.model import BugReport
from repro.errors import CorpusError


def make_report(report_id, *, app=Application.APACHE, component="core",
                version="1.3.4", severity=Severity.CRITICAL):
    return BugReport(
        report_id=report_id,
        application=app,
        component=component,
        version=version,
        date=datetime.date(1999, 1, 1),
        reporter="user@example.net",
        synopsis=f"synopsis {report_id}",
        severity=severity,
        symptom=Symptom.CRASH,
    )


class TestBugDatabase:
    def test_add_and_len(self):
        db = BugDatabase([make_report("A"), make_report("B")])
        assert len(db) == 2

    def test_duplicate_key_rejected(self):
        db = BugDatabase([make_report("A")])
        with pytest.raises(CorpusError, match="duplicate report id"):
            db.add(make_report("A"))

    def test_same_id_different_application_allowed(self):
        db = BugDatabase()
        db.add(make_report("A", app=Application.APACHE))
        db.add(make_report("A", app=Application.GNOME))
        assert len(db) == 2

    def test_get(self):
        db = BugDatabase([make_report("A")])
        assert db.get(Application.APACHE, "A").report_id == "A"
        with pytest.raises(KeyError):
            db.get(Application.APACHE, "missing")

    def test_contains(self):
        db = BugDatabase([make_report("A")])
        assert (Application.APACHE, "A") in db
        assert (Application.GNOME, "A") not in db

    def test_for_application(self):
        db = BugDatabase(
            [make_report("A"), make_report("B", app=Application.GNOME)]
        )
        assert [r.report_id for r in db.for_application(Application.APACHE)] == ["A"]
        assert db.for_application(Application.MYSQL) == []

    def test_for_component_index(self):
        db = BugDatabase(
            [make_report("A", component="core"), make_report("B", component="mod_cgi")]
        )
        assert [r.report_id for r in db.for_component(Application.APACHE, "mod_cgi")] == ["B"]

    def test_for_version_index(self):
        db = BugDatabase(
            [make_report("A", version="1.2.4"), make_report("B", version="1.3.4")]
        )
        assert [r.report_id for r in db.for_version(Application.APACHE, "1.2.4")] == ["A"]

    def test_at_least_severity(self):
        db = BugDatabase(
            [
                make_report("A", severity=Severity.CRITICAL),
                make_report("B", severity=Severity.SERIOUS),
                make_report("C", severity=Severity.NON_CRITICAL),
            ]
        )
        ids = sorted(r.report_id for r in db.at_least_severity(Severity.SERIOUS))
        assert ids == ["A", "B"]

    def test_select_full_scan(self):
        db = BugDatabase([make_report("A"), make_report("B")])
        assert [r.report_id for r in db.select(lambda r: r.report_id == "B")] == ["B"]

    def test_applications_and_versions(self):
        db = BugDatabase(
            [make_report("A", version="1.2.4"), make_report("B", version="1.3.4"),
             make_report("C", version="1.2.4")]
        )
        assert db.applications() == [Application.APACHE]
        assert db.versions(Application.APACHE) == ["1.2.4", "1.3.4"]

    def test_iteration_order_is_insertion_order(self):
        db = BugDatabase([make_report("B"), make_report("A")])
        assert [r.report_id for r in db] == ["B", "A"]
