"""Tests for CSV export."""

import csv
import io

from repro.analysis.distributions import release_distribution
from repro.analysis.tables import classification_table
from repro.reports.csvexport import (
    classification_table_csv,
    figure_series_csv,
    write_csv,
)


class TestClassificationTableCsv:
    def test_rows_and_header(self, apache):
        text = classification_table_csv(classification_table(apache))
        rows = list(csv.reader(io.StringIO(text)))
        assert rows[0] == ["application", "class", "faults"]
        assert rows[1] == ["apache", "environment-independent", "36"]
        assert len(rows) == 4

    def test_counts_sum_to_total(self, mysql):
        text = classification_table_csv(classification_table(mysql))
        rows = list(csv.reader(io.StringIO(text)))[1:]
        assert sum(int(row[2]) for row in rows) == 44


class TestFigureSeriesCsv:
    def test_one_row_per_bucket(self, apache):
        series = release_distribution(apache)
        text = figure_series_csv(series)
        rows = list(csv.reader(io.StringIO(text)))
        assert len(rows) == 1 + len(series.labels)
        assert rows[0][0] == "bucket"
        assert rows[0][-1] == "env_independent_fraction"

    def test_totals_column_consistent(self, apache):
        series = release_distribution(apache)
        rows = list(csv.reader(io.StringIO(figure_series_csv(series))))[1:]
        for index, row in enumerate(rows):
            class_counts = [int(value) for value in row[1:4]]
            assert sum(class_counts) == int(row[4]) == series.total(index)

    def test_fraction_column_parses(self, gnome):
        from repro.analysis.distributions import time_distribution

        series = time_distribution(gnome)
        rows = list(csv.reader(io.StringIO(figure_series_csv(series))))[1:]
        for row in rows:
            assert 0.0 <= float(row[-1]) <= 1.0


class TestWriteCsv:
    def test_writes_file(self, tmp_path, apache):
        path = tmp_path / "table.csv"
        write_csv(classification_table_csv(classification_table(apache)), path)
        assert path.read_text().startswith("application,class,faults")
