"""Tests for table and figure rendering."""

import pytest

from repro.analysis.distributions import release_distribution, time_distribution
from repro.analysis.tables import classification_table
from repro.reports.figures import render_figure
from repro.reports.markdown import markdown_classification_table, markdown_table
from repro.reports.tableformat import format_table, render_classification_table


class TestFormatTable:
    def test_basic_rendering(self):
        text = format_table(["a", "bb"], [[1, 2], [30, 40]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "bb" in lines[0]
        assert set(lines[1]) <= {"-", "+"}

    def test_title(self):
        text = format_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_column_alignment(self):
        text = format_table(["name", "n"], [["short", 1], ["a-much-longer-name", 22]])
        lines = text.splitlines()
        # All rows the same width.
        assert len({len(line) for line in lines[:1] + lines[2:]}) == 1

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError, match="row width"):
            format_table(["a"], [[1, 2]])

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text


class TestClassificationTableRendering:
    def test_contains_paper_vocabulary_and_counts(self, apache):
        text = render_classification_table(classification_table(apache))
        assert "Classification of faults for Apache" in text
        assert "environment-independent" in text
        assert "36" in text
        assert "total" in text
        assert "50" in text


class TestRenderFigure:
    def test_release_figure_lines(self, apache):
        series = release_distribution(apache)
        text = render_figure(series)
        lines = text.splitlines()
        assert series.title == lines[0]
        assert lines[1].startswith("legend:")
        assert len(lines) == 2 + len(series.labels)

    def test_bars_scale_with_counts(self, apache):
        series = release_distribution(apache)
        text = render_figure(series, width=20)
        bar_lines = text.splitlines()[2:]
        peak = max(series.totals())
        peak_line = bar_lines[series.totals().index(peak)]
        assert peak_line.count("#") + peak_line.count("o") + peak_line.count("+") >= 20

    def test_every_nonzero_class_visible(self, gnome):
        series = time_distribution(gnome, granularity="quarter")
        for index, line in enumerate(render_figure(series).splitlines()[2:]):
            from repro.bugdb.enums import FaultClass

            if series.counts[FaultClass.ENV_DEP_TRANSIENT][index] > 0:
                assert "+" in line

    def test_shares_annotated(self, apache):
        text = render_figure(release_distribution(apache))
        assert "env-indep=" in text
        assert "n=" in text

    def test_invalid_width(self, apache):
        with pytest.raises(ValueError):
            render_figure(release_distribution(apache), width=0)


class TestMarkdown:
    def test_markdown_table_shape(self):
        text = markdown_table(["a", "b"], [[1, 2]])
        lines = text.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | 2 |"

    def test_markdown_width_mismatch(self):
        with pytest.raises(ValueError):
            markdown_table(["a"], [[1, 2]])

    def test_markdown_classification_table(self, mysql):
        text = markdown_classification_table(classification_table(mysql))
        assert text.startswith("**Classification of faults for MySQL**")
        assert "| environment-independent | 38 |" in text
        assert "**44**" in text


class TestRenderFigureEdgeCases:
    def test_all_empty_buckets(self):
        from repro.analysis.distributions import FigureSeries
        from repro.bugdb.enums import FaultClass

        series = FigureSeries(
            title="empty",
            labels=("a", "b"),
            counts={fault_class: (0, 0) for fault_class in FaultClass},
        )
        text = render_figure(series)
        assert "n=0" in text
        assert "env-indep=0%" in text
