"""Tests for the full study report generator."""

import pytest

from repro.recovery import ProcessPairs, replay_study
from repro.reports.studyreport import render_study_report


@pytest.fixture(scope="module")
def report_text(study):
    return render_study_report(study)


class TestStudyReport:
    def test_contains_all_three_tables(self, report_text):
        for name in ("Apache", "GNOME", "MySQL"):
            assert f"Classification of faults for {name}" in report_text

    def test_contains_all_three_figures(self, report_text):
        assert "Distribution of faults for Apache over software releases" in report_text
        assert "Distribution of faults for GNOME over time" in report_text
        assert "Distribution of faults for MySQL over software releases" in report_text

    def test_contains_aggregate_numbers(self, report_text):
        assert "139" in report_text
        assert "72%-87%" in report_text
        assert "5%-14%" in report_text

    def test_contains_invariance_statistics(self, report_text):
        assert "class-proportion invariance" in report_text
        assert "invariant" in report_text

    def test_contains_lee_iyer_steps(self, report_text):
        assert "Lee & Iyer reconciliation" in report_text
        assert "0.82" in report_text
        assert "0.29" in report_text

    def test_contains_mitigation_coverage(self, report_text):
        assert "Mitigation coverage" in report_text
        assert "process pairs / rollback-retry" in report_text

    def test_conclusion_states_the_thesis(self, report_text):
        assert "application-generic recovery" in report_text
        assert "application-specific knowledge" in report_text

    def test_replay_section_optional(self, study, report_text):
        assert "Generic-recovery replay" not in report_text
        replay = replay_study(study, ProcessPairs)
        with_replay = render_study_report(study, replay_reports=[replay])
        assert "Generic-recovery replay" in with_replay
        assert "process-pairs" in with_replay


class TestMarkdownStudyReport:
    def test_markdown_contains_all_sections(self, study):
        from repro.reports.studyreport import render_study_report_markdown

        text = render_study_report_markdown(study)
        assert text.startswith("# Whither Generic Recovery")
        assert "## Tables 1–3" in text
        assert "## Figures 1–3" in text
        assert "## Aggregate (Section 5.4)" in text
        assert "## Lee & Iyer reconciliation (Section 7)" in text
        assert "| **total** | **139** |" not in text  # per-app tables only
        assert "**Conclusion:**" in text

    def test_markdown_replay_section(self, study):
        from repro.recovery import ProcessPairs, replay_study
        from repro.reports.studyreport import render_study_report_markdown

        replay = replay_study(study, ProcessPairs)
        text = render_study_report_markdown(study, replay_reports=[replay])
        assert "## Generic-recovery replay" in text
        assert "process-pairs" in text


class TestFaultCatalog:
    def test_catalog_covers_every_fault(self, study):
        from repro.reports.catalog import render_fault_catalog

        text = render_fault_catalog(study)
        for fault in study.all_faults():
            assert fault.fault_id in text

    def test_paper_examples_marked(self, study):
        from repro.reports.catalog import render_fault_catalog

        text = render_fault_catalog(study)
        assert text.count("(paper)") >= 15
        assert "**APACHE-EI-01** (paper)" in text
        assert "**APACHE-EI-06** (" in text  # synthesized: unmarked
        assert "**APACHE-EI-06** (paper)" not in text
