"""Scheduler mechanics on a toy graph: waves, memoization, laziness.

The toy producers are module-level so forked pool workers resolve them
by reference; the domain-level graph is covered by test_equivalence.
"""

import time
from pathlib import Path

import pytest

from repro.studygraph.context import StudyContext
from repro.studygraph.node import KIND_ARTIFACT, GridSpec, NodeSpec
from repro.studygraph.registry import GraphError, Registry
from repro.studygraph.scheduler import (
    memo_walls,
    order_longest_first,
    run_single_node,
    run_study,
    study_status,
    traced_node_walls,
)


def _root(ctx, inputs, params):
    return {"value": params["value"], "workers_seen": ctx.workers}


def _double(ctx, inputs, params):
    return {"value": inputs["root"]["value"] * 2}


def _total(ctx, inputs, params):
    total = inputs["root"]["value"] + inputs["double"]["value"]
    return {"total": total, "text": f"total: {total}"}


def _indep(ctx, inputs, params):
    return {"n": params["n"], "text": f"n: {params['n']}"}


def toy_registry():
    return Registry(
        [
            NodeSpec.build(
                "root", _root, params={"value": 3}, kind=KIND_ARTIFACT
            ),
            NodeSpec.build("double", _double, deps=("root",), kind=KIND_ARTIFACT),
            NodeSpec.build("total", _total, deps=("root", "double")),
            NodeSpec.build("indep", _indep, params={"n": 5}),
        ]
    )


def _ctx(tmp_path=None, workers=1):
    return StudyContext.default(
        workers=workers,
        cache_dir=None if tmp_path is None else tmp_path / "memo",
    )


def _data_path(context, key):
    return Path(context.cache.root) / key[:2] / f"{key}.sgdata.json"


class TestColdExecution:
    def test_executes_closure_in_waves(self):
        result = run_study(_ctx(), registry=toy_registry())
        assert result.executed == 4
        assert result.cached == 0
        assert result.waves >= 3  # root -> double -> total
        assert result.outputs["total"]["total"] == 9
        assert result.output_text("indep") == "n: 5"

    def test_targets_restrict_the_closure(self):
        result = run_study(_ctx(), nodes=["indep"], registry=toy_registry())
        assert set(result.runs) == {"indep"}

    def test_output_outside_closure_is_rejected(self):
        with pytest.raises(GraphError, match="not in the executed closure"):
            run_study(
                _ctx(), nodes=["indep"], outputs=["total"], registry=toy_registry()
            )

    def test_producers_always_see_serial_context(self):
        result = run_study(
            _ctx(workers=2),
            nodes=["total"],
            outputs=["root"],
            registry=toy_registry(),
        )
        # Nested campaigns must stay inline inside pool workers.
        assert result.outputs["root"]["workers_seen"] == 1


class TestParallelEquality:
    def test_worker_count_never_changes_payloads(self):
        serial = run_study(_ctx(), registry=toy_registry())
        parallel = run_study(_ctx(workers=2), registry=toy_registry())
        assert parallel.outputs == serial.outputs
        assert {name: run.digest for name, run in parallel.runs.items()} == {
            name: run.digest for name, run in serial.runs.items()
        }


class TestMemoization:
    def test_warm_rerun_is_fully_cached(self, tmp_path):
        cold = run_study(_ctx(tmp_path), registry=toy_registry())
        warm = run_study(_ctx(tmp_path), registry=toy_registry())
        assert warm.executed == 0
        assert warm.cached == len(cold.runs)
        assert warm.outputs == cold.outputs
        assert {name: run.digest for name, run in warm.runs.items()} == {
            name: run.digest for name, run in cold.runs.items()
        }

    def test_param_override_invalidates_only_its_cone(self, tmp_path):
        run_study(_ctx(tmp_path), registry=toy_registry())
        patched = toy_registry().with_overrides({"indep": {"n": 8}})
        rerun = run_study(_ctx(tmp_path), registry=patched)
        assert rerun.runs["indep"].status == "executed"
        assert rerun.runs["total"].status == "cached"
        assert rerun.output_text("indep") == "n: 8"

    def test_upstream_param_change_invalidates_downstream(self, tmp_path):
        run_study(_ctx(tmp_path), registry=toy_registry())
        patched = toy_registry().with_overrides({"root": {"value": 10}})
        rerun = run_study(_ctx(tmp_path), registry=patched)
        statuses = {name: run.status for name, run in rerun.runs.items()}
        assert statuses["root"] == "executed"
        assert statuses["double"] == "executed"
        assert statuses["total"] == "executed"
        assert statuses["indep"] == "cached"
        assert rerun.outputs["total"]["total"] == 30

    def test_warm_run_never_loads_unneeded_payloads(self, tmp_path):
        context = _ctx(tmp_path)
        cold = run_study(context, registry=toy_registry())
        # Destroy the heavy intermediate payloads; metadata stays intact.
        for name in ("root", "double"):
            _data_path(context, cold.runs[name].key).unlink()
        warm = run_study(_ctx(tmp_path), outputs=["total"], registry=toy_registry())
        assert warm.cached == 4
        assert warm.outputs["total"]["total"] == 9

    def test_rotted_data_entry_rebuilds_inline(self, tmp_path):
        context = _ctx(tmp_path)
        cold = run_study(context, registry=toy_registry())
        _data_path(context, cold.runs["total"].key).unlink()
        warm_context = _ctx(tmp_path)
        warm = run_study(warm_context, outputs=["total"], registry=toy_registry())
        assert warm.runs["total"].status == "cached"
        assert warm.outputs["total"]["total"] == 9
        assert warm_context.telemetry.counter("studygraph.payload_rebuilds") >= 1


class TestRunSingleNode:
    def test_returns_the_payload(self):
        payload = run_single_node("total", registry=toy_registry())
        assert payload["total"] == 9

    def test_overrides_flow_into_the_run(self):
        payload = run_single_node(
            "total",
            overrides={"root": {"value": 7}},
            registry=toy_registry(),
        )
        assert payload["total"] == 21


class TestStudyStatus:
    def test_states_progress_from_missing_to_cached(self, tmp_path):
        registry = toy_registry()
        before = dict(
            (row[0], row[2])
            for row in study_status(_ctx(tmp_path), registry=registry)
        )
        assert before["root"] == "missing"
        assert before["double"] == "unknown"  # upstream miss hides its key
        run_study(_ctx(tmp_path), registry=registry)
        after = dict(
            (row[0], row[2])
            for row in study_status(_ctx(tmp_path), registry=registry)
        )
        assert set(after.values()) == {"cached"}

    def test_trace_records_add_a_traced_column(self, tmp_path):
        registry = toy_registry()
        run_study(_ctx(tmp_path), registry=registry)
        trace = [
            {"name": "node:root", "span_id": "a", "parent_id": "w",
             "start": 0.0, "end": 0.25, "pid": 1},
            {"name": "node:root", "span_id": "b", "parent_id": "w",
             "start": 1.0, "end": 1.25, "pid": 1},
        ]
        rows = study_status(
            _ctx(tmp_path), registry=registry, trace_records=trace
        )
        by_name = {row[0]: row for row in rows}
        assert len(by_name["root"]) == 6
        assert by_name["root"][5] == "500.0"  # both spans summed
        assert by_name["double"][5] == "-"  # not in the trace


class TestWallHelpers:
    def test_traced_node_walls_sums_node_spans(self):
        trace = [
            {"name": "node:T1", "start": 0.0, "end": 1.0},
            {"name": "node:T1", "start": 2.0, "end": 2.5},
            {"name": "node:F1", "start": 0.0, "end": 0.25},
            {"name": "wave", "start": 0.0, "end": 9.0},
            {"name": "node:broken", "start": 5.0},  # no end: skipped
        ]
        walls = traced_node_walls(trace)
        assert walls == {
            "T1": pytest.approx(1.5),
            "F1": pytest.approx(0.25),
        }

    def test_memo_walls_reports_memoized_nodes(self, tmp_path):
        registry = toy_registry()
        assert memo_walls(_ctx(tmp_path), registry=registry) == {}
        run_study(_ctx(tmp_path), registry=registry)
        walls = memo_walls(_ctx(tmp_path), registry=registry)
        assert set(walls) == {"root", "double", "total", "indep"}
        assert all(seconds >= 0.0 for seconds in walls.values())

    def test_memo_walls_without_cache_is_empty(self):
        assert memo_walls(_ctx(), registry=toy_registry()) == {}


def _grid_point(ctx, inputs, params):
    # The deliberately-slow point: work time scales with the axis value,
    # but the payload depends only on the parameters.
    time.sleep(params["delay"])
    return {"delay": params["delay"], "text": f"delay: {params['delay']}"}


def grid_registry():
    """A toy graph with one grid family whose last point is the slowest."""
    registry = Registry(
        [NodeSpec.build("root", _root, params={"value": 3}, kind=KIND_ARTIFACT)]
    )
    grid = GridSpec.build(
        "sweep.delay",
        _grid_point,
        axes={"delay": (0.0, 0.005, 0.01, 0.05)},
        deps=("root",),
        kind=KIND_ARTIFACT,
    )
    registry.register_grid(
        grid,
        aggregate=NodeSpec.build(
            "sweep.delay", _total_delay, deps=tuple(grid.point_names())
        ),
    )
    return registry


def _total_delay(ctx, inputs, params):
    total = sum(payload["delay"] for payload in inputs.values())
    return {"total": total, "text": f"total delay: {total}"}


class TestOrderLongestFirst:
    def test_known_nodes_sort_longest_first_with_name_tiebreak(self):
        order = order_longest_first(
            ["a", "b", "c", "d"], {"a": 1.0, "b": 5.0, "c": 5.0, "d": 0.5}
        )
        assert order == ["b", "c", "a", "d"]

    def test_unseen_nodes_keep_fifo_position_after_estimated(self):
        order = order_longest_first(["x", "a", "y"], {"a": 1.0})
        assert order == ["a", "x", "y"]

    def test_unseen_grid_point_falls_back_to_family_median(self):
        priorities = {
            "sweep.g[x=1]": 4.0,
            "sweep.g[x=2]": 6.0,
            "fast": 1.0,
        }
        # x=3 has never run: its estimate is the family median (5.0),
        # so it still dispatches before the known-fast node.
        order = order_longest_first(["fast", "sweep.g[x=3]"], priorities)
        assert order == ["sweep.g[x=3]", "fast"]

    def test_empty_history_is_pure_fifo(self):
        assert order_longest_first(["b", "a"], {}) == ["b", "a"]


class TestSchedulingInvariance:
    """Dispatch order is scheduling-only: payloads never move."""

    def _digests(self, result):
        return {name: run.digest for name, run in result.runs.items()}

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_longest_first_matches_fifo_and_serial(self, workers):
        serial = run_study(_ctx(), registry=grid_registry())
        fifo = run_study(_ctx(workers=workers), registry=grid_registry())
        # Priorities mark the slow point as slow (and one point unseen,
        # exercising the family-median path mid-run).
        priorities = {
            "sweep.delay[delay=0.05]": 0.05,
            "sweep.delay[delay=0.0]": 0.001,
            "sweep.delay[delay=0.005]": 0.005,
            "root": 0.001,
        }
        longest = run_study(
            _ctx(workers=workers),
            registry=grid_registry(),
            priorities=priorities,
        )
        assert self._digests(fifo) == self._digests(serial)
        assert self._digests(longest) == self._digests(serial)
        assert longest.outputs == serial.outputs

    def test_priorities_never_change_memo_keys(self, tmp_path):
        cold = run_study(
            _ctx(tmp_path),
            registry=grid_registry(),
            priorities={"sweep.delay[delay=0.05]": 9.0},
        )
        warm = run_study(_ctx(tmp_path), registry=grid_registry())
        assert warm.executed == 0
        assert warm.cached == len(cold.runs)


class TestRunMonitorIntegration:
    def test_monitor_sees_cached_and_executed_nodes(self, tmp_path):
        from repro.obs import RunMonitor, read_snapshot

        registry = toy_registry()
        snapshot_path = tmp_path / "live.json"
        monitor = RunMonitor(snapshot_path, interval=0.0)
        cold = run_study(_ctx(tmp_path), registry=registry, monitor=monitor)
        snapshot = read_snapshot(snapshot_path)
        assert snapshot["state"] == "finished"
        assert snapshot["total"] == len(cold.runs)
        assert snapshot["executed"] == cold.executed
        assert snapshot["cached"] == 0
        assert snapshot["pending"] == []

        warm_monitor = RunMonitor(snapshot_path, interval=0.0)
        warm = run_study(
            _ctx(tmp_path), registry=registry, monitor=warm_monitor
        )
        snapshot = read_snapshot(snapshot_path)
        assert snapshot["cached"] == warm.cached == len(cold.runs)
        assert snapshot["executed"] == 0

    def test_monitoring_never_changes_payloads(self, tmp_path):
        from repro.obs import RunMonitor

        plain = run_study(_ctx(), registry=toy_registry())
        monitored = run_study(
            _ctx(),
            registry=toy_registry(),
            monitor=RunMonitor(tmp_path / "live.json", interval=0.0),
        )
        assert monitored.outputs == plain.outputs
        assert {name: run.digest for name, run in monitored.runs.items()} == {
            name: run.digest for name, run in plain.runs.items()
        }
