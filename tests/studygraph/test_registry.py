"""Tests for node specs and the registry (wiring-level invariants)."""

import pytest

from repro.studygraph.node import KIND_ARTIFACT, KIND_EXPERIMENT, NodeSpec
from repro.studygraph.registry import GraphError, Registry, default_registry


def _noop(ctx, inputs, params):
    return {"text": "noop"}


def _spec(name, deps=(), params=None, kind=KIND_EXPERIMENT):
    return NodeSpec.build(name, _noop, deps=tuple(deps), params=params, kind=kind)


class TestNodeSpec:
    def test_params_are_sorted_and_scalar(self):
        node = _spec("n", params={"b": 2, "a": 1})
        assert node.params == (("a", 1), ("b", 2))

    def test_non_scalar_params_rejected(self):
        with pytest.raises(TypeError, match="JSON scalar"):
            _spec("n", params={"bad": [1, 2]})

    def test_with_params_overrides(self):
        node = _spec("n", params={"a": 1, "b": 2})
        assert node.with_params(a=9).params_dict() == {"a": 9, "b": 2}

    def test_with_params_rejects_unknown_names(self):
        with pytest.raises(KeyError, match="no parameter"):
            _spec("n", params={"a": 1}).with_params(z=1)

    def test_cache_digest_depends_on_inputs_params_version(self):
        node = _spec("n", deps=("d",), params={"a": 1})
        base = node.cache_digest({"d": "x"})
        assert node.cache_digest({"d": "y"}) != base
        assert node.with_params(a=2).cache_digest({"d": "x"}) != base
        import dataclasses

        bumped = dataclasses.replace(node, version="2")
        assert bumped.cache_digest({"d": "x"}) != base

    def test_cache_digest_requires_every_dep(self):
        with pytest.raises(KeyError, match="missing input digests"):
            _spec("n", deps=("d",)).cache_digest({})


class TestRegistry:
    def test_duplicate_names_rejected(self):
        registry = Registry([_spec("a")])
        with pytest.raises(GraphError, match="duplicate"):
            registry.register(_spec("a"))

    def test_unknown_node_lists_known_names(self):
        registry = Registry([_spec("a")])
        with pytest.raises(GraphError, match="known: a"):
            registry.node("zzz")

    def test_experiments_filters_by_kind(self):
        registry = Registry([_spec("a", kind=KIND_ARTIFACT), _spec("b")])
        assert [node.name for node in registry.experiments()] == ["b"]

    def test_closure_includes_transitive_deps(self):
        registry = Registry([_spec("a"), _spec("b", deps=("a",)), _spec("c", deps=("b",))])
        assert registry.closure(["c"]) == ["a", "b", "c"]

    def test_topo_order_respects_deps_and_registration_order(self):
        registry = Registry(
            [_spec("late", deps=("root",)), _spec("root"), _spec("early", deps=("root",))]
        )
        assert registry.topo_order() == ["root", "late", "early"]

    def test_cycle_is_a_graph_error(self):
        registry = Registry([_spec("a", deps=("b",)), _spec("b", deps=("a",))])
        with pytest.raises(GraphError, match="cycle"):
            registry.topo_order()

    def test_with_overrides_replaces_params_copy_only(self):
        registry = Registry([_spec("a", params={"x": 1})])
        patched = registry.with_overrides({"a": {"x": 5}})
        assert patched.node("a").params_dict() == {"x": 5}
        assert registry.node("a").params_dict() == {"x": 1}

    def test_with_overrides_rejects_unknown_node(self):
        with pytest.raises(GraphError, match="unknown"):
            Registry([_spec("a")]).with_overrides({"zzz": {"x": 1}})


class TestDefaultRegistry:
    def test_is_a_process_wide_singleton(self):
        assert default_registry() is default_registry()

    def test_covers_every_design_experiment(self):
        names = set(default_registry().names())
        for required in (
            "T1", "T2", "T3", "F1", "F2", "F3",
            "A1", "A2", "C1", "E1", "M1",
            "mine.apache", "mine.gnome", "mine.mysql",
            "funnel.apache", "funnel.gnome", "funnel.mysql",
            "report", "catalog",
            "ablate.recovery-model", "ablate.dedup",
            "sweep.retry-budget", "sweep.race-window", "sweep.rejuvenation",
        ):
            assert required in names, f"missing node {required}"

    def test_registers_the_section5a_grid_families(self):
        families = default_registry().families()
        assert {
            name: family.size for name, family in families.items()
        } == {
            "sweep.retry-budget": 6,
            "sweep.race-window": 6,
            "sweep.rejuvenation": 49,
            "sweep.recovery-model": 4,
            "scenario.pairs": 40,
        }
        assert families["sweep.recovery-model"].aggregate == "ablate.recovery-model"
        assert families["scenario.pairs"].aggregate == "scenario.pairs"

    def test_acyclic_and_fully_orderable(self):
        registry = default_registry()
        order = registry.topo_order()
        assert len(order) == len(registry)
        seen = set()
        for name in order:
            assert all(dep in seen for dep in registry.node(name).deps)
            seen.add(name)
