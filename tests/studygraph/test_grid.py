"""Parameter grids: expansion, naming, registry families, topo scaling."""

import pytest

from repro.studygraph.node import (
    KIND_ARTIFACT,
    GridSpec,
    NodeSpec,
    format_grid_value,
    grid_point_label,
    grid_point_name,
)
from repro.studygraph.registry import GraphError, Registry


def _noop(ctx, inputs, params):
    return {"text": "noop"}


def _grid(name="sweep.g", axes=None, **kwargs):
    return GridSpec.build(
        name, _noop, axes=axes if axes is not None else {"x": (1, 2)}, **kwargs
    )


class TestGridValueFormatting:
    @pytest.mark.parametrize(
        ("value", "rendered"),
        [
            (None, "none"),
            (True, "true"),
            (False, "false"),
            (3, "3"),
            (0.05, "0.05"),
            (30.0, "30.0"),
            ("fast", "fast"),
        ],
    )
    def test_each_scalar_has_one_spelling(self, value, rendered):
        assert format_grid_value(value) == rendered

    def test_label_sorts_axes_by_name(self):
        assert grid_point_label({"b": 2, "a": 1}) == "a=1,b=2"

    def test_point_name_wraps_the_label(self):
        assert grid_point_name("sweep.g", {"x": 0.5}) == "sweep.g[x=0.5]"


class TestGridSpecValidation:
    def test_empty_axes_rejected(self):
        with pytest.raises(ValueError, match="no axes"):
            _grid(axes={})

    def test_empty_axis_values_rejected(self):
        with pytest.raises(ValueError, match="no values"):
            _grid(axes={"x": ()})

    def test_axis_collision_with_fixed_param_rejected(self):
        with pytest.raises(ValueError, match="collides"):
            _grid(axes={"x": (1,)}, params={"x": 9})

    def test_duplicate_axis_values_rejected(self):
        with pytest.raises(ValueError, match="repeats"):
            _grid(axes={"x": (1, 1)})

    def test_bool_and_int_are_distinct_axis_values(self):
        grid = _grid(axes={"x": (1, True)})
        assert grid.point_names() == ["sweep.g[x=1]", "sweep.g[x=true]"]

    def test_non_scalar_axis_value_rejected(self):
        with pytest.raises(TypeError, match="scalar"):
            _grid(axes={"x": ([1],)})

    @pytest.mark.parametrize("bad", ["a,b", "a=b", "a[b", "a b"])
    def test_reserved_characters_rejected_everywhere(self, bad):
        with pytest.raises(ValueError, match="reserved"):
            _grid(name=bad)
        with pytest.raises(ValueError, match="reserved"):
            _grid(axes={bad: (1,)})
        with pytest.raises(ValueError, match="reserved"):
            _grid(axes={"x": (bad,)})


class TestGridExpansion:
    def test_points_iterate_last_axis_fastest(self):
        grid = _grid(axes={"b": (10, 20), "a": (1, 2)})
        assert grid.points() == [
            {"a": 1, "b": 10},
            {"a": 1, "b": 20},
            {"a": 2, "b": 10},
            {"a": 2, "b": 20},
        ]
        assert grid.size == 4

    def test_expand_folds_axes_into_name_version_params(self):
        grid = _grid(
            axes={"x": (1, 2)},
            deps=("root",),
            params={"fixed": "f"},
            version="3",
            kind=KIND_ARTIFACT,
            title="point",
        )
        specs = grid.expand()
        assert [spec.name for spec in specs] == ["sweep.g[x=1]", "sweep.g[x=2]"]
        assert specs[0].version == "3+x=1"
        assert specs[0].params_dict() == {"fixed": "f", "x": 1}
        assert specs[0].deps == ("root",)
        assert specs[0].kind == KIND_ARTIFACT
        assert specs[0].title == "point [x=1]"
        assert all(spec.family == "sweep.g" for spec in specs)

    def test_every_point_has_a_distinct_memo_key(self):
        specs = _grid(axes={"a": (1, 2), "b": (0.5, 0.75)}).expand()
        keys = {spec.cache_digest({}) for spec in specs}
        assert len(keys) == len(specs) == 4


class TestRegistryFamilies:
    def _registry(self):
        registry = Registry([NodeSpec.build("root", _noop, kind=KIND_ARTIFACT)])
        grid = _grid(axes={"x": (1, 2, 3)}, deps=("root",), kind=KIND_ARTIFACT)
        aggregate = NodeSpec.build(
            "sweep.g", _noop, deps=tuple(grid.point_names())
        )
        registry.register_grid(grid, aggregate=aggregate)
        return registry, grid

    def test_register_grid_registers_points_and_aggregate(self):
        registry, grid = self._registry()
        for name in grid.point_names():
            assert name in registry
        assert "sweep.g" in registry
        assert len(registry) == 1 + 3 + 1

    def test_family_records_axes_points_aggregate(self):
        registry, grid = self._registry()
        family = registry.family("sweep.g")
        assert family.size == 3
        assert family.points == tuple(grid.point_names())
        assert family.axes == (("x", (1, 2, 3)),)
        assert family.aggregate == "sweep.g"
        assert registry.families() == {"sweep.g": family}

    def test_family_of_distinguishes_points_from_ordinary_nodes(self):
        registry, grid = self._registry()
        assert registry.family_of(grid.point_names()[0]) == "sweep.g"
        assert registry.family_of("root") is None
        assert registry.family_of("sweep.g") is None  # the aggregate itself

    def test_unknown_family_is_a_graph_error(self):
        registry, _ = self._registry()
        with pytest.raises(GraphError, match="unknown grid family"):
            registry.family("zzz")

    def test_dependents_index_matches_declared_edges(self):
        registry, grid = self._registry()
        assert set(registry.dependents("root")) == set(grid.point_names())
        assert registry.dependents(grid.point_names()[0]) == ["sweep.g"]

    def test_with_overrides_preserves_families(self):
        registry, _ = self._registry()
        patched = registry.with_overrides({"root": {}})
        assert patched.family("sweep.g").size == 3

    def test_topo_places_points_between_root_and_aggregate(self):
        registry, grid = self._registry()
        order = registry.topo_order()
        assert order[0] == "root"
        assert order[-1] == "sweep.g"
        assert set(order[1:-1]) == set(grid.point_names())


class TestTopoMemoization:
    def test_repeat_calls_return_equal_copies(self):
        registry = Registry(
            [NodeSpec.build("a", _noop), NodeSpec.build("b", _noop, deps=("a",))]
        )
        first = registry.topo_order()
        second = registry.topo_order()
        assert first == second
        first.append("mutated")  # callers get copies, never the cache
        assert registry.topo_order() == second

    def test_register_invalidates_the_cache(self):
        registry = Registry([NodeSpec.build("a", _noop)])
        assert registry.topo_order() == ["a"]
        registry.register(NodeSpec.build("b", _noop, deps=("a",)))
        assert registry.topo_order() == ["a", "b"]

    def test_target_sets_are_cached_independently(self):
        registry = Registry(
            [
                NodeSpec.build("a", _noop),
                NodeSpec.build("b", _noop, deps=("a",)),
                NodeSpec.build("c", _noop),
            ]
        )
        assert registry.topo_order(["b"]) == ["a", "b"]
        assert registry.topo_order(["c"]) == ["c"]
        assert registry.topo_order(["b"]) == ["a", "b"]


class TestThousandPointGrid:
    def test_large_grid_registers_and_orders_without_blowup(self):
        registry = Registry([NodeSpec.build("root", _noop, kind=KIND_ARTIFACT)])
        grid = GridSpec.build(
            "sweep.big",
            _noop,
            axes={"a": tuple(range(36)), "b": tuple(range(30))},
            deps=("root",),
            kind=KIND_ARTIFACT,
        )
        assert grid.size == 1080
        points = registry.register_grid(
            grid,
            aggregate=NodeSpec.build(
                "sweep.big", _noop, deps=tuple(grid.point_names())
            ),
        )
        assert len(points) == 1080
        order = registry.topo_order()
        assert len(order) == 1082
        seen = set()
        for name in order:
            assert all(dep in seen for dep in registry.node(name).deps)
            seen.add(name)
        # The memoized re-ask must be the same order, not a re-sort.
        assert registry.topo_order() == order
