"""The equivalence contract: graph outputs == classic CLI outputs.

Every classic command is a single-node invocation of the study graph,
so each node's rendered text plus a trailing newline must be exactly
the command's stdout -- and worker count or cache state must never
change a payload.  The cheap GNOME mining chain stands in for the
heavyweight archives (the full-scale chains are exercised by the
studygraph benchmark and the CI smoke job).
"""

import pytest

from repro.cli import main
from repro.studygraph import StudyContext, run_single_node, run_study

#: Fast nodes spanning every subsystem adapter (no full-scale archives).
CHEAP_NODES = (
    "T1", "T2", "T3", "F1", "F2", "F3",
    "A1", "A2", "C1", "E1",
    "mine.gnome", "funnel.gnome",
    "report", "catalog", "ablate.recovery-model",
)


def _cli_stdout(capsys, argv):
    assert main(list(argv)) == 0
    return capsys.readouterr().out


class TestNodeTextMatchesCli:
    @pytest.mark.parametrize(
        ("node", "argv"),
        [
            ("T1", ["table", "apache"]),
            ("T2", ["table", "gnome"]),
            ("T3", ["table", "mysql"]),
            ("F1", ["figure", "apache"]),
            ("F2", ["figure", "gnome"]),
            ("F3", ["figure", "mysql"]),
            ("A1", ["aggregate"]),
            ("mine.gnome", ["mine", "gnome"]),
            ("funnel.gnome", ["funnel", "gnome"]),
            ("report", ["report"]),
            ("catalog", ["catalog"]),
        ],
    )
    def test_default_params(self, capsys, node, argv):
        expected = _cli_stdout(capsys, argv)
        assert run_single_node(node)["text"] + "\n" == expected

    def test_figure_override_matches_flag(self, capsys):
        expected = _cli_stdout(capsys, ["figure", "gnome", "--granularity", "quarter"])
        payload = run_single_node(
            "F2", overrides={"F2": {"granularity": "quarter"}}
        )
        assert payload["text"] + "\n" == expected

    def test_replay_override_matches_flag(self, capsys):
        expected = _cli_stdout(
            capsys, ["replay", "--technique", "checkpoint-rollback"]
        )
        payload = run_single_node(
            "E1", overrides={"E1": {"techniques": "checkpoint-rollback"}}
        )
        assert payload["text"] + "\n" == expected

    def test_markdown_report_override_matches_flag(self, capsys):
        expected = _cli_stdout(capsys, ["report", "--format", "markdown"])
        payload = run_single_node(
            "report", overrides={"report": {"format": "markdown"}}
        )
        assert payload["text"] + "\n" == expected


class TestWorkerAndCacheInvariance:
    def test_parallel_run_matches_serial(self):
        serial = run_study(StudyContext.default(), nodes=list(CHEAP_NODES))
        parallel = run_study(
            StudyContext.default(workers=2), nodes=list(CHEAP_NODES)
        )
        assert parallel.outputs == serial.outputs
        assert {name: run.digest for name, run in parallel.runs.items()} == {
            name: run.digest for name, run in serial.runs.items()
        }

    def test_warm_rerun_matches_cold(self, tmp_path):
        cold = run_study(
            StudyContext.default(cache_dir=tmp_path / "memo"),
            nodes=list(CHEAP_NODES),
        )
        assert cold.cached == 0
        warm = run_study(
            StudyContext.default(cache_dir=tmp_path / "memo"),
            nodes=list(CHEAP_NODES),
        )
        assert warm.executed == 0
        assert warm.outputs == cold.outputs
