"""Tests for content-addressed artifacts (canonical JSON + store)."""

import datetime

import pytest

from repro.bugdb.enums import Application, FaultClass
from repro.studygraph.artifact import (
    ArtifactStore,
    artifact_digest,
    canonical_json,
    jsonable,
)


class TestJsonable:
    def test_enums_become_values(self):
        assert jsonable(Application.APACHE) == "apache"
        assert jsonable(FaultClass.ENV_INDEPENDENT) == "environment-independent"

    def test_dates_become_iso_strings(self):
        assert jsonable(datetime.date(1999, 3, 14)) == "1999-03-14"

    def test_tuples_become_lists(self):
        assert jsonable((1, ("a", 2))) == [1, ["a", 2]]

    def test_enum_keyed_mappings_use_values(self):
        assert jsonable({Application.MYSQL: 44}) == {"mysql": 44}

    def test_scalars_pass_through(self):
        for value in ("x", 3, 2.5, True, None):
            assert jsonable(value) == value

    def test_unconvertible_objects_are_rejected(self):
        with pytest.raises(TypeError, match="JSON-compatible"):
            jsonable(object())


class TestCanonicalJson:
    def test_key_order_is_irrelevant(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})

    def test_no_whitespace(self):
        assert canonical_json({"a": [1, 2]}) == '{"a":[1,2]}'

    def test_non_ascii_is_escaped(self):
        assert "\\u" in canonical_json({"s": "café"})


class TestArtifactDigest:
    def test_stable_for_equal_payloads(self):
        assert artifact_digest({"x": 1, "y": 2}) == artifact_digest({"y": 2, "x": 1})

    def test_differs_on_content_change(self):
        assert artifact_digest({"x": 1}) != artifact_digest({"x": 2})


class TestArtifactStore:
    def test_put_then_get(self):
        store = ArtifactStore()
        store.put("a", {"v": 1})
        assert store.has("a")
        assert store.get("a") == {"v": 1}

    def test_missing_without_loader_raises(self):
        with pytest.raises(KeyError, match="not materialized"):
            ArtifactStore().get("ghost")

    def test_loader_runs_once_per_name(self):
        calls = []

        def load(name):
            calls.append(name)
            return {"name": name}

        store = ArtifactStore(loader=load)
        assert store.get("a") == {"name": "a"}
        assert store.get("a") == {"name": "a"}
        assert calls == ["a"]

    def test_subset_materializes_each_name(self):
        store = ArtifactStore(loader=lambda name: {"name": name})
        assert store.subset(("a", "b")) == {"a": {"name": "a"}, "b": {"name": "b"}}
