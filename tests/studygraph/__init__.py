"""Tests for the repro.studygraph artifact-graph layer."""
