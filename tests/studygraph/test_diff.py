"""Cache-diff semantics on a toy graph.

Payload drift is synthesised by registering *different producers* under
the same node identity (name, version, params): the memo keys agree, so
both caches resolve the node, but the output digests differ -- exactly
the "same declared code, different behaviour" case the diff exists to
catch.  Downstream nodes then report inherited drift because their memo
keys chain through the drifted digest.
"""

from repro.studygraph.context import StudyContext
from repro.studygraph.diff import (
    STATE_ABSENT,
    STATE_INHERITED_DRIFT,
    STATE_MATCH,
    STATE_ONLY_A,
    STATE_ONLY_B,
    STATE_PAYLOAD_DRIFT,
    diff_caches,
)
from repro.studygraph.node import KIND_ARTIFACT, NodeSpec
from repro.studygraph.registry import Registry
from repro.studygraph.scheduler import run_study


def _root(ctx, inputs, params):
    return {"value": 3}


def _root_drifted(ctx, inputs, params):
    return {"value": 4}


def _double(ctx, inputs, params):
    return {"value": inputs["root"]["value"] * 2}


def _indep(ctx, inputs, params):
    return {"n": 5}


def _registry(root_producer=_root):
    return Registry(
        [
            NodeSpec.build("root", root_producer, kind=KIND_ARTIFACT),
            NodeSpec.build("double", _double, deps=("root",)),
            NodeSpec.build("indep", _indep),
        ]
    )


def _populate(cache_dir, *, nodes, registry=None):
    registry = registry if registry is not None else _registry()
    run_study(
        StudyContext.default(cache_dir=cache_dir),
        nodes=nodes,
        registry=registry,
    )


def test_identical_runs_diff_clean(tmp_path):
    a, b = tmp_path / "a", tmp_path / "b"
    _populate(a, nodes=["double", "indep"])
    _populate(b, nodes=["double", "indep"])
    report = diff_caches(a, b, nodes=["double", "indep"], registry=_registry())
    assert report.clean
    assert {node.state for node in report.nodes} == {STATE_MATCH}
    assert all(node.wall_a is not None for node in report.nodes)


def test_payload_drift_and_inherited_drift(tmp_path):
    a, b = tmp_path / "a", tmp_path / "b"
    _populate(a, nodes=["double"])
    _populate(b, nodes=["double"], registry=_registry(_root_drifted))
    report = diff_caches(a, b, nodes=["double"], registry=_registry())
    states = {node.name: node.state for node in report.nodes}
    assert states == {
        "root": STATE_PAYLOAD_DRIFT,
        "double": STATE_INHERITED_DRIFT,
    }
    assert not report.clean
    assert {node.name for node in report.drifted} == {"root", "double"}
    root = next(node for node in report.nodes if node.name == "root")
    assert root.digest_a != root.digest_b


def test_one_sided_and_absent_nodes(tmp_path):
    a, b = tmp_path / "a", tmp_path / "b"
    _populate(a, nodes=["double"])
    _populate(b, nodes=["indep"])
    report = diff_caches(
        a, b, nodes=["double", "indep"], registry=_registry()
    )
    states = {node.name: node.state for node in report.nodes}
    assert states["root"] == STATE_ONLY_A
    assert states["double"] == STATE_ONLY_A
    assert states["indep"] == STATE_ONLY_B
    assert not report.clean


def test_empty_caches_are_absent_not_drifted(tmp_path):
    report = diff_caches(
        tmp_path / "a", tmp_path / "b", nodes=["double"], registry=_registry()
    )
    assert {node.state for node in report.nodes} == {STATE_ABSENT}
    assert report.clean  # nothing resolvable disagrees


def test_rows_render_digest_prefixes_and_deltas(tmp_path):
    a, b = tmp_path / "a", tmp_path / "b"
    _populate(a, nodes=["indep"])
    _populate(b, nodes=["indep"])
    report = diff_caches(a, b, nodes=["indep"], registry=_registry())
    [row] = report.rows()
    assert row[0] == "indep"
    assert row[2] == STATE_MATCH
    assert len(row[3]) == 12 and row[3] == row[4]
    assert row[5] == "-" or row[5][0] in "+-"
