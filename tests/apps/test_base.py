"""Tests for the mini-application base machinery."""

import pytest

from repro.apps.base import MiniApplication
from repro.envmodel.environment import Environment, EnvironmentSpec
from repro.errors import ResourceExhaustedError


class CounterApp(MiniApplication):
    """A trivial application that counts its operations."""

    def _init_state(self):
        self.state.setdefault("count", 0)

    def _do_op(self, op):
        self.state["count"] += 1
        return self.state["count"]


def make_app(**spec_kwargs):
    env = Environment(spec=EnvironmentSpec(**spec_kwargs)) if spec_kwargs else Environment()
    return CounterApp(env, name="counter")


class TestStateLifecycle:
    def test_snapshot_restore_round_trip(self):
        app = make_app()
        app.run_op("x")
        app.run_op("x")
        checkpoint = app.snapshot()
        app.run_op("x")
        assert app.state["count"] == 3
        app.restore(checkpoint)
        assert app.state["count"] == 2

    def test_snapshot_is_deep(self):
        app = make_app()
        app.state["nested"] = {"list": [1, 2]}
        checkpoint = app.snapshot()
        app.state["nested"]["list"].append(3)
        app.restore(checkpoint)
        assert app.state["nested"]["list"] == [1, 2]

    def test_restore_clears_crashed_flag(self):
        app = make_app()
        checkpoint = app.snapshot()
        app.crashed = True
        app.restore(checkpoint)
        assert not app.crashed

    def test_reset_fresh_reinitialises(self):
        app = make_app()
        app.run_op("x")
        app.reset_fresh()
        assert app.state == {"count": 0}

    def test_reset_fresh_adopts_current_hostname(self):
        app = make_app()
        app.env.change_hostname("new.example.com")
        app.reset_fresh()
        assert app.boot_hostname == "new.example.com"

    def test_restore_keeps_boot_hostname(self):
        app = make_app()
        checkpoint = app.snapshot()
        app.env.change_hostname("new.example.com")
        app.restore(checkpoint)
        assert app.boot_hostname == "server.example.com"


class TestEnvironmentFootprint:
    def test_descriptor_accounting(self):
        app = make_app(file_descriptors=4)
        app.open_descriptor()
        app.open_descriptor(leaked=True)
        assert app.footprint.descriptors == 2
        assert app.footprint.leaked_descriptors == 1
        assert app.env.file_descriptors.in_use == 2
        app.close_descriptor()
        assert app.footprint.descriptors == 1

    def test_cannot_close_leaked_descriptor(self):
        app = make_app()
        app.open_descriptor(leaked=True)
        with pytest.raises(ValueError, match="no live descriptor"):
            app.close_descriptor()

    def test_descriptor_exhaustion_propagates(self):
        app = make_app(file_descriptors=1)
        app.open_descriptor()
        with pytest.raises(ResourceExhaustedError):
            app.open_descriptor()

    def test_fork_and_reap(self):
        app = make_app(process_slots=2)
        app.fork_child()
        app.fork_child()
        assert app.env.process_table.exhausted
        app.reap_child()
        assert app.footprint.process_slots == 1

    def test_reap_without_children_rejected(self):
        with pytest.raises(ValueError, match="no child"):
            make_app().reap_child()

    def test_bind_and_release_port(self):
        app = make_app(network_ports=1)
        app.bind_port()
        assert app.env.ports.exhausted
        app.release_port()
        assert app.env.ports.in_use == 0

    def test_release_port_without_binding_rejected(self):
        with pytest.raises(ValueError, match="no port"):
            make_app().release_port()
