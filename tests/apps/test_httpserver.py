"""Tests for the mini HTTP server."""

import pytest

from repro.apps.httpserver import LOG_RECORD_BYTES, MiniHttpServer
from repro.envmodel.dns import DnsState
from repro.envmodel.environment import Environment, EnvironmentSpec
from repro.envmodel.network import NetworkState
from repro.errors import ApplicationCrash, SimulationError


@pytest.fixture
def env():
    environment = Environment()
    environment.dns.add_record("client.example.net", "10.0.0.5")
    return environment


class TestLifecycle:
    def test_start_binds_port_and_forks_workers(self, env):
        server = MiniHttpServer(env, max_children=4)
        server.start()
        assert server.running
        assert env.ports.in_use == 1
        assert env.process_table.in_use == 4

    def test_double_start_rejected(self, env):
        server = MiniHttpServer(env)
        server.start()
        with pytest.raises(SimulationError, match="already running"):
            server.start()

    def test_stop_releases_everything(self, env):
        server = MiniHttpServer(env)
        server.start()
        server.stop()
        assert env.ports.in_use == 0
        assert env.process_table.in_use == 0


class TestRequestHandling:
    def test_serves_published_document(self, env):
        server = MiniHttpServer(env)
        server.add_document("/page", "hello")
        response = server.handle_request("/page")
        assert response.status == 200
        assert response.body == "hello"

    def test_missing_document_is_404(self, env):
        response = MiniHttpServer(env).handle_request("/none")
        assert response.status == 404

    def test_request_appends_access_log(self, env):
        server = MiniHttpServer(env)
        server.handle_request("/index.html")
        server.handle_request("/index.html")
        assert env.disk.file_size("access_log") == 2 * LOG_RECORD_BYTES
        assert server.state["requests_served"] == 2

    def test_descriptor_released_even_on_failure(self, env):
        server = MiniHttpServer(env, hostname_logging=True)
        env.dns.degrade(DnsState.ERROR)
        with pytest.raises(ApplicationCrash):
            server.handle_request("/index.html", client_address="10.0.0.5")
        assert env.file_descriptors.in_use == 0

    def test_hostname_logging_advances_clock_by_latency(self, env):
        server = MiniHttpServer(env, hostname_logging=True)
        before = env.clock.now
        server.handle_request("/index.html", client_address="10.0.0.5")
        assert env.clock.now > before

    def test_slow_network_times_out_large_transfer(self, env):
        server = MiniHttpServer(env)
        server.add_document("/big", "x" * 100_000)
        env.network.degrade(NetworkState.SLOW)
        with pytest.raises(ApplicationCrash) as excinfo:
            server.handle_request("/big")
        assert excinfo.value.fault_id == "client-timeout"

    def test_entropy_drawn_for_session_key(self, env):
        server = MiniHttpServer(env)
        before = env.entropy.bits
        server.generate_session_key(128)
        assert env.entropy.bits == before - 128


class TestOps:
    def test_get_page_op(self, env):
        response = MiniHttpServer(env).run_op("get-page")
        assert response.status == 200

    def test_unknown_op_is_noop(self, env):
        assert MiniHttpServer(env).run_op("no-such-op") is None

    def test_accept_connection_pins_buffer(self, env):
        server = MiniHttpServer(env)
        server.run_op("accept-connection")
        assert env.network.buffers.in_use == 1
        assert server.footprint.network_buffers == 1
