"""Tests for workloads and the application registry."""

import pytest

from repro.apps.desktop import MiniDesktop
from repro.apps.httpserver import MiniHttpServer
from repro.apps.registry import make_application
from repro.apps.sqldb import MiniSqlDatabase
from repro.apps.workload import Workload, workload_for_fault
from repro.bugdb.enums import Application
from repro.envmodel.environment import Environment


class TestWorkload:
    def test_requires_operations(self):
        with pytest.raises(ValueError):
            Workload(ops=())

    def test_runs_ops_in_order(self):
        executed = []

        class RecordingApp(MiniDesktop):
            def _do_op(self, op):
                executed.append(op)

        app = RecordingApp(Environment())
        Workload(ops=("a", "b", "c")).run(app)
        assert executed == ["a", "b", "c"]

    def test_len(self):
        assert len(Workload(ops=("a", "b"))) == 2

    def test_workload_for_fault_ends_with_trigger_op(self, apache):
        fault = apache.faults[0]
        workload = workload_for_fault(fault)
        assert workload.ops[-1] == fault.workload_op
        assert len(workload) == 3

    def test_warmup_count_configurable(self, apache):
        workload = workload_for_fault(apache.faults[0], warmup_ops=0)
        assert len(workload) == 1


class TestRegistry:
    def test_apache_gets_http_server(self):
        app = make_application(Application.APACHE, Environment())
        assert isinstance(app, MiniHttpServer)

    def test_gnome_gets_desktop(self):
        app = make_application(Application.GNOME, Environment())
        assert isinstance(app, MiniDesktop)

    def test_mysql_gets_database(self):
        app = make_application(Application.MYSQL, Environment())
        assert isinstance(app, MiniSqlDatabase)

    def test_app_bound_to_environment(self):
        env = Environment()
        app = make_application(Application.APACHE, env)
        assert app.env is env
