"""Tests for fault injection."""

import datetime

import pytest

from repro.apps.base import MiniApplication
from repro.apps.faults import FaultInjector, InjectedDefect
from repro.bugdb.enums import Application, FaultClass, Symptom, TriggerKind
from repro.classify.recovery_model import PAPER_DEFAULT
from repro.corpus.studyspec import StudyFault
from repro.envmodel.environment import Environment, EnvironmentSpec
from repro.envmodel.perturb import apply_recovery_perturbation
from repro.errors import ApplicationCrash, ApplicationHang


class PlainApp(MiniApplication):
    pass


def make_fault(trigger, fault_class, *, symptom=Symptom.CRASH, op="the-op"):
    return StudyFault(
        fault_id="TEST-1",
        application=Application.APACHE,
        component="core",
        version="1.3.4",
        date=datetime.date(1999, 1, 1),
        synopsis="test fault",
        description="test",
        how_to_repeat="test",
        fix_summary="",
        symptom=symptom,
        trigger=trigger,
        fault_class=fault_class,
        workload_dependent_timing=trigger is TriggerKind.WORKLOAD_TIMING,
        workload_op=op,
    )


def setup(trigger, fault_class, *, symptom=Symptom.CRASH, spec=None, seed=1):
    env = Environment(seed=seed, spec=spec or EnvironmentSpec())
    app = PlainApp(env, name="test-app")
    defect = InjectedDefect(make_fault(trigger, fault_class, symptom=symptom))
    app.injector.inject(defect)
    defect.arm(env, app)
    return env, app, defect


class TestEnvironmentIndependentDefects:
    def test_fires_every_execution(self):
        env, app, defect = setup(TriggerKind.NONE, FaultClass.ENV_INDEPENDENT)
        for _ in range(3):
            with pytest.raises(ApplicationCrash):
                app.run_op("the-op")

    def test_other_ops_unaffected(self):
        env, app, defect = setup(TriggerKind.NONE, FaultClass.ENV_INDEPENDENT)
        app.run_op("another-op")  # no crash

    def test_hang_symptom_raises_hang(self):
        env, app, defect = setup(
            TriggerKind.NONE, FaultClass.ENV_INDEPENDENT, symptom=Symptom.HANG
        )
        with pytest.raises(ApplicationHang):
            app.run_op("the-op")


class TestResourceDefects:
    def test_disk_full_fires_until_space_freed(self):
        env, app, defect = setup(TriggerKind.DISK_FULL, FaultClass.ENV_DEP_NONTRANSIENT)
        assert env.disk.full
        with pytest.raises(ApplicationCrash):
            app.run_op("the-op")
        env.disk.free_external()
        app.run_op("the-op")  # survives once the condition clears

    def test_fd_exhaustion_armed_via_app_leak(self):
        env, app, defect = setup(
            TriggerKind.FILE_DESCRIPTOR_EXHAUSTION,
            FaultClass.ENV_DEP_NONTRANSIENT,
            spec=EnvironmentSpec(file_descriptors=8),
        )
        assert env.file_descriptors.exhausted
        assert app.footprint.leaked_descriptors == 8
        with pytest.raises(ApplicationCrash):
            app.run_op("the-op")

    def test_process_table_cleared_by_paper_default_recovery(self):
        env, app, defect = setup(
            TriggerKind.PROCESS_TABLE_FULL,
            FaultClass.ENV_DEP_TRANSIENT,
            spec=EnvironmentSpec(process_slots=4),
        )
        with pytest.raises(ApplicationHang if False else ApplicationCrash):
            app.run_op("the-op")
        apply_recovery_perturbation(env, PAPER_DEFAULT, app.footprint)
        app.run_op("the-op")  # children killed; slots free

    def test_resource_leak_lives_in_app_state(self):
        env, app, defect = setup(TriggerKind.RESOURCE_LEAK, FaultClass.ENV_DEP_NONTRANSIENT)
        assert app.state["leaked_objects"] > 0
        checkpoint = app.snapshot()
        with pytest.raises(ApplicationCrash):
            app.run_op("the-op")
        app.restore(checkpoint)  # state-preserving recovery keeps the leak
        with pytest.raises(ApplicationCrash):
            app.run_op("the-op")
        app.reset_fresh()  # restart-from-scratch clears it
        app.run_op("the-op")

    def test_hostname_change_condition(self):
        env, app, defect = setup(TriggerKind.HOST_CONFIG_CHANGE, FaultClass.ENV_DEP_NONTRANSIENT)
        assert env.hostname != app.boot_hostname
        with pytest.raises(ApplicationCrash):
            app.run_op("the-op")

    def test_entropy_clears_with_time(self):
        env, app, defect = setup(TriggerKind.ENTROPY_EXHAUSTION, FaultClass.ENV_DEP_TRANSIENT)
        with pytest.raises(ApplicationCrash):
            app.run_op("the-op")
        env.entropy.accumulate(60.0)  # 8 bits/s: enough for 128 bits
        app.run_op("the-op")


class TestTimingDefects:
    def test_first_execution_always_fires(self):
        env, app, defect = setup(TriggerKind.RACE_CONDITION, FaultClass.ENV_DEP_TRANSIENT)
        with pytest.raises(ApplicationCrash):
            app.run_op("the-op")
        assert defect.fired_once

    def test_retry_consults_scheduler(self):
        # Over many seeds, retries should mostly survive (window 0.25)
        # but sometimes re-fire.
        survived = 0
        refired = 0
        for seed in range(40):
            env, app, defect = setup(
                TriggerKind.RACE_CONDITION, FaultClass.ENV_DEP_TRANSIENT, seed=seed
            )
            with pytest.raises(ApplicationCrash):
                app.run_op("the-op")
            env.reseed_scheduler()
            try:
                app.run_op("the-op")
                survived += 1
            except ApplicationCrash:
                refired += 1
        assert survived > refired
        assert refired > 0

    def test_workload_timing_first_run_fires(self):
        env, app, defect = setup(TriggerKind.WORKLOAD_TIMING, FaultClass.ENV_DEP_TRANSIENT)
        with pytest.raises(ApplicationCrash):
            app.run_op("the-op")


class TestFaultInjector:
    def test_duplicate_op_rejected(self):
        injector = FaultInjector()
        injector.inject(InjectedDefect(make_fault(TriggerKind.NONE, FaultClass.ENV_INDEPENDENT)))
        with pytest.raises(ValueError, match="already guards"):
            injector.inject(
                InjectedDefect(make_fault(TriggerKind.NONE, FaultClass.ENV_INDEPENDENT))
            )

    def test_defect_for(self):
        injector = FaultInjector()
        defect = InjectedDefect(make_fault(TriggerKind.NONE, FaultClass.ENV_INDEPENDENT))
        injector.inject(defect)
        assert injector.defect_for("the-op") is defect
        assert injector.defect_for("other") is None
        assert len(injector) == 1

    def test_execution_counter(self):
        env, app, defect = setup(TriggerKind.DISK_FULL, FaultClass.ENV_DEP_NONTRANSIENT)
        env.disk.free_external()
        app.run_op("the-op")
        app.run_op("the-op")
        assert defect.executions == 2


class TestDefectStacking:
    def _defect(self):
        return InjectedDefect(make_fault(TriggerKind.NONE, FaultClass.ENV_INDEPENDENT))

    def test_stacking_requires_opt_in(self):
        injector = FaultInjector()
        injector.inject(self._defect())
        with pytest.raises(ValueError, match="already guards"):
            injector.inject(self._defect())
        injector.inject(self._defect(), allow_stacking=True)
        assert len(injector) == 2

    def test_defects_for_returns_the_stack_in_injection_order(self):
        injector = FaultInjector()
        first, second = self._defect(), self._defect()
        injector.inject(first)
        injector.inject(second, allow_stacking=True)
        assert injector.defects_for("the-op") == (first, second)
        assert injector.defect_for("the-op") is first  # legacy single-defect view
        assert injector.defects_for("other") == ()

    def test_all_defects_spans_every_op(self):
        injector = FaultInjector()
        on_op = self._defect()
        on_other = InjectedDefect(
            make_fault(TriggerKind.NONE, FaultClass.ENV_INDEPENDENT, op="other-op")
        )
        injector.inject(on_op)
        injector.inject(on_other)
        assert sorted(injector.all_defects(), key=id) == sorted(
            [on_op, on_other], key=id
        )

    def test_check_fires_the_stack_in_injection_order(self):
        env = Environment(spec=EnvironmentSpec())
        app = PlainApp(env, name="stacked")
        dormant = InjectedDefect(
            make_fault(TriggerKind.DISK_FULL, FaultClass.ENV_DEP_NONTRANSIENT)
        )
        always = self._defect()
        app.injector.inject(dormant)  # disk not full: never fires
        app.injector.inject(always, allow_stacking=True)
        with pytest.raises(ApplicationCrash):
            app.run_op("the-op")
        assert always.fired_once
        assert not dormant.fired_once


class TestArmEdgeCases:
    def test_file_size_limit_without_platform_limit_never_fires(self):
        from repro.envmodel.environment import EnvironmentSpec

        env = Environment(spec=EnvironmentSpec())
        env.disk.raise_file_limit(None)
        app = PlainApp(env, name="edge")
        defect = InjectedDefect(
            make_fault(TriggerKind.FILE_SIZE_LIMIT, FaultClass.ENV_DEP_NONTRANSIENT)
        )
        app.injector.inject(defect)
        defect.arm(env, app)
        app.run_op("the-op")  # no limit on this platform -> no fault

    def test_elastic_recovery_clears_file_size_condition(self):
        from repro.classify.recovery_model import ELASTIC_ENVIRONMENT

        env, app, defect = setup(
            TriggerKind.FILE_SIZE_LIMIT, FaultClass.ENV_DEP_NONTRANSIENT
        )
        with pytest.raises(ApplicationCrash):
            app.run_op("the-op")
        apply_recovery_perturbation(env, ELASTIC_ENVIRONMENT, app.footprint)
        app.run_op("the-op")
