"""Tests for the mini desktop session."""

import pytest

from repro.apps.desktop import MiniDesktop
from repro.envmodel.environment import Environment
from repro.errors import ApplicationCrash, SimulationError


@pytest.fixture
def desktop():
    return MiniDesktop(Environment())


class TestPanel:
    def test_add_and_dispatch(self, desktop):
        desktop.add_applet("clock")
        desktop.dispatch_event("clock")
        assert desktop.state["events_handled"] == 1

    def test_duplicate_applet_rejected(self, desktop):
        desktop.add_applet("clock")
        with pytest.raises(SimulationError, match="already present"):
            desktop.add_applet("clock")

    def test_remove_applet(self, desktop):
        desktop.add_applet("clock")
        desktop.remove_applet("clock")
        with pytest.raises(SimulationError, match="destroyed applet"):
            desktop.dispatch_event("clock")

    def test_remove_unknown_applet(self, desktop):
        with pytest.raises(SimulationError, match="no such applet"):
            desktop.remove_applet("ghost")


class TestWindows:
    def test_open_and_close(self, desktop):
        desktop.open_window("editor")
        assert desktop.state["windows"] == ["editor"]
        assert desktop.env.file_descriptors.in_use == 1
        desktop.close_window("editor")
        assert desktop.env.file_descriptors.in_use == 0

    def test_hostname_change_breaks_new_windows(self, desktop):
        desktop.open_window("before")
        desktop.env.change_hostname("renamed.example.com")
        with pytest.raises(ApplicationCrash) as excinfo:
            desktop.open_window("after")
        assert excinfo.value.fault_id == "display-auth-failure"

    def test_fresh_restart_adopts_new_hostname(self, desktop):
        desktop.env.change_hostname("renamed.example.com")
        desktop.reset_fresh()
        desktop.open_window("works-now")

    def test_close_unknown_window(self, desktop):
        with pytest.raises(SimulationError, match="no such window"):
            desktop.close_window("ghost")


class TestSoundAndFiles:
    def test_sound_event_normally_closes_socket(self, desktop):
        desktop.play_sound_event()
        assert desktop.env.file_descriptors.in_use == 0

    def test_leaky_sound_utility(self, desktop):
        for _ in range(5):
            desktop.play_sound_event(utility_leaks_socket=True)
        assert desktop.env.file_descriptors.in_use == 5
        assert desktop.footprint.leaked_descriptors == 5

    def test_property_editor_on_clean_file(self, desktop):
        desktop.edit_file_properties("normal-file")
        assert desktop.state["events_handled"] == 1

    def test_property_editor_on_corrupt_owner(self, desktop):
        desktop.env.disk.write("file-with-illegal-owner", 1)
        with pytest.raises(ApplicationCrash) as excinfo:
            desktop.edit_file_properties("file-with-illegal-owner")
        assert excinfo.value.fault_id == "illegal-owner-field"


class TestOps:
    def test_applet_action_op_bootstraps_applet(self, desktop):
        desktop.run_op("applet-action")
        assert "clock" in desktop.state["applets"]

    def test_open_window_op(self, desktop):
        desktop.run_op("open-window")
        assert desktop.state["windows"] == ["untitled"]

    def test_unknown_op_noop(self, desktop):
        assert desktop.run_op("mystery") is None
