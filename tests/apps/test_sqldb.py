"""Tests for the mini SQL database."""

import pytest

from repro.apps.sqldb import MiniSqlDatabase, SqlError
from repro.envmodel.environment import Environment
from repro.errors import ApplicationCrash


@pytest.fixture
def db():
    env = Environment()
    env.dns.add_record("client.example.net", "10.0.0.99")
    database = MiniSqlDatabase(env)
    database.execute("CREATE TABLE users (id, name, age)")
    database.execute("INSERT INTO users VALUES (1, 'ada', 36)")
    database.execute("INSERT INTO users VALUES (2, 'grace', 45)")
    database.execute("INSERT INTO users VALUES (3, 'alan', 41)")
    return database


class TestDdlAndDml:
    def test_create_duplicate_table_rejected(self, db):
        with pytest.raises(SqlError, match="table exists"):
            db.execute("CREATE TABLE users (a)")

    def test_create_needs_columns(self, db):
        with pytest.raises(SqlError, match="at least one column"):
            db.execute("CREATE TABLE empty ()")

    def test_insert_arity_checked(self, db):
        with pytest.raises(SqlError, match="3 columns"):
            db.execute("INSERT INTO users VALUES (4, 'x')")

    def test_insert_charges_disk(self, db):
        used_before = db.env.disk.file_size("data/users.ISD")
        db.execute("INSERT INTO users VALUES (4, 'mary', 28)")
        assert db.env.disk.file_size("data/users.ISD") > used_before

    def test_unknown_table(self, db):
        with pytest.raises(SqlError, match="no such table"):
            db.execute("SELECT * FROM ghosts")


class TestSelect:
    def test_select_star(self, db):
        rows = db.execute("SELECT * FROM users")
        assert len(rows) == 3

    def test_select_columns(self, db):
        rows = db.execute("SELECT name FROM users WHERE id = 2")
        assert rows == [{"name": "grace"}]

    def test_select_order_by(self, db):
        rows = db.execute("SELECT name FROM users ORDER BY age")
        assert [row["name"] for row in rows] == ["ada", "alan", "grace"]

    def test_select_empty_with_order_by(self, db):
        # The famous Table 3 bug: zero records plus ORDER BY must NOT
        # crash our implementation.
        rows = db.execute("SELECT * FROM users WHERE id = 99 ORDER BY age")
        assert rows == []

    def test_count_empty_table(self, db):
        db.execute("CREATE TABLE empty (a)")
        assert db.execute("SELECT COUNT(*) FROM empty") == [{"count": 0}]

    def test_unknown_column_rejected(self, db):
        with pytest.raises(SqlError, match="no such column"):
            db.execute("SELECT salary FROM users")
        with pytest.raises(SqlError, match="no such column"):
            db.execute("SELECT * FROM users ORDER BY salary")


class TestUpdateDelete:
    def test_update(self, db):
        changed = db.execute("UPDATE users SET age = 37 WHERE name = 'ada'")
        assert changed == 1
        assert db.execute("SELECT age FROM users WHERE name = 'ada'") == [{"age": 37}]

    def test_update_all_rows(self, db):
        assert db.execute("UPDATE users SET age = 1") == 3

    def test_delete(self, db):
        assert db.execute("DELETE FROM users WHERE id = 1") == 1
        assert len(db.execute("SELECT * FROM users")) == 2

    def test_delete_all(self, db):
        assert db.execute("DELETE FROM users") == 3


class TestAdminStatements:
    def test_lock_then_unlock(self, db):
        db.execute("LOCK TABLES users READ")
        assert db.state["locks"] == {"users": "READ"}
        db.execute("UNLOCK TABLES")
        assert db.state["locks"] == {}

    def test_flush_after_lock_does_not_crash(self, db):
        # Another Table 3 bug our implementation must not have.
        db.execute("LOCK TABLES users READ")
        assert db.execute("FLUSH TABLES") >= 1

    def test_optimize_rewrites_data_file(self, db):
        db.execute("DELETE FROM users WHERE id = 1")
        db.execute("OPTIMIZE TABLE users")
        from repro.apps.sqldb import ROW_BYTES

        assert db.env.disk.file_size("data/users.ISD") == 2 * ROW_BYTES

    def test_unparseable_statement(self, db):
        with pytest.raises(SqlError, match="cannot parse"):
            db.execute("EXPLAIN EVERYTHING")


class TestConnections:
    def test_reverse_dns_check(self):
        env = Environment()
        env.dns.add_record("client.example.net", "10.0.0.99")
        db = MiniSqlDatabase(env, check_reverse_dns=True)
        db.accept_connection("10.0.0.99")  # has PTR: fine
        env.dns.remove_reverse("10.0.0.99")
        with pytest.raises(ApplicationCrash) as excinfo:
            db.accept_connection("10.0.0.99")
        assert excinfo.value.fault_id == "reverse-dns-failure"

    def test_connection_consumes_descriptor(self, db):
        before = db.env.file_descriptors.in_use
        db.accept_connection()
        assert db.env.file_descriptors.in_use == before + 1

    def test_literal_parsing(self, db):
        db.execute("CREATE TABLE t (a)")
        db.execute("INSERT INTO t VALUES (1.5)")
        assert db.execute("SELECT * FROM t") == [{"a": 1.5}]
