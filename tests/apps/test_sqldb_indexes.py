"""Tests for SQL index maintenance and HTTP access control."""

import pytest

from repro.apps.httpserver import MiniHttpServer
from repro.apps.sqldb import MiniSqlDatabase, SqlError
from repro.envmodel.environment import Environment


@pytest.fixture
def db():
    database = MiniSqlDatabase(Environment())
    database.execute("CREATE TABLE t (k, v)")
    for key, value in ((1, "a"), (2, "b"), (3, "c"), (3, "d")):
        database.execute(f"INSERT INTO t VALUES ({key}, '{value}')")
    database.execute("CREATE INDEX idx_k ON t (k)")
    return database


class TestCreateIndex:
    def test_index_backed_select(self, db):
        rows = db.execute("SELECT v FROM t WHERE k = 3 ORDER BY v")
        assert rows == [{"v": "c"}, {"v": "d"}]

    def test_index_on_unknown_column(self, db):
        with pytest.raises(SqlError, match="no such column"):
            db.execute("CREATE INDEX bad ON t (zz)")

    def test_index_on_unknown_table(self, db):
        with pytest.raises(SqlError, match="no such table"):
            db.execute("CREATE INDEX bad ON ghosts (k)")

    def test_index_reflects_existing_rows(self, db):
        table = db.state["tables"]["t"]
        assert set(table.indexes["k"]) == {1, 2, 3}
        assert len(table.indexes["k"][3]) == 2


class TestIndexMaintenance:
    def test_insert_updates_index(self, db):
        db.execute("INSERT INTO t VALUES (9, 'z')")
        assert db.execute("SELECT v FROM t WHERE k = 9") == [{"v": "z"}]

    def test_delete_updates_index(self, db):
        db.execute("DELETE FROM t WHERE k = 3")
        assert db.execute("SELECT * FROM t WHERE k = 3") == []
        assert 3 not in db.state["tables"]["t"].indexes["k"]

    def test_update_moves_rows_between_buckets(self, db):
        # The Table 3 fault pattern: update indexed keys to values that
        # exist later in the scan.  The collect-then-update fix must not
        # re-visit moved rows.
        changed = db.execute("UPDATE t SET k = 3 WHERE k = 1")
        assert changed == 1
        rows = db.execute("SELECT v FROM t WHERE k = 3 ORDER BY v")
        assert [row["v"] for row in rows] == ["a", "c", "d"]
        assert 1 not in db.state["tables"]["t"].indexes["k"]

    def test_update_to_colliding_value_terminates(self, db):
        # UPDATE k = k-style collision sweep over every row.
        changed = db.execute("UPDATE t SET k = 3")
        assert changed == 4
        assert len(db.execute("SELECT * FROM t WHERE k = 3")) == 4

    def test_index_and_scan_agree(self, db):
        db.execute("INSERT INTO t VALUES (2, 'x')")
        db.execute("DELETE FROM t WHERE k = 1")
        indexed = db.execute("SELECT v FROM t WHERE k = 2 ORDER BY v")
        table = db.state["tables"]["t"]
        scanned = sorted(row["v"] for row in table.rows if row["k"] == 2)
        assert [row["v"] for row in indexed] == scanned


class TestHttpAccessControl:
    @pytest.fixture
    def server(self):
        instance = MiniHttpServer(Environment())
        instance.add_document("/private/secret.html", "classified")
        instance.add_document("/public.html", "open")
        instance.protect("/private", {"ada": "countess"})
        return instance

    def test_unprotected_path_open(self, server):
        assert server.handle_request("/public.html").status == 200

    def test_protected_path_requires_credentials(self, server):
        assert server.handle_request("/private/secret.html").status == 401

    def test_valid_credentials_accepted(self, server):
        response = server.handle_request(
            "/private/secret.html", credentials=("ada", "countess")
        )
        assert response.status == 200
        assert response.body == "classified"

    def test_wrong_password_rejected(self, server):
        response = server.handle_request(
            "/private/secret.html", credentials=("ada", "wrong")
        )
        assert response.status == 401

    def test_prefix_matches_whole_segments(self, server):
        # /privateer must NOT fall under the /private realm.
        server.add_document("/privateer.html", "ship")
        assert server.handle_request("/privateer.html").status == 200
