"""Soak tests: the mini applications under long generated workloads."""

import pytest

from repro.apps.soak import soak_desktop, soak_http_server, soak_sql_database


class TestSoakHttpServer:
    def test_clean_run(self):
        result = soak_http_server(operations=400, seed=11)
        assert result.clean
        assert result.operations == 400

    def test_deterministic(self):
        assert soak_http_server(operations=100, seed=3) == soak_http_server(
            operations=100, seed=3
        )


class TestSoakSqlDatabase:
    def test_clean_run(self):
        result = soak_sql_database(operations=400, seed=11)
        assert result.clean

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_state_invariants_hold_across_seeds(self, seed):
        assert soak_sql_database(operations=250, seed=seed).failures == 0


class TestSoakDesktop:
    def test_clean_run(self):
        result = soak_desktop(operations=400, seed=11)
        assert result.clean

    def test_no_descriptor_leak_across_seeds(self):
        for seed in (5, 6, 7):
            result = soak_desktop(operations=200, seed=seed)
            assert result.final_descriptors_in_use == 0
