"""Tests for the Figure 1-3 distributions."""

import pytest

from repro.analysis.distributions import release_distribution, time_distribution
from repro.bugdb.enums import Application, FaultClass
from repro.corpus.apache import RELEASES as APACHE_RELEASES
from repro.corpus.mysql import RELEASES as MYSQL_RELEASES
from repro.corpus.synthetic import synthetic_corpus

EI = FaultClass.ENV_INDEPENDENT


def apache_release_order():
    return tuple(version for version, _ in APACHE_RELEASES)


class TestFigure1Apache:
    def test_buckets_cover_all_faults(self, apache):
        series = release_distribution(apache, release_order=apache_release_order())
        assert sum(series.totals()) == 50

    def test_totals_grow_with_newer_releases(self, apache):
        # The paper: "the total number of bugs reported increases with
        # newer releases of software."
        totals = release_distribution(apache, release_order=apache_release_order()).totals()
        assert totals[0] < totals[-1]
        assert all(b >= a for a, b in zip(totals, totals[1:]))

    def test_env_independent_proportion_roughly_constant(self, apache):
        series = release_distribution(apache, release_order=apache_release_order())
        fractions = series.fractions()
        assert max(fractions) - min(fractions) < 0.25

    def test_unknown_release_rejected(self, apache):
        with pytest.raises(ValueError, match="outside release_order"):
            release_distribution(apache, release_order=("9.9.9",))

    def test_default_order_is_first_appearance(self, apache):
        series = release_distribution(apache)
        assert set(series.labels) == set(apache.versions())


class TestFigure2Gnome:
    def test_monthly_buckets_cover_all_faults(self, gnome):
        series = time_distribution(gnome, granularity="month")
        assert sum(series.totals()) == 45

    def test_dip_then_rise(self, gnome):
        # The paper: "GNOME shows a decrease in the number of faults
        # reported for a short interval before increasing again."
        totals = time_distribution(gnome, granularity="month").totals()
        trough = min(totals)
        trough_index = totals.index(trough)
        assert 0 < trough_index < len(totals) - 1
        assert max(totals[trough_index:]) > trough

    def test_env_independent_share_high_everywhere(self, gnome):
        series = time_distribution(gnome, granularity="quarter")
        for index in range(len(series.labels)):
            assert series.env_independent_fraction(index) >= 0.75

    def test_quarter_labels(self, gnome):
        series = time_distribution(gnome, granularity="quarter")
        assert all("Q" in label for label in series.labels)
        assert list(series.labels) == sorted(series.labels)

    def test_unknown_granularity(self, gnome):
        with pytest.raises(ValueError, match="granularity"):
            time_distribution(gnome, granularity="fortnight")


class TestFigure3Mysql:
    def test_buckets_cover_all_faults(self, mysql):
        order = tuple(version for version, _ in MYSQL_RELEASES)
        series = release_distribution(mysql, release_order=order)
        assert sum(series.totals()) == 44

    def test_last_release_substantially_lower(self, mysql):
        # The paper: "The last release has a substantially lower number of
        # faults because the release is very new."
        order = tuple(version for version, _ in MYSQL_RELEASES)
        totals = release_distribution(mysql, release_order=order).totals()
        assert totals[-1] < totals[-2] / 2

    def test_growth_before_last_release(self, mysql):
        order = tuple(version for version, _ in MYSQL_RELEASES)
        totals = release_distribution(mysql, release_order=order).totals()
        assert all(b >= a for a, b in zip(totals[:-1], totals[1:-1]))


class TestFigureSeries:
    def test_fraction_of_empty_bucket_is_zero(self):
        corpus = synthetic_corpus(
            Application.APACHE, env_independent=2, nontransient=0, transient=0,
            versions=("1.0",),
        )
        series = release_distribution(corpus, release_order=("1.0", "2.0"))
        assert series.total(1) == 0
        assert series.env_independent_fraction(1) == 0.0
