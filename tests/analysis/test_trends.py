"""Tests for the figure trend statistics."""

from repro.analysis.distributions import release_distribution, time_distribution
from repro.analysis.trends import (
    dip_analysis,
    growth_trend,
    last_release_outlier_ratio,
)
from repro.corpus.apache import RELEASES as APACHE_RELEASES
from repro.corpus.mysql import RELEASES as MYSQL_RELEASES


def apache_series(apache):
    return release_distribution(
        apache, release_order=tuple(v for v, _ in APACHE_RELEASES)
    )


def mysql_series(mysql):
    return release_distribution(
        mysql, release_order=tuple(v for v, _ in MYSQL_RELEASES)
    )


class TestGrowthTrend:
    def test_apache_totals_grow(self, apache):
        trend = growth_trend(apache_series(apache))
        assert trend.is_growing
        assert trend.slope > 0
        assert trend.kendall_tau > 0.5

    def test_mysql_grows_once_new_release_discounted(self, mysql):
        series = mysql_series(mysql)
        with_last = growth_trend(series)
        without_last = growth_trend(series, drop_last=True)
        # The brand-new release drags the naive trend down.
        assert without_last.kendall_tau > with_last.kendall_tau
        assert without_last.is_growing

    def test_constant_series_is_not_growing(self, apache):
        series = apache_series(apache)
        flat = type(series)(
            title="flat",
            labels=("a", "b", "c"),
            counts={k: (2, 2, 2) for k in series.counts},
        )
        trend = growth_trend(flat)
        assert trend.slope == 0.0
        assert not trend.is_growing

    def test_single_bucket_trend_is_flat(self, apache):
        series = apache_series(apache)
        single = type(series)(
            title="one",
            labels=("a",),
            counts={k: (5,) for k in series.counts},
        )
        assert growth_trend(single).slope == 0.0


class TestDipAnalysis:
    def test_gnome_monthly_dip(self, gnome):
        series = time_distribution(gnome, granularity="month")
        dip = dip_analysis(series)
        assert dip.has_interior_dip
        assert dip.trough_value == min(series.totals())
        assert dip.recovery_peak > dip.trough_value

    def test_monotone_series_has_no_interior_dip(self, apache):
        dip = dip_analysis(apache_series(apache))
        assert not dip.has_interior_dip

    def test_empty_series(self, apache):
        series = apache_series(apache)
        empty = type(series)(title="none", labels=(), counts={k: () for k in series.counts})
        assert not dip_analysis(empty).has_interior_dip


class TestLastReleaseOutlier:
    def test_mysql_new_release_is_an_outlier(self, mysql):
        ratio = last_release_outlier_ratio(mysql_series(mysql))
        assert ratio < 0.5

    def test_apache_last_release_is_not(self, apache):
        ratio = last_release_outlier_ratio(apache_series(apache))
        assert ratio > 1.0  # 1.3.4 has the most reports

    def test_degenerate_series(self, apache):
        series = apache_series(apache)
        single = type(series)(
            title="one", labels=("a",), counts={k: (5,) for k in series.counts}
        )
        assert last_release_outlier_ratio(single) == 1.0
