"""Tests for the bootstrap resampling analysis."""

import pytest

from repro.analysis.bootstrap import (
    bootstrap_all_corpora,
    bootstrap_class_fraction,
)
from repro.bugdb.enums import Application, FaultClass
from repro.corpus.synthetic import synthetic_corpus

EI = FaultClass.ENV_INDEPENDENT
EDT = FaultClass.ENV_DEP_TRANSIENT


class TestBootstrapInterval:
    def test_contains_point_estimate(self, apache):
        interval = bootstrap_class_fraction(apache, EI, resamples=500)
        assert interval.point_estimate == 36 / 50
        assert interval.contains(interval.point_estimate)
        assert 0.0 <= interval.low <= interval.high <= 1.0

    def test_deterministic_for_seed(self, apache):
        first = bootstrap_class_fraction(apache, EDT, resamples=300, seed=9)
        second = bootstrap_class_fraction(apache, EDT, resamples=300, seed=9)
        assert first == second

    def test_interval_narrows_with_confidence(self, apache):
        wide = bootstrap_class_fraction(apache, EI, resamples=800, confidence=0.99)
        narrow = bootstrap_class_fraction(apache, EI, resamples=800, confidence=0.5)
        assert narrow.width <= wide.width

    def test_degenerate_all_one_class(self):
        corpus = synthetic_corpus(
            Application.APACHE, env_independent=20, nontransient=0, transient=0
        )
        interval = bootstrap_class_fraction(corpus, EI, resamples=200)
        assert interval.low == interval.high == 1.0

    def test_invalid_parameters(self, apache):
        with pytest.raises(ValueError):
            bootstrap_class_fraction(apache, EI, resamples=0)
        with pytest.raises(ValueError):
            bootstrap_class_fraction(apache, EI, confidence=1.5)


class TestStudyWideBootstrap:
    def test_paper_ranges_inside_bootstrap_intervals(self, study):
        """Each application's transient fraction is a stable estimate:
        the observed value sits inside its own 95% interval, and the
        intervals are wide -- the paper's 5-14% spread is well within
        sampling noise of a common underlying rate."""
        intervals = bootstrap_all_corpora(
            list(study.corpora.values()), EDT, resamples=800
        )
        assert set(intervals) == {"apache", "gnome", "mysql"}
        for interval in intervals.values():
            assert interval.contains(interval.point_estimate)
        # Pairwise overlap: no application is a statistical outlier.
        values = list(intervals.values())
        for left in values:
            for right in values:
                assert left.low <= right.high
