"""Tests for the Section 6 mitigation mapping."""

from repro.analysis.mitigations import (
    MitigationKind,
    assess_fault,
    assess_study,
)
from repro.bugdb.enums import FaultClass, TriggerKind

EI = FaultClass.ENV_INDEPENDENT
EDN = FaultClass.ENV_DEP_NONTRANSIENT
EDT = FaultClass.ENV_DEP_TRANSIENT


class TestAssessFault:
    def test_env_independent_gets_prevention_only(self, apache):
        fault = next(f for f in apache.faults if f.fault_class is EI)
        assessment = assess_fault(fault)
        assert MitigationKind.INSPECTION_AND_TESTING in assessment.mitigations
        assert MitigationKind.PROCESS_PAIRS not in assessment.mitigations
        assert not assessment.survivable_without_code_change

    def test_overflow_bug_suggests_type_safety(self, apache):
        # "dies with a segfault when the submitted URL is very long" was
        # an overflow; Section 6.1 names Java/Purify for exactly this.
        fault = next(f for f in apache.faults if "overflow" in f.description)
        assessment = assess_fault(fault)
        assert MitigationKind.TYPE_SAFE_LANGUAGE in assessment.mitigations
        assert MitigationKind.MEMORY_TOOLS in assessment.mitigations

    def test_platform_bug_suggests_standard_libraries(self, apache):
        fault = next(f for f in apache.faults if "Solaris" in f.description)
        assert MitigationKind.STANDARD_LIBRARIES in assess_fault(fault).mitigations

    def test_fd_exhaustion_growable_and_reclaimable(self, apache):
        fault = next(
            f for f in apache.faults
            if f.trigger is TriggerKind.FILE_DESCRIPTOR_EXHAUSTION
        )
        assessment = assess_fault(fault)
        assert MitigationKind.GROW_RESOURCE in assessment.mitigations
        assert MitigationKind.RECLAIM_RESOURCE in assessment.mitigations
        assert assessment.survivable_without_code_change

    def test_hardware_removal_is_admin_only(self, apache):
        fault = next(f for f in apache.faults if f.trigger is TriggerKind.HARDWARE_REMOVAL)
        assessment = assess_fault(fault)
        assert assessment.mitigations == (MitigationKind.ADMINISTRATOR_ACTION,)

    def test_transient_faults_get_process_pairs(self, mysql):
        fault = next(f for f in mysql.faults if f.fault_class is EDT)
        assessment = assess_fault(fault)
        assert MitigationKind.PROCESS_PAIRS in assessment.mitigations

    def test_race_gets_environment_change_inducement(self, gnome):
        fault = next(f for f in gnome.faults if f.trigger is TriggerKind.RACE_CONDITION)
        assert (
            MitigationKind.ENVIRONMENT_CHANGE_INDUCEMENT
            in assess_fault(fault).mitigations
        )

    def test_leak_gets_rejuvenation(self, apache):
        fault = next(f for f in apache.faults if f.trigger is TriggerKind.RESOURCE_LEAK)
        assert MitigationKind.REJUVENATION in assess_fault(fault).mitigations


class TestAssessStudy:
    def test_every_fault_assessed_with_a_mitigation(self, study):
        coverage = assess_study(study)
        assert coverage.total == 139
        assert all(assessment.mitigations for assessment in coverage.assessments)

    def test_generic_recovery_coverage_equals_transient_share(self, study):
        coverage = assess_study(study)
        assert coverage.generic_recovery_coverage() == 12 / 139

    def test_prevention_only_count_is_env_independent(self, study):
        # Exactly the environment-independent faults have no runtime
        # technique -- the paper's "no easy or general technique" claim.
        coverage = assess_study(study)
        assert coverage.prevention_only_count() == 113

    def test_counts_by_mitigation_consistency(self, study):
        coverage = assess_study(study)
        counts = coverage.counts_by_mitigation()
        assert counts[MitigationKind.INSPECTION_AND_TESTING] == 113
        assert counts[MitigationKind.PROCESS_PAIRS] == 12
        assert sum(counts.values()) == sum(
            len(assessment.mitigations) for assessment in coverage.assessments
        )
