"""Tests for aggregate numbers, statistics, and the Lee & Iyer model."""

import math

import pytest

from repro.analysis.aggregate import aggregate_summary
from repro.analysis.distributions import release_distribution
from repro.analysis.leeiyer import LeeIyerReconciliation, lee_iyer_reconciliation
from repro.analysis.stats import proportion_invariance_chi2, wilson_interval
from repro.bugdb.enums import Application, FaultClass
from repro.corpus.apache import RELEASES as APACHE_RELEASES

EI = FaultClass.ENV_INDEPENDENT
EDN = FaultClass.ENV_DEP_NONTRANSIENT
EDT = FaultClass.ENV_DEP_TRANSIENT


class TestAggregateSection54:
    def test_139_faults(self, study):
        summary = aggregate_summary(study)
        assert summary.total_faults == 139

    def test_14_nontransient_10_percent(self, study):
        summary = aggregate_summary(study)
        assert summary.counts[EDN] == 14
        assert round(summary.fraction(EDN) * 100) == 10

    def test_12_transient_9_percent(self, study):
        summary = aggregate_summary(study)
        assert summary.counts[EDT] == 12
        assert round(summary.fraction(EDT) * 100) == 9

    def test_abstract_ranges(self, study):
        summary = aggregate_summary(study)
        ei_low, ei_high = summary.fraction_range(EI)
        assert round(ei_low * 100) == 72
        assert round(ei_high * 100) == 87
        edt_low, edt_high = summary.fraction_range(EDT)
        assert round(edt_low * 100) == 5
        assert round(edt_high * 100) == 14

    def test_generic_recovery_upper_bound(self, study):
        summary = aggregate_summary(study)
        assert summary.generic_recovery_upper_bound == 12 / 139

    def test_per_application_fractions(self, study):
        summary = aggregate_summary(study)
        assert summary.app_fraction(Application.APACHE, EI) == 36 / 50
        assert summary.app_fraction(Application.MYSQL, EDT) == 2 / 44


class TestWilsonInterval:
    def test_contains_point_estimate(self):
        low, high = wilson_interval(12, 139)
        assert low < 12 / 139 < high

    def test_zero_successes(self):
        low, high = wilson_interval(0, 50)
        assert low == 0.0
        assert high > 0.0

    def test_all_successes(self):
        low, high = wilson_interval(50, 50)
        assert high == 1.0
        assert low < 1.0

    def test_zero_total_is_uninformative(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)

    def test_narrower_with_more_data(self):
        low_small, high_small = wilson_interval(5, 50)
        low_big, high_big = wilson_interval(50, 500)
        assert (high_big - low_big) < (high_small - low_small)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 4)
        with pytest.raises(ValueError):
            wilson_interval(-1, 4)

    def test_known_value(self):
        # Wilson 95% interval for 8/10 is approximately (0.490, 0.943).
        low, high = wilson_interval(8, 10)
        assert math.isclose(low, 0.490, abs_tol=0.005)
        assert math.isclose(high, 0.943, abs_tol=0.005)


class TestChi2Invariance:
    def test_apache_proportions_invariant(self, apache):
        order = tuple(version for version, _ in APACHE_RELEASES)
        series = release_distribution(apache, release_order=order)
        result = proportion_invariance_chi2(series)
        assert result.invariant_at_5pct
        assert result.degrees_of_freedom == len(order) - 1

    def test_statistic_zero_for_identical_buckets(self, apache):
        order = tuple(version for version, _ in APACHE_RELEASES)
        series = release_distribution(apache, release_order=order)
        result = proportion_invariance_chi2(series)
        assert result.statistic >= 0.0
        assert 0.0 <= result.p_value <= 1.0

    def test_needs_two_buckets(self, apache):
        series = release_distribution(apache, release_order=("1.2.4",) + tuple(
            v for v, _ in APACHE_RELEASES if v != "1.2.4"
        ))
        # Collapse everything into a single usable bucket.
        with pytest.raises(ValueError, match="two non-empty buckets"):
            proportion_invariance_chi2(series, min_bucket_total=50)

    def test_p_value_agrees_with_scipy(self, apache):
        scipy_stats = pytest.importorskip("scipy.stats")
        order = tuple(version for version, _ in APACHE_RELEASES)
        series = release_distribution(apache, release_order=order)
        result = proportion_invariance_chi2(series)
        expected = scipy_stats.chi2.sf(result.statistic, result.degrees_of_freedom)
        assert math.isclose(result.p_value, expected, rel_tol=1e-9, abs_tol=1e-12)


class TestLeeIyer:
    def test_published_endpoints(self):
        reconciliation = lee_iyer_reconciliation()
        assert reconciliation.reported_recovery_rate == 0.82
        assert math.isclose(reconciliation.purely_generic_rate, 0.29, abs_tol=1e-12)

    def test_steps_are_monotonically_decreasing(self):
        steps = lee_iyer_reconciliation().steps()
        rates = [rate for _, rate in steps]
        assert rates == sorted(rates, reverse=True)
        assert len(steps) == 4

    def test_residual_gap_explanations(self):
        explanations = lee_iyer_reconciliation().residual_gap_explanations()
        assert len(explanations) == 2
        assert any("tested more thoroughly" in text for text in explanations)
        assert any("hardware" in text for text in explanations)

    def test_invalid_fractions_rejected(self):
        with pytest.raises(ValueError):
            LeeIyerReconciliation(reported_recovery_rate=1.5)

    def test_generic_rate_floors_at_zero(self):
        reconciliation = LeeIyerReconciliation(
            reported_recovery_rate=0.2,
            app_specific_state_share=0.3,
        )
        assert reconciliation.purely_generic_rate == 0.0

    def test_still_above_this_studys_range(self, study):
        # 29% > 5-14%: the residual gap the paper attributes to Tandem's
        # testing rigour and OS-hardware coupling.
        from repro.analysis.aggregate import aggregate_summary

        summary = aggregate_summary(study)
        _, edt_high = summary.fraction_range(FaultClass.ENV_DEP_TRANSIENT)
        assert lee_iyer_reconciliation().purely_generic_rate > edt_high
