"""Tests for the Section 7 related-work comparison."""

import pytest

from repro.analysis.aggregate import aggregate_summary
from repro.analysis.related import (
    PRIOR_STUDIES,
    PriorStudy,
    related_work_comparison,
)


class TestPriorStudy:
    def test_published_ranges(self):
        by_name = {study.name: study for study in PRIOR_STUDIES}
        sullivan = by_name["Sullivan91/92"]
        assert (sullivan.transient_low, sullivan.transient_high) == (0.05, 0.13)
        lee = by_name["Lee93"]
        assert lee.transient_low == lee.transient_high == 0.14

    def test_invalid_range_rejected(self):
        with pytest.raises(ValueError):
            PriorStudy(name="x", systems="y", transient_low=0.5, transient_high=0.2, notes="")

    def test_overlap(self):
        study = PriorStudy(name="x", systems="y", transient_low=0.1, transient_high=0.2, notes="")
        assert study.overlaps(0.15, 0.3)
        assert study.overlaps(0.2, 0.2)
        assert not study.overlaps(0.25, 0.3)


class TestComparison:
    def test_this_study_range_from_aggregate(self, study):
        comparison = related_work_comparison(aggregate_summary(study))
        assert round(comparison.this_study_low * 100) == 5
        assert round(comparison.this_study_high * 100) == 14

    def test_all_prior_studies_consistent(self, study):
        # The paper: prior studies "support our conclusion".
        comparison = related_work_comparison(aggregate_summary(study))
        assert comparison.all_consistent()

    def test_rows_include_this_study_last(self, study):
        rows = related_work_comparison(aggregate_summary(study)).rows()
        assert len(rows) == len(PRIOR_STUDIES) + 1
        assert rows[-1][0].startswith("this study")
        assert rows[-1][1] == "Apache, GNOME, MySQL"

    def test_inconsistent_study_detected(self, study):
        comparison = related_work_comparison(aggregate_summary(study))
        outlier = PriorStudy(
            name="outlier", systems="z", transient_low=0.8, transient_high=0.9, notes=""
        )
        assert not comparison.consistent_with(outlier)
