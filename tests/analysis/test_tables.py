"""Tests for classification tables (Tables 1-3)."""

from repro.analysis.tables import classification_table, classify_and_tabulate
from repro.bugdb.enums import Application, FaultClass

EI = FaultClass.ENV_INDEPENDENT
EDN = FaultClass.ENV_DEP_NONTRANSIENT
EDT = FaultClass.ENV_DEP_TRANSIENT


class TestClassificationTable:
    def test_table_1_apache(self, apache):
        table = classification_table(apache)
        assert table.counts == {EI: 36, EDN: 7, EDT: 7}
        assert table.total == 50
        assert table.matches({EI: 36, EDN: 7, EDT: 7})

    def test_table_2_gnome(self, gnome):
        table = classification_table(gnome)
        assert table.matches({EI: 39, EDN: 3, EDT: 3})

    def test_table_3_mysql(self, mysql):
        table = classification_table(mysql)
        assert table.matches({EI: 38, EDN: 4, EDT: 2})

    def test_fractions(self, apache):
        table = classification_table(apache)
        assert table.fraction(EI) == 36 / 50
        assert abs(sum(table.fraction(c) for c in FaultClass) - 1.0) < 1e-12

    def test_rows_in_paper_order(self, apache):
        rows = classification_table(apache).rows()
        assert [name for name, _ in rows] == [
            "environment-independent",
            "environment-dependent-nontransient",
            "environment-dependent-transient",
        ]

    def test_matches_rejects_wrong_counts(self, apache):
        assert not classification_table(apache).matches({EI: 35, EDN: 8, EDT: 7})


class TestClassifyAndTabulate:
    def test_tabulates_from_text(self, apache):
        reports = apache.to_reports(attach_evidence=False)
        table = classify_and_tabulate(Application.APACHE, reports)
        assert table.matches({EI: 36, EDN: 7, EDT: 7})

    def test_empty_reports(self):
        table = classify_and_tabulate(Application.APACHE, [])
        assert table.total == 0
        assert table.fraction(EI) == 0.0
