"""Tests for the discrete-event load generator."""

import pytest

from repro.apps.httpserver import MiniHttpServer
from repro.apps.sqldb import MiniSqlDatabase
from repro.envmodel.environment import Environment
from repro.envmodel.loadgen import LoadProfile, generate_load


class TestLoadProfile:
    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            LoadProfile(requests_per_second=0)

    def test_invalid_jitter(self):
        with pytest.raises(ValueError):
            LoadProfile(jitter=2.0)


class TestGenerateLoad:
    def test_requests_scale_with_rate_and_duration(self):
        app = MiniHttpServer(Environment())
        result = generate_load(
            app, "get-page", LoadProfile(requests_per_second=20, duration_seconds=10)
        )
        assert 150 <= result.requests_issued <= 250
        assert result.failure_free
        assert app.state["requests_served"] == result.requests_issued

    def test_virtual_time_advances_past_duration(self):
        app = MiniHttpServer(Environment())
        result = generate_load(
            app, "get-page", LoadProfile(requests_per_second=5, duration_seconds=30)
        )
        assert result.virtual_seconds >= 30 - 1

    def test_deterministic_for_seed(self):
        first = generate_load(
            MiniHttpServer(Environment()), "get-page",
            LoadProfile(requests_per_second=7, duration_seconds=5), seed=3,
        )
        second = generate_load(
            MiniHttpServer(Environment()), "get-page",
            LoadProfile(requests_per_second=7, duration_seconds=5), seed=3,
        )
        assert first.requests_issued == second.requests_issued

    def test_failures_counted_not_raised(self):
        env = Environment()
        app = MiniSqlDatabase(env)
        env.disk.fill()  # every insert hits the full file system

        crashes = []
        from repro.apps.faults import InjectedDefect
        from repro.corpus import mysql_corpus
        from repro.bugdb.enums import TriggerKind

        fault = next(
            f for f in mysql_corpus().faults if f.trigger is TriggerKind.DISK_FULL
        )
        defect = InjectedDefect(fault)
        app.injector.inject(defect)

        result = generate_load(
            app,
            fault.workload_op,
            LoadProfile(requests_per_second=10, duration_seconds=2),
            on_failure=crashes.append,
        )
        assert result.failures == result.requests_issued
        assert len(crashes) == result.failures
        assert not result.failure_free

    def test_zero_duration_issues_nothing(self):
        app = MiniHttpServer(Environment())
        result = generate_load(
            app, "get-page", LoadProfile(requests_per_second=10, duration_seconds=0)
        )
        assert result.requests_issued == 0

    def test_periodic_load_without_jitter(self):
        app = MiniHttpServer(Environment())
        result = generate_load(
            app, "get-page",
            LoadProfile(requests_per_second=10, duration_seconds=1, jitter=0.0),
        )
        # Float accumulation of the 0.1 s gap may fit one extra arrival
        # fractionally before the 1 s boundary.
        assert result.requests_issued in (10, 11)
