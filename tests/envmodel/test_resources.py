"""Tests for finite OS resources."""

import pytest

from repro.envmodel.resources import BoundedResource, DiskVolume, EntropyPool
from repro.errors import ResourceExhaustedError


class TestBoundedResource:
    def test_acquire_release_cycle(self):
        resource = BoundedResource("fds", 4)
        resource.acquire(3)
        assert resource.in_use == 3
        assert resource.available == 1
        resource.release(2)
        assert resource.in_use == 1

    def test_exhaustion_raises_named_error(self):
        resource = BoundedResource("fds", 2)
        resource.acquire(2)
        assert resource.exhausted
        with pytest.raises(ResourceExhaustedError) as excinfo:
            resource.acquire()
        assert excinfo.value.resource == "fds"

    def test_over_release_rejected(self):
        resource = BoundedResource("fds", 4)
        resource.acquire(1)
        with pytest.raises(ValueError):
            resource.release(2)

    def test_release_all(self):
        resource = BoundedResource("slots", 10)
        resource.acquire(7)
        assert resource.release_all() == 7
        assert resource.in_use == 0

    def test_grow(self):
        resource = BoundedResource("fds", 2)
        resource.acquire(2)
        resource.grow(2)
        resource.acquire(2)
        assert resource.in_use == 4

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            BoundedResource("x", -1)

    def test_negative_units_rejected(self):
        resource = BoundedResource("x", 5)
        with pytest.raises(ValueError):
            resource.acquire(-1)
        with pytest.raises(ValueError):
            resource.release(-1)


class TestDiskVolume:
    def test_write_and_sizes(self):
        disk = DiskVolume(1000)
        disk.write("log", 300)
        disk.write("log", 200)
        assert disk.file_size("log") == 500
        assert disk.used_bytes == 500
        assert disk.free_bytes == 500

    def test_volume_full(self):
        disk = DiskVolume(100)
        disk.write("a", 100)
        assert disk.full
        with pytest.raises(ResourceExhaustedError) as excinfo:
            disk.write("b", 1)
        assert excinfo.value.resource == "disk_space"

    def test_per_file_limit(self):
        disk = DiskVolume(10_000, max_file_bytes=100)
        disk.write("log", 100)
        with pytest.raises(ResourceExhaustedError) as excinfo:
            disk.write("log", 1)
        assert excinfo.value.resource == "max_file_size"

    def test_raise_file_limit_clears_condition(self):
        disk = DiskVolume(10_000, max_file_bytes=100)
        disk.write("log", 100)
        disk.raise_file_limit(None)
        disk.write("log", 50)
        assert disk.file_size("log") == 150

    def test_delete_frees_space(self):
        disk = DiskVolume(100)
        disk.write("a", 60)
        assert disk.delete("a") == 60
        assert disk.free_bytes == 100
        assert disk.delete("missing") == 0

    def test_fill_and_free_external(self):
        disk = DiskVolume(100)
        disk.write("mine", 30)
        disk.fill()
        assert disk.full
        disk.free_external()
        assert disk.free_bytes == 70
        assert disk.file_size("mine") == 30

    def test_grow(self):
        disk = DiskVolume(100)
        disk.fill()
        disk.grow(50)
        assert not disk.full
        disk.write("x", 50)
        assert disk.full


class TestEntropyPool:
    def test_draw_and_refill(self):
        pool = EntropyPool(bits=100, refill_rate_bits_per_second=10)
        pool.draw(60)
        assert pool.bits == 40
        pool.accumulate(6.0)
        assert pool.bits == 100

    def test_exhaustion(self):
        pool = EntropyPool(bits=10)
        with pytest.raises(ResourceExhaustedError) as excinfo:
            pool.draw(11)
        assert excinfo.value.resource == "entropy"

    def test_drain(self):
        pool = EntropyPool(bits=500)
        pool.drain()
        assert pool.bits == 0

    def test_negative_arguments_rejected(self):
        pool = EntropyPool(bits=10)
        with pytest.raises(ValueError):
            pool.draw(-1)
        with pytest.raises(ValueError):
            pool.accumulate(-1.0)
