"""Tests for the thread scheduler, environment, and perturbation."""

import pytest

from repro.classify.recovery_model import (
    ELASTIC_ENVIRONMENT,
    PAPER_DEFAULT,
    RESTART_FRESH,
    RecoveryModel,
)
from repro.envmodel.environment import Environment, EnvironmentSpec
from repro.envmodel.perturb import ResourceFootprint, apply_recovery_perturbation
from repro.envmodel.scheduler import ThreadScheduler


class TestThreadScheduler:
    def test_same_seed_same_interleaving(self):
        threads = {"a": ["a1", "a2"], "b": ["b1"]}
        first = ThreadScheduler(seed=5).interleave(threads)
        second = ThreadScheduler(seed=5).interleave(threads)
        assert first == second

    def test_different_seed_usually_differs(self):
        threads = {"a": [f"a{i}" for i in range(8)], "b": [f"b{i}" for i in range(8)]}
        orders = {tuple(ThreadScheduler(seed=s).interleave(threads)) for s in range(8)}
        assert len(orders) > 1

    def test_interleaving_covers_all_operations(self):
        threads = {"a": ["a1", "a2"], "b": ["b1", "b2", "b3"]}
        order = ThreadScheduler(seed=1).interleave(threads)
        assert sorted(op for _, op in order) == ["a1", "a2", "b1", "b2", "b3"]
        # Per-thread order must be preserved.
        a_ops = [op for name, op in order if name == "a"]
        assert a_ops == ["a1", "a2"]

    def test_race_fires_deterministic_per_seed(self):
        assert ThreadScheduler(seed=3).race_fires(0.5) == ThreadScheduler(seed=3).race_fires(0.5)

    def test_race_window_bounds(self):
        scheduler = ThreadScheduler()
        assert not scheduler.race_fires(0.0)
        assert scheduler.race_fires(1.0)
        with pytest.raises(ValueError):
            scheduler.race_fires(1.5)

    def test_pick_requires_runnable(self):
        with pytest.raises(ValueError):
            ThreadScheduler().pick([])

    def test_reseed_restarts_stream(self):
        scheduler = ThreadScheduler(seed=1)
        first = [scheduler.race_fires(0.5) for _ in range(5)]
        scheduler.reseed(1)
        second = [scheduler.race_fires(0.5) for _ in range(5)]
        assert first == second
        assert scheduler.context_switches == 5


class TestEnvironment:
    def test_spec_sizes_resources(self):
        env = Environment(spec=EnvironmentSpec(file_descriptors=8, process_slots=2))
        assert env.file_descriptors.capacity == 8
        assert env.process_table.capacity == 2

    def test_resource_lookup(self):
        env = Environment()
        assert env.resource("file_descriptors") is env.file_descriptors
        assert env.resource("network_buffers") is env.network.buffers
        with pytest.raises(KeyError):
            env.resource("quantum_flux")

    def test_reseed_scheduler_changes_seed(self):
        env = Environment()
        before = env.scheduler.seed
        env.reseed_scheduler()
        assert env.scheduler.seed != before

    def test_change_hostname(self):
        env = Environment()
        env.change_hostname("other.example.com")
        assert env.hostname == "other.example.com"


class TestPerturbation:
    def test_time_passes_and_entropy_accumulates(self):
        env = Environment()
        env.entropy.drain()
        apply_recovery_perturbation(env, PAPER_DEFAULT, downtime_seconds=100.0)
        assert env.clock.now == 100.0
        assert env.entropy.bits > 0

    def test_paper_default_kills_processes_and_ports(self):
        env = Environment(spec=EnvironmentSpec(process_slots=4, network_ports=4))
        footprint = ResourceFootprint()
        env.process_table.acquire(3)
        footprint.process_slots = 3
        env.ports.acquire(2)
        footprint.ports = 2
        apply_recovery_perturbation(env, PAPER_DEFAULT, footprint)
        assert env.process_table.in_use == 0
        assert env.ports.in_use == 0
        assert footprint.process_slots == 0

    def test_paper_default_preserves_descriptors(self):
        env = Environment(spec=EnvironmentSpec(file_descriptors=4))
        footprint = ResourceFootprint()
        env.file_descriptors.acquire(4)
        footprint.descriptors = 4
        footprint.leaked_descriptors = 4
        apply_recovery_perturbation(env, PAPER_DEFAULT, footprint)
        assert env.file_descriptors.exhausted  # truly generic: state kept

    def test_elastic_model_reclaims_and_grows(self):
        env = Environment(spec=EnvironmentSpec(file_descriptors=4))
        footprint = ResourceFootprint()
        env.file_descriptors.acquire(4)
        footprint.descriptors = 4
        footprint.leaked_descriptors = 4
        env.disk.fill()
        apply_recovery_perturbation(env, ELASTIC_ENVIRONMENT, footprint)
        assert not env.file_descriptors.exhausted
        assert not env.disk.full
        assert env.disk.max_file_bytes is None

    def test_restart_fresh_releases_everything(self):
        env = Environment()
        footprint = ResourceFootprint()
        env.file_descriptors.acquire(5)
        footprint.descriptors = 5
        env.process_table.acquire(2)
        footprint.process_slots = 2
        env.network.buffers.acquire(3)
        footprint.network_buffers = 3
        apply_recovery_perturbation(env, RESTART_FRESH, footprint)
        assert env.file_descriptors.in_use == 0
        assert env.process_table.in_use == 0
        assert env.network.buffers.in_use == 0

    def test_external_repair_restores_dns_and_network(self):
        from repro.envmodel.dns import DnsState
        from repro.envmodel.network import NetworkState

        env = Environment()
        env.dns.degrade(DnsState.ERROR)
        env.network.degrade(NetworkState.SLOW)
        apply_recovery_perturbation(env, PAPER_DEFAULT)
        assert env.dns.state is DnsState.HEALTHY
        assert env.network.state is NetworkState.NORMAL

    def test_no_external_repair_leaves_dns_broken(self):
        from repro.envmodel.dns import DnsState

        env = Environment()
        env.dns.degrade(DnsState.ERROR)
        model = RecoveryModel(expects_external_repair=False)
        apply_recovery_perturbation(env, model)
        assert env.dns.state is DnsState.ERROR

    def test_scheduler_reseeded(self):
        env = Environment()
        before = env.scheduler.seed
        apply_recovery_perturbation(env, PAPER_DEFAULT)
        assert env.scheduler.seed != before
