"""Tests for the simulation clock and event queue."""

import pytest

from repro.envmodel.clock import SimulationClock
from repro.envmodel.events import EventQueue


class TestSimulationClock:
    def test_starts_at_zero(self):
        assert SimulationClock().now == 0.0

    def test_advance(self):
        clock = SimulationClock()
        assert clock.advance(5.0) == 5.0
        assert clock.advance(2.5) == 7.5

    def test_cannot_move_backwards(self):
        with pytest.raises(ValueError):
            SimulationClock().advance(-1.0)

    def test_advance_to_past_is_noop(self):
        clock = SimulationClock(start=10.0)
        assert clock.advance_to(5.0) == 10.0

    def test_advance_to_future(self):
        clock = SimulationClock()
        assert clock.advance_to(42.0) == 42.0


class TestEventQueue:
    def test_events_fire_in_time_order(self):
        clock = SimulationClock()
        queue = EventQueue(clock)
        fired = []
        queue.schedule(3.0, lambda: fired.append("late"))
        queue.schedule(1.0, lambda: fired.append("early"))
        queue.drain()
        assert fired == ["early", "late"]
        assert clock.now == 3.0

    def test_ties_fire_in_insertion_order(self):
        queue = EventQueue(SimulationClock())
        fired = []
        queue.schedule(1.0, lambda: fired.append("first"))
        queue.schedule(1.0, lambda: fired.append("second"))
        queue.drain()
        assert fired == ["first", "second"]

    def test_negative_delay_rejected(self):
        queue = EventQueue(SimulationClock())
        with pytest.raises(ValueError):
            queue.schedule(-0.5, lambda: None)

    def test_run_until_deadline(self):
        clock = SimulationClock()
        queue = EventQueue(clock)
        fired = []
        queue.schedule(1.0, lambda: fired.append(1))
        queue.schedule(5.0, lambda: fired.append(5))
        assert queue.run_until(2.0) == 1
        assert fired == [1]
        assert clock.now == 2.0
        assert len(queue) == 1

    def test_run_next_empty_queue(self):
        assert EventQueue(SimulationClock()).run_next() is None

    def test_self_scheduling_bounded(self):
        clock = SimulationClock()
        queue = EventQueue(clock)

        def reschedule():
            queue.schedule(1.0, reschedule)

        queue.schedule(1.0, reschedule)
        with pytest.raises(RuntimeError, match="did not drain"):
            queue.drain(max_events=50)

    def test_events_can_schedule_followups(self):
        clock = SimulationClock()
        queue = EventQueue(clock)
        fired = []
        queue.schedule(1.0, lambda: queue.schedule(1.0, lambda: fired.append("child")))
        assert queue.drain() == 2
        assert fired == ["child"]
        assert clock.now == 2.0
