"""Tests for the DNS server and network models."""

import pytest

from repro.envmodel.dns import DnsLookupError, DnsServer, DnsState
from repro.envmodel.network import Network, NetworkDownError, NetworkState


class TestDnsServer:
    def test_forward_lookup(self):
        dns = DnsServer()
        dns.add_record("host.example.com", "10.0.0.1")
        address, latency = dns.lookup("host.example.com")
        assert address == "10.0.0.1"
        assert latency == dns.latency_seconds

    def test_reverse_lookup(self):
        dns = DnsServer()
        dns.add_record("host.example.com", "10.0.0.1")
        hostname, _ = dns.reverse_lookup("10.0.0.1")
        assert hostname == "host.example.com"

    def test_record_without_reverse(self):
        dns = DnsServer()
        dns.add_record("host.example.com", "10.0.0.1", with_reverse=False)
        assert not dns.has_reverse("10.0.0.1")
        with pytest.raises(DnsLookupError, match="no PTR record"):
            dns.reverse_lookup("10.0.0.1")

    def test_remove_reverse(self):
        dns = DnsServer()
        dns.add_record("host.example.com", "10.0.0.1")
        dns.remove_reverse("10.0.0.1")
        assert not dns.has_reverse("10.0.0.1")

    def test_unknown_name(self):
        with pytest.raises(DnsLookupError, match="NXDOMAIN"):
            DnsServer().lookup("nobody.example.com")

    def test_error_state_fails_all_lookups(self):
        dns = DnsServer()
        dns.add_record("host.example.com", "10.0.0.1")
        dns.degrade(DnsState.ERROR)
        with pytest.raises(DnsLookupError, match="SERVFAIL"):
            dns.lookup("host.example.com")
        with pytest.raises(DnsLookupError, match="SERVFAIL"):
            dns.reverse_lookup("10.0.0.1")

    def test_slow_state_raises_latency(self):
        dns = DnsServer(slow_latency_seconds=30.0)
        dns.add_record("host.example.com", "10.0.0.1")
        dns.degrade(DnsState.SLOW)
        _, latency = dns.lookup("host.example.com")
        assert latency == 30.0

    def test_restart_restores_health_and_records(self):
        dns = DnsServer()
        dns.add_record("host.example.com", "10.0.0.1")
        dns.degrade(DnsState.ERROR)
        dns.restart()
        assert dns.state is DnsState.HEALTHY
        assert dns.lookup("host.example.com")[0] == "10.0.0.1"

    def test_restart_does_not_recreate_removed_records(self):
        # Restarting DNS fixes its health, not its zone data: a missing
        # PTR record is an administrator problem (the MySQL trigger).
        dns = DnsServer()
        dns.add_record("host.example.com", "10.0.0.1")
        dns.remove_reverse("10.0.0.1")
        dns.restart()
        assert not dns.has_reverse("10.0.0.1")


class TestNetwork:
    def test_normal_transfer_time(self):
        network = Network(bandwidth_bytes_per_second=1000)
        assert network.transfer_seconds(500) == 0.5

    def test_slow_state(self):
        network = Network(slow_bandwidth_bytes_per_second=10)
        network.degrade(NetworkState.SLOW)
        assert network.transfer_seconds(100) == 10.0

    def test_repair(self):
        network = Network()
        network.degrade(NetworkState.SLOW)
        network.repair()
        assert network.state is NetworkState.NORMAL

    def test_partition_blocks_transfers(self):
        network = Network()
        network.degrade(NetworkState.PARTITIONED)
        with pytest.raises(NetworkDownError, match="partitioned"):
            network.transfer_seconds(10)

    def test_interface_removal(self):
        network = Network()
        network.remove_interface()
        with pytest.raises(NetworkDownError, match="interface removed"):
            network.require_up()
        network.insert_interface()
        network.require_up()

    def test_repair_does_not_reinsert_interface(self):
        # Fixing the network path cannot reinsert a removed card -- the
        # hardware trigger stays nontransient.
        network = Network()
        network.remove_interface()
        network.repair()
        with pytest.raises(NetworkDownError):
            network.require_up()

    def test_buffer_pool(self):
        network = Network(buffer_capacity=2)
        network.buffers.acquire(2)
        assert network.buffers.exhausted

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            Network().transfer_seconds(-1)
