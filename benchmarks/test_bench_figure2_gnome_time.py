"""F2 -- Figure 2: GNOME fault distribution over time.

Reproduces the figure's published properties: a very high environment-
independent proportion over all periods, and "a decrease in the number
of faults reported for a short interval before increasing again".
"""

from repro.analysis.distributions import time_distribution
from repro.reports.figures import render_figure


def test_bench_figure2_gnome_time(benchmark, gnome):
    series = benchmark(time_distribution, gnome, granularity="month")

    totals = series.totals()
    assert sum(totals) == 45
    # High environment-independent proportion in every non-trivial bucket.
    for index in range(len(series.labels)):
        if totals[index] >= 4:
            assert series.env_independent_fraction(index) >= 0.6
    # Dip then rise.
    trough_index = totals.index(min(totals))
    assert 0 < trough_index < len(totals) - 1
    assert max(totals[trough_index:]) > totals[trough_index]

    benchmark.extra_info["paper_shape"] = (
        "EI proportion very high over all periods; dip in reports for a "
        "short interval, then increase"
    )
    benchmark.extra_info["measured_totals"] = list(totals)
    benchmark.extra_info["figure"] = render_figure(series)
