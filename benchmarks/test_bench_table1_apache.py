"""T1 -- Table 1: Apache fault classification (36 / 7 / 7).

Regenerates Table 1 end to end: full-scale GNATS archive -> mining ->
text classification -> table.  The classifier must land on the paper's
exact counts with no curated evidence in the path.
"""

from repro.analysis.tables import classify_and_tabulate
from repro.bugdb.enums import Application, FaultClass
from repro.mining import mine_apache

EXPECTED = {
    FaultClass.ENV_INDEPENDENT: 36,
    FaultClass.ENV_DEP_NONTRANSIENT: 7,
    FaultClass.ENV_DEP_TRANSIENT: 7,
}


def test_bench_table1_apache(benchmark, apache_archive_reports):
    def regenerate():
        mined = mine_apache(apache_archive_reports)
        return classify_and_tabulate(Application.APACHE, mined.items), mined.trace

    table, trace = benchmark(regenerate)
    assert table.counts == EXPECTED
    assert trace.initial == 5220
    assert trace.final == 50
    benchmark.extra_info["paper_counts"] = "36/7/7 of 50"
    benchmark.extra_info["measured_counts"] = "/".join(
        str(table.counts[c]) for c in FaultClass
    ) + f" of {table.total}"
