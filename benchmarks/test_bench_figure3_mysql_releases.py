"""F3 -- Figure 3: MySQL fault distribution over software releases.

Reproduces the figure's published properties: environment-independent
proportion roughly constant, totals growing with newer releases, and the
very last release substantially lower "because the release is very new
and hence very few users are using the software".
"""

from repro.analysis.distributions import release_distribution
from repro.analysis.stats import proportion_invariance_chi2
from repro.corpus.mysql import RELEASES
from repro.reports.figures import render_figure

RELEASE_ORDER = tuple(version for version, _ in RELEASES)


def test_bench_figure3_mysql_releases(benchmark, mysql):
    def regenerate():
        series = release_distribution(mysql, release_order=RELEASE_ORDER)
        invariance = proportion_invariance_chi2(series)
        return series, invariance

    series, invariance = benchmark(regenerate)

    totals = series.totals()
    assert sum(totals) == 44
    assert invariance.invariant_at_5pct
    # Growth up to the newest mature release...
    assert all(later >= earlier for earlier, later in zip(totals[:-1], totals[1:-1]))
    # ...and a substantially lower count for the brand-new last release.
    assert totals[-1] < totals[-2] / 2

    benchmark.extra_info["paper_shape"] = (
        "EI proportion ~constant; totals grow; last (very new) release "
        "substantially lower"
    )
    benchmark.extra_info["measured_totals"] = list(totals)
    benchmark.extra_info["chi2_p_value"] = round(invariance.p_value, 4)
    benchmark.extra_info["figure"] = render_figure(series)
