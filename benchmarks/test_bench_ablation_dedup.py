"""Ablation -- duplicate-reduction strategy ("narrowed to N unique bugs").

Exact synopsis keying alone misses re-reports that reword the synopsis;
the fuzzy Jaccard merge recovers them.  Measured on the full-scale
Apache archive: exact-only overcounts unique bugs, exact+fuzzy lands on
the paper's 50.
"""

import pytest

from repro.mining import mine_apache
from repro.mining.dedup import Deduplicator

STRATEGIES = [
    ("exact-only", Deduplicator(use_fuzzy=False)),
    ("exact+fuzzy-0.6", Deduplicator(use_fuzzy=True, fuzzy_threshold=0.6)),
    ("exact+fuzzy-0.9", Deduplicator(use_fuzzy=True, fuzzy_threshold=0.9)),
]


@pytest.mark.parametrize("label,dedup", STRATEGIES, ids=[label for label, _ in STRATEGIES])
def test_bench_ablation_dedup(benchmark, apache_archive_reports, label, dedup):
    result = benchmark(mine_apache, apache_archive_reports, deduplicator=dedup)

    if label == "exact+fuzzy-0.6":
        assert len(result.items) == 50
    else:
        # Too-strict matching leaves reworded re-reports uncollapsed.
        assert len(result.items) > 50

    benchmark.extra_info["strategy"] = label
    benchmark.extra_info["unique_bugs"] = len(result.items)
    benchmark.extra_info["paper"] = "50 unique bugs"
