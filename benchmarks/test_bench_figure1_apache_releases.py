"""F1 -- Figure 1: Apache fault distribution over software releases.

Reproduces the figure's two published properties: the relative proportion
of environment-independent bugs stays about the same across releases
(chi-square invariance), and the total number of reported bugs grows
with newer releases.
"""

from repro.analysis.distributions import release_distribution
from repro.analysis.stats import proportion_invariance_chi2
from repro.corpus.apache import RELEASES
from repro.reports.figures import render_figure

RELEASE_ORDER = tuple(version for version, _ in RELEASES)


def test_bench_figure1_apache_releases(benchmark, apache):
    def regenerate():
        series = release_distribution(apache, release_order=RELEASE_ORDER)
        invariance = proportion_invariance_chi2(series)
        return series, invariance

    series, invariance = benchmark(regenerate)

    totals = series.totals()
    assert sum(totals) == 50
    # Property 1: environment-independent proportion roughly constant.
    assert invariance.invariant_at_5pct
    # Property 2: totals grow with newer releases.
    assert totals[0] < totals[-1]
    assert all(later >= earlier for earlier, later in zip(totals, totals[1:]))

    benchmark.extra_info["paper_shape"] = (
        "EI proportion ~constant across releases; totals grow with newer releases"
    )
    benchmark.extra_info["measured_totals"] = list(totals)
    benchmark.extra_info["measured_ei_fractions"] = [
        round(fraction, 2) for fraction in series.fractions()
    ]
    benchmark.extra_info["chi2_p_value"] = round(invariance.p_value, 4)
    benchmark.extra_info["figure"] = render_figure(series)
