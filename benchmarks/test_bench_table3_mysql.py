"""T3 -- Table 3: MySQL fault classification (38 / 4 / 2).

Regenerates Table 3 end to end: the ~44,000-message mailing-list archive
is keyword-mined exactly as in Section 4 ("crash", "segmentation",
"race", "died"), threaded, narrowed to 44 unique bugs, and classified.
"""

from repro.analysis.tables import classify_and_tabulate
from repro.bugdb.enums import Application, FaultClass
from repro.mining import mine_mysql

EXPECTED = {
    FaultClass.ENV_INDEPENDENT: 38,
    FaultClass.ENV_DEP_NONTRANSIENT: 4,
    FaultClass.ENV_DEP_TRANSIENT: 2,
}


def test_bench_table3_mysql(benchmark, mysql_archive_messages):
    def regenerate():
        mined = mine_mysql(mysql_archive_messages)
        return classify_and_tabulate(Application.MYSQL, mined.items), mined.trace

    table, trace = benchmark(regenerate)
    assert table.counts == EXPECTED
    assert trace.initial >= 44000
    assert trace.final == 44
    benchmark.extra_info["paper_counts"] = "38/4/2 of 44"
    benchmark.extra_info["measured_counts"] = "/".join(
        str(table.counts[c]) for c in FaultClass
    ) + f" of {table.total}"
