"""Archive scale-out bench: streaming ingest with bounded memory.

The point of the streaming pipeline (`repro.corpus.stream` ->
`repro.pipeline.streamsplit` -> `repro.bugdb.segments`) is that memory
is a function of the shard budget, never the corpus.  This bench
asserts exactly that, in forked children whose peak RSS is measured by
the :class:`~repro.obs.resources.ResourceSampler` series sampled
*during* the work (with an ``ru_maxrss`` delta fallback where ``/proc``
is unavailable) -- so the number is the observed high-water mark of the
run itself, not memory inherited from the pytest parent:

* the same streaming parse+index over a 4x larger archive must not use
  meaningfully more memory;
* a million-message archive (~275 MB mbox; scale via
  ``REPRO_BENCH_SCALE``) parses and indexes under a hard RSS ceiling;
* the segmented index answers the full 44k-message archive's keyword
  queries identically to the monolithic index, with warm queries
  sub-second after compaction.

Throughput (MB/s, reports/s) lands in the perf history when
``REPRO_PERFDB`` is set, through the same
:func:`~repro.obs.perfdb.throughput_record` path CI's scale-smoke uses.
"""

import json
import os
import resource

import pytest

from repro.bugdb.enums import Application
from repro.bugdb.segments import SegmentedTextIndex, segmented_equal_to_monolithic
from repro.bugdb.textindex import TextIndex
from repro.corpus import write_archive
from repro.corpus.render import mysql_raw_archive
from repro.mining.keywords import MYSQL_STUDY_KEYWORDS
from repro.obs.perfdb import PerfDB, throughput_record
from repro.obs.resources import ResourceSampler, proc_available
from repro.pipeline import format_for, parse_archive_streamed

SHARD_BUDGET = 4 << 20

#: Hard per-child peak-RSS ceiling for the million-message parse.  The
#: archive alone is ~275 MB; a non-streaming parse materializes the text
#: plus every record and blows far past this.
MILLION_RSS_CEILING_MB = 600

#: Growth allowance between the small and large corpus runs: 4x the
#: data may cost at most 1.5x the peak plus a fixed slack.
GROWTH_FACTOR = 1.5
GROWTH_SLACK_MB = 96


#: Sampling cadence inside the forked child.  Fast enough to catch a
#: transient spike during a shard flush; slow enough to stay invisible
#: in the throughput numbers.
SAMPLE_INTERVAL = 0.02


def _child_peak_rss_mb(work) -> float:
    """Run ``work`` in a forked child; return its sampled peak RSS in MB.

    A :class:`ResourceSampler` runs for the duration of the work and the
    peak is the high-water mark of its RSS *series* -- the whole run is
    observed, not one end-of-run readout, and the number reflects the
    work rather than memory inherited from the (large) pytest parent
    (samples are instantaneous RSS, so the parent's historical peak
    never leaks in the way an un-reset ``ru_maxrss`` would).  Falls back
    to the ``ru_maxrss`` delta where ``/proc`` is unavailable.
    """
    read_fd, write_fd = os.pipe()
    pid = os.fork()
    if pid == 0:  # child
        os.close(read_fd)
        status = 1
        try:
            before = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
            sampler = None
            if proc_available():
                sampler = ResourceSampler(
                    SAMPLE_INTERVAL, attribute=False
                ).start()
            work()
            if sampler is not None:
                sampler.stop()  # takes one final sample first
            after = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
            if sampler is not None and sampler.peak_rss_bytes() > 0:
                peak_kb = sampler.peak_rss_bytes() / 1024
                samples = len(sampler.rss_log())
            else:
                peak_kb = float(after - before)
                samples = 0
            os.write(
                write_fd,
                json.dumps({"peak_kb": peak_kb, "samples": samples}).encode(),
            )
            status = 0
        finally:
            os.close(write_fd)
            os._exit(status)
    os.close(write_fd)
    try:
        payload = b""
        while True:
            block = os.read(read_fd, 65536)
            if not block:
                break
            payload += block
    finally:
        os.close(read_fd)
    _, exit_status = os.waitpid(pid, 0)
    assert os.waitstatus_to_exitcode(exit_status) == 0, "forked child failed"
    return json.loads(payload.decode())["peak_kb"] / 1024


def _stream_work(path, index_dir):
    fmt = format_for(Application.MYSQL)

    def work():
        parsed = parse_archive_streamed(
            fmt, path, max_shard_bytes=SHARD_BUDGET, index_dir=index_dir
        )
        assert parsed.record_count > 0

    return work


@pytest.fixture(scope="module")
def archive_dir(tmp_path_factory):
    return tmp_path_factory.mktemp("scale-archives")


class TestBoundedMemory:
    def test_peak_rss_independent_of_corpus_size(self, mysql, archive_dir):
        """4x the archive must not cost 4x the memory."""
        small_path = archive_dir / "small.mbox"
        large_path = archive_dir / "large.mbox"
        small = write_archive(small_path, Application.MYSQL, mysql, scale=60_000)
        large = write_archive(large_path, Application.MYSQL, mysql, scale=240_000)
        assert large.bytes > 3 * small.bytes

        small_peak = _child_peak_rss_mb(
            _stream_work(small_path, archive_dir / "idx-small")
        )
        large_peak = _child_peak_rss_mb(
            _stream_work(large_path, archive_dir / "idx-large")
        )
        assert large_peak <= small_peak * GROWTH_FACTOR + GROWTH_SLACK_MB, (
            f"streaming parse peak RSS grew with corpus size: "
            f"{small.megabytes:.0f}MB archive -> {small_peak:.0f}MB peak, "
            f"{large.megabytes:.0f}MB archive -> {large_peak:.0f}MB peak"
        )

    def test_million_report_archive_under_hard_ceiling(self, mysql, archive_dir):
        """The headline number: 1M+ messages, bounded RSS, throughput recorded."""
        scale = int(os.environ.get("REPRO_BENCH_SCALE", "1000000"))
        path = archive_dir / "million.mbox"
        stats = write_archive(path, Application.MYSQL, mysql, scale=scale)
        assert stats.records >= scale

        fmt = format_for(Application.MYSQL)
        outcome = {}

        def work():
            parsed = parse_archive_streamed(
                fmt,
                path,
                max_shard_bytes=SHARD_BUDGET,
                index_dir=archive_dir / "idx-million",
            )
            outcome["records"] = parsed.record_count
            outcome["bytes"] = parsed.bytes_total
            outcome["wall"] = parsed.wall_seconds
            outcome["mb_per_s"] = parsed.mb_per_second
            outcome["records_per_s"] = parsed.records_per_second

        # the child writes outcome into a file since it runs forked
        outcome_path = archive_dir / "million-outcome.json"

        def forked_work():
            work()
            outcome_path.write_text(json.dumps(outcome))

        peak_mb = _child_peak_rss_mb(forked_work)
        outcome = json.loads(outcome_path.read_text())
        assert outcome["records"] >= scale
        assert peak_mb < MILLION_RSS_CEILING_MB, (
            f"peak RSS {peak_mb:.0f}MB over ceiling for "
            f"{stats.megabytes:.0f}MB archive"
        )
        # archive is far larger than the shard budget: memory cannot have
        # tracked the corpus
        assert stats.bytes > 5 * SHARD_BUDGET

        record = throughput_record(
            "stream:parse:mysql",
            wall_seconds=outcome["wall"],
            bytes_count=outcome["bytes"],
            records_count=outcome["records"],
            label="bench-archive-scale",
            peak_rss_bytes=int(peak_mb * 1024 * 1024),
        )
        assert record.counters["stream:parse:mysql.mb_per_s"] > 0
        assert record.counters["stream:parse:mysql.reports_per_s"] > 0
        assert record.nodes["stream:parse:mysql"].peak_rss_bytes is not None
        db_path = os.environ.get("REPRO_PERFDB")
        if db_path:
            PerfDB(db_path).append(record)

        # the committed index covers every record and survives reopen
        index = SegmentedTextIndex(archive_dir / "idx-million")
        assert index.document_count == outcome["records"]


class TestFullArchiveEquivalence:
    @pytest.fixture(scope="class")
    def full_archive(self, mysql, tmp_path_factory):
        root = tmp_path_factory.mktemp("full-mysql")
        text = mysql_raw_archive(mysql)
        path = root / "full.mbox"
        path.write_text(text, encoding="utf-8")
        return root, path, text

    @pytest.fixture(scope="class")
    def indexes(self, full_archive):
        root, path, text = full_archive
        fmt = format_for(Application.MYSQL)
        parsed = parse_archive_streamed(
            fmt, path, max_shard_bytes=1 << 20, index_dir=root / "idx"
        )
        monolithic: TextIndex = TextIndex()
        for position, chunk in enumerate(fmt.split(text)):
            monolithic.add(position, fmt.index_text(fmt.parse_record(chunk)))
        assert parsed.index is not None
        return parsed.index, monolithic

    def test_segmented_identical_to_monolithic_on_full_archive(self, indexes):
        segmented, monolithic = indexes
        assert segmented.document_count == monolithic.document_count
        mismatches = []
        assert segmented_equal_to_monolithic(
            segmented,
            monolithic,
            probes=MYSQL_STUDY_KEYWORDS,
            on_mismatch=mismatches.append,
        ), mismatches
        assert segmented.search_any(MYSQL_STUDY_KEYWORDS) == (
            monolithic.search_any(MYSQL_STUDY_KEYWORDS)
        )

    def test_warm_query_subsecond_after_compaction(self, benchmark, indexes):
        segmented, monolithic = indexes
        stats = segmented.compact(full=True)
        assert segmented.segment_count == 1
        assert segmented.search_any(MYSQL_STUDY_KEYWORDS) == (
            monolithic.search_any(MYSQL_STUDY_KEYWORDS)
        )  # warm the page cache / readers

        result = benchmark(segmented.search_any, MYSQL_STUDY_KEYWORDS)
        assert result == monolithic.search_any(MYSQL_STUDY_KEYWORDS)
        wall = getattr(getattr(benchmark, "stats", None), "stats", None)
        median = getattr(wall or benchmark.stats, "median", None)
        if median is not None:
            assert median < 1.0, f"warm keyword query took {median:.3f}s"
        benchmark.extra_info["documents"] = segmented.document_count
        benchmark.extra_info["compaction_bytes_read"] = stats.bytes_read


def test_bench_streaming_parse_throughput(benchmark, mysql, archive_dir):
    """pytest-benchmark timing for the streaming parse (no index)."""
    path = archive_dir / "bench.mbox"
    write_archive(path, Application.MYSQL, mysql, scale=60_000)
    fmt = format_for(Application.MYSQL)

    def parse():
        return parse_archive_streamed(fmt, path, max_shard_bytes=SHARD_BUDGET)

    parsed = benchmark.pedantic(parse, rounds=3, iterations=1)
    assert parsed.record_count >= 60_000
    benchmark.extra_info["mb"] = round(parsed.bytes_total / (1024 * 1024), 1)
    benchmark.extra_info["mb_per_s"] = round(parsed.mb_per_second, 1)
    benchmark.extra_info["records_per_s"] = round(parsed.records_per_second)
