"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one table or figure from the paper (see
DESIGN.md's per-experiment index) and asserts the reproduced values, so
``pytest benchmarks/ --benchmark-only`` doubles as the reproduction
check: timings from pytest-benchmark, correctness from the assertions,
and the reproduced rows in each benchmark's ``extra_info``.

Set ``REPRO_PERFDB=/path/to/perf.jsonl`` to append one perf-history run
per benchmark session (one node per benchmark, named after the test),
seeding the same longitudinal database that ``repro perf record`` and
``repro study run --perfdb`` feed -- so benchmark trajectories and study
runs share one ``repro perf report`` view.
"""

import os

import pytest

from repro.bugdb import debbugs, gnats, mbox
from repro.corpus import apache_corpus, full_study, gnome_corpus, mysql_corpus
from repro.corpus.render import (
    apache_raw_archive,
    gnome_raw_archive,
    mysql_raw_archive,
)
from repro.mining.gnome import GNOME_STUDY_COMPONENTS


def _bench_wall_seconds(bench) -> float | None:
    """Best-effort median wall seconds from a pytest-benchmark entry.

    pytest-benchmark has moved the stats object around between releases
    (``bench.stats.median`` vs ``bench.stats.stats.median``), so probe
    both shapes rather than pin one.
    """
    stats = getattr(bench, "stats", None)
    for candidate in (stats, getattr(stats, "stats", None)):
        median = getattr(candidate, "median", None)
        if isinstance(median, (int, float)):
            return float(median)
    return None


def pytest_sessionfinish(session, exitstatus):
    """Append this benchmark session to a perf history when asked.

    Opt-in via ``REPRO_PERFDB``; failures here never fail the session
    (the history is telemetry, not a correctness artifact).
    """
    db_path = os.environ.get("REPRO_PERFDB")
    if not db_path:
        return
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None:
        return
    try:
        from repro.obs.perfdb import STATUS_BENCH, NodePerf, PerfDB, PerfRecord

        nodes = {}
        for bench in getattr(bench_session, "benchmarks", []):
            wall = _bench_wall_seconds(bench)
            name = getattr(bench, "name", None)
            if wall is None or not name:
                continue
            nodes[name] = NodePerf(wall_seconds=wall, status=STATUS_BENCH)
        if not nodes:
            return
        PerfDB(db_path).append(
            PerfRecord.new(nodes, source="benchmark", label="pytest-benchmark")
        )
    except Exception:  # noqa: BLE001 -- never fail the run over telemetry
        return


@pytest.fixture(scope="session")
def study():
    return full_study()


@pytest.fixture(scope="session")
def apache():
    return apache_corpus()


@pytest.fixture(scope="session")
def gnome():
    return gnome_corpus()


@pytest.fixture(scope="session")
def mysql():
    return mysql_corpus()


@pytest.fixture(scope="session")
def apache_archive_reports(apache):
    """The full-scale (5220-report) Apache GNATS archive, parsed."""
    return gnats.parse_archive(apache_raw_archive(apache))


@pytest.fixture(scope="session")
def gnome_archive_reports(gnome):
    """The full-scale (~500-report) GNOME debbugs archive, parsed."""
    return debbugs.parse_archive(
        gnome_raw_archive(gnome, study_components=GNOME_STUDY_COMPONENTS)
    )


@pytest.fixture(scope="session")
def mysql_archive_messages(mysql):
    """The full-scale (~44,000-message) MySQL mbox archive, parsed."""
    return mbox.parse_archive(mysql_raw_archive(mysql))
