"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one table or figure from the paper (see
DESIGN.md's per-experiment index) and asserts the reproduced values, so
``pytest benchmarks/ --benchmark-only`` doubles as the reproduction
check: timings from pytest-benchmark, correctness from the assertions,
and the reproduced rows in each benchmark's ``extra_info``.
"""

import pytest

from repro.bugdb import debbugs, gnats, mbox
from repro.corpus import apache_corpus, full_study, gnome_corpus, mysql_corpus
from repro.corpus.render import (
    apache_raw_archive,
    gnome_raw_archive,
    mysql_raw_archive,
)
from repro.mining.gnome import GNOME_STUDY_COMPONENTS


@pytest.fixture(scope="session")
def study():
    return full_study()


@pytest.fixture(scope="session")
def apache():
    return apache_corpus()


@pytest.fixture(scope="session")
def gnome():
    return gnome_corpus()


@pytest.fixture(scope="session")
def mysql():
    return mysql_corpus()


@pytest.fixture(scope="session")
def apache_archive_reports(apache):
    """The full-scale (5220-report) Apache GNATS archive, parsed."""
    return gnats.parse_archive(apache_raw_archive(apache))


@pytest.fixture(scope="session")
def gnome_archive_reports(gnome):
    """The full-scale (~500-report) GNOME debbugs archive, parsed."""
    return debbugs.parse_archive(
        gnome_raw_archive(gnome, study_components=GNOME_STUDY_COMPONENTS)
    )


@pytest.fixture(scope="session")
def mysql_archive_messages(mysql):
    """The full-scale (~44,000-message) MySQL mbox archive, parsed."""
    return mbox.parse_archive(mysql_raw_archive(mysql))
