"""Live monitoring overhead: a monitored study run must cost < 5%.

``repro study run --live`` hooks a :class:`repro.obs.RunMonitor` into
the scheduler and the campaign dispatcher; every dispatch and completion
updates in-memory counters, and snapshot writes are throttled to the
monitor's interval.  That whole path has the same budget as enabled
tracing: less than 5% wall time over an unmonitored run on a
stall-bound study -- and, like tracing, it must never change a payload
(the monitor sees names and wall times, never unit content).

Same stall-bound setup as the tracing benchmark: every node behind a
fixed simulated stall, archives at reduced scale.
"""

import dataclasses
import functools
import json
import time

from repro import obs
from repro.studygraph import StudyContext, default_registry, run_study
from repro.studygraph.registry import Registry

#: Simulated per-node stall (process spawn / archive I/O) in seconds.
STALL_SECONDS = 0.08

#: Reduced archive scales: the stall, not the parse, must dominate.
SCALE_OVERRIDES = {
    "parsed.apache": {"scale": 300},
    "parsed.mysql": {"scale": 800},
}

#: Enabled-monitoring wall-time budget over the unmonitored run.
OVERHEAD_BUDGET = 0.05


def _stalled(producer, ctx, inputs, params):
    """One real producer behind a fixed stall (module-level for fork)."""
    time.sleep(STALL_SECONDS)
    return producer(ctx, inputs, params)


def _stalled_registry():
    return Registry(
        dataclasses.replace(
            node, producer=functools.partial(_stalled, node.producer)
        )
        for node in default_registry().with_overrides(SCALE_OVERRIDES).nodes()
    )


def _run(registry, monitor=None):
    return run_study(StudyContext.default(), registry=registry, monitor=monitor)


def test_bench_monitoring_overhead(benchmark, tmp_path):
    registry = _stalled_registry()
    snapshot_path = tmp_path / "live.json"

    # Interleave plain/monitored pairs so drift in machine load hits both.
    plain_walls, monitored_walls = [], []
    plain = monitored = None
    for _ in range(2):
        started = time.perf_counter()
        plain = _run(registry)
        plain_walls.append(time.perf_counter() - started)

        started = time.perf_counter()
        monitored = _run(registry, monitor=obs.RunMonitor(snapshot_path))
        monitored_walls.append(time.perf_counter() - started)

    # Monitoring must never change a payload.
    assert monitored.outputs == plain.outputs
    for name, run in plain.runs.items():
        assert monitored.runs[name].digest == run.digest, (
            f"digest drift at {name}"
        )

    plain_wall = min(plain_walls)
    monitored_wall = min(monitored_walls)
    overhead = monitored_wall / plain_wall - 1.0
    assert overhead < OVERHEAD_BUDGET, (
        f"live monitoring must cost < {OVERHEAD_BUDGET:.0%} on a stall-bound "
        f"study run, measured {overhead:.1%} "
        f"({plain_wall:.3f}s -> {monitored_wall:.3f}s)"
    )

    # The snapshot the overhead paid for must describe the finished run.
    snapshot = obs.read_snapshot(snapshot_path)
    assert snapshot is not None, "monitor never wrote its snapshot"
    assert snapshot["state"] == "finished"
    assert snapshot["done"] == snapshot["total"] == len(monitored.runs)
    assert not snapshot["in_flight"]
    # And it must be real JSON on disk (the watch CLI reads this file).
    with open(snapshot_path, encoding="utf-8") as handle:
        assert json.load(handle)["state"] == "finished"

    def _monitored_run():
        return _run(registry, monitor=obs.RunMonitor(tmp_path / "round.json"))

    benchmark.pedantic(_monitored_run, rounds=2, iterations=1)
    benchmark.extra_info["wall_seconds"] = {
        "plain_serial": round(plain_wall, 4),
        "monitored_serial": round(monitored_wall, 4),
    }
    benchmark.extra_info["overhead"] = (
        f"{overhead:+.2%} with dispatch/completion hooks and throttled "
        "atomic snapshot writes"
    )
