"""E1 -- the paper's future-work experiment: generic recovery replay.

Every curated study fault is injected into the matching mini application
and replayed under each recovery technique.  The paper's thesis must
hold: purely generic techniques survive only the environment-dependent-
transient faults (5-14% of all faults), never the environment-
independent majority.
"""

import pytest

from repro.bugdb.enums import FaultClass
from repro.recovery import (
    CheckpointRollback,
    ProcessPairs,
    ProgressiveRetry,
    RestartFresh,
    SoftwareRejuvenation,
    replay_study,
)

EI = FaultClass.ENV_INDEPENDENT
EDN = FaultClass.ENV_DEP_NONTRANSIENT
EDT = FaultClass.ENV_DEP_TRANSIENT


@pytest.mark.parametrize(
    "factory",
    [ProcessPairs, CheckpointRollback, ProgressiveRetry, RestartFresh, SoftwareRejuvenation],
    ids=lambda factory: factory.name,
)
def test_bench_recovery_replay(benchmark, study, factory):
    report = benchmark(replay_study, study, factory)

    assert report.total() == 139
    assert all(outcome.triggered for outcome in report.outcomes)
    # No technique ever survives a deterministic (environment-independent)
    # fault -- the paper's core claim.
    assert report.survival_rate(EI) == 0.0

    if factory().application_generic:
        # Purely generic recovery: nontransient conditions persist, and
        # overall survival is bounded by the transient share (12/139 = 9%).
        assert report.survival_rate(EDN) == 0.0
        assert report.survival_rate() <= 12 / 139 + 1e-9
        assert report.survival_rate(EDT) >= 0.7
    else:
        # State-losing techniques also clear application-held leaks,
        # which is why Tandem's impure process pairs looked better.
        assert report.survival_rate(EDN) > 0.0

    benchmark.extra_info["paper_prediction"] = (
        "generic recovery survives only EDT faults (<= 9% of 139 overall)"
    )
    benchmark.extra_info["measured"] = (
        f"EI {report.survival_rate(EI):.0%}, EDN {report.survival_rate(EDN):.0%}, "
        f"EDT {report.survival_rate(EDT):.0%}, overall {report.survival_rate():.1%}"
    )
