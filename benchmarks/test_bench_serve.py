"""The serve daemon: warm served requests vs cold per-invocation runs.

The service exists to amortise the batch CLI's per-invocation tax --
study construction, graph wiring, node recompute -- across many
requests.  This benchmark proves the trade on a live unix-socket
daemon:

* **equality first**: every served payload (text and digest) must be
  bit-identical to a cold batch run of the same node, for each request
  kind (``study``, ``mine``, ``replay``) -- the daemon is only allowed
  to be faster, never different;
* a **warm served request** must beat the cold per-invocation
  equivalent (a fresh cacheless context recomputing the node, i.e. what
  every ``repro table apache`` pays after process start) by > 5x;
* **closed-loop load**: 8 concurrent clients driving real study
  requests through the socket must sustain > 1000 requests/second,
  with zero failures and zero admission rejections at this
  concurrency.

Set ``REPRO_PERFDB`` (see conftest) to append the timings to the same
perf history that gates regressions in CI.
"""

import shutil
import tempfile
import threading
import time
from pathlib import Path

from repro.envmodel.loadgen import run_closed_loop
from repro.serve import (
    AdmissionController,
    ServeClient,
    StudyServer,
    StudyService,
)

#: Per-invocation cold runs to average (each rebuilds its context).
COLD_INVOCATIONS = 3

#: Warm served requests to average against the cold baseline.
WARM_REQUESTS = 50

#: Closed-loop load: total requests and concurrent clients.
LOAD_REQUESTS = 3000
LOAD_CONCURRENCY = 8

#: The served workload under test and its batch equivalents.
SERVED = [
    ("study", {"node": "T1"}, "T1", None),
    ("mine", {"application": "apache"}, "mine.apache", None),
    (
        "replay",
        {"techniques": "restart-fresh,checkpoint-rollback"},
        "E1",
        {"E1": {"techniques": "restart-fresh,checkpoint-rollback"}},
    ),
]


def _batch_node(name, overrides=None):
    """One cold per-invocation run: fresh cacheless context, same graph."""
    from repro.studygraph import StudyContext, default_registry, run_study

    registry = default_registry()
    if overrides:
        registry = registry.with_overrides(overrides)
    context = StudyContext.default(cache_dir=None)
    result = run_study(context, nodes=[name], outputs=[name], registry=registry)
    return result.runs[name].digest, result.outputs[name]


def test_bench_serve(benchmark):
    sock_dir = Path(tempfile.mkdtemp(dir="/tmp", prefix="repro-bench-serve-"))
    service = StudyService(
        admission=AdmissionController(max_pending=64), workers=1
    )
    server = StudyServer(service, sock_dir / "serve.sock")
    server.start()
    try:
        client = ServeClient(server.socket_path, client="bench")

        # Equality first: served output must be bit-identical to the
        # batch path for every request kind before any timing counts.
        for kind, params, node, overrides in SERVED:
            response = client.request(kind, params)
            assert response.ok, f"{kind} failed: {response.error}"
            digest, payload = _batch_node(node, overrides)
            assert response.payload["digest"] == digest, f"digest drift at {kind}"
            assert response.payload["text"] == payload["text"], (
                f"text drift at {kind}"
            )

        # Cold baseline: what each CLI invocation pays to recompute T1
        # (fresh context, no memo), minus interpreter startup -- a
        # conservative floor for the per-invocation cost.
        started = time.perf_counter()
        for _ in range(COLD_INVOCATIONS):
            _batch_node("T1")
        cold_per_request = (time.perf_counter() - started) / COLD_INVOCATIONS

        # Warm served: the same request answered from the daemon's
        # response memo over the real socket.
        started = time.perf_counter()
        for _ in range(WARM_REQUESTS):
            assert client.request("study", {"node": "T1"}).ok
        warm_per_request = (time.perf_counter() - started) / WARM_REQUESTS

        speedup = cold_per_request / warm_per_request
        assert speedup > 5, (
            f"warm served requests must beat cold per-invocation runs by >5x, "
            f"got {speedup:.1f}x ({cold_per_request * 1000:.1f} ms -> "
            f"{warm_per_request * 1000:.3f} ms)"
        )

        # Closed-loop load: concurrent clients, one connection each,
        # cycling through the served workload.
        local = threading.local()

        def send(index):
            slot = getattr(local, "client", None)
            if slot is None:
                slot = local.client = ServeClient(
                    server.socket_path, client=f"load-{threading.get_ident()}"
                )
            kind, params, _, _ = SERVED[index % len(SERVED)]
            response = slot.request(kind, params)
            if not response.ok:
                raise RuntimeError(f"{response.status}: {response.error}")

        load = run_closed_loop(
            send, requests=LOAD_REQUESTS, concurrency=LOAD_CONCURRENCY
        )
        assert load.failures == 0, f"{load.failures} failed requests under load"
        assert load.throughput > 1000, (
            f"{LOAD_CONCURRENCY} closed-loop clients must sustain >1000 req/s "
            f"against the warm daemon, got {load.throughput:.0f} req/s"
        )
        status = client.request("status")
        assert status.ok
        assert status.payload["requests"]["rejected"] == 0

        def warm_request():
            assert client.request("study", {"node": "T1"}).ok

        benchmark.pedantic(warm_request, rounds=200, iterations=1)
        benchmark.extra_info["per_request"] = {
            "cold_ms": round(cold_per_request * 1000, 2),
            "warm_served_ms": round(warm_per_request * 1000, 4),
            "speedup": f"{speedup:.0f}x",
        }
        benchmark.extra_info["load"] = {
            "requests": load.requests_issued,
            "concurrency": LOAD_CONCURRENCY,
            "req_per_s": round(load.throughput),
            "p50_ms": round(load.p50 * 1000, 3),
            "p95_ms": round(load.p95 * 1000, 3),
            "p99_ms": round(load.p99 * 1000, 3),
        }
        benchmark.extra_info["equality"] = (
            "served study/mine/replay payloads bit-identical to cold batch "
            "runs (text and digest) before any timing was taken"
        )
        client.close()
    finally:
        server.shutdown()
        shutil.rmtree(sock_dir, ignore_errors=True)
