"""T2 -- Table 2: GNOME fault classification (39 / 3 / 3).

Regenerates Table 2 end to end from the raw debbugs archive.
"""

from repro.analysis.tables import classify_and_tabulate
from repro.bugdb.enums import Application, FaultClass
from repro.mining import mine_gnome

EXPECTED = {
    FaultClass.ENV_INDEPENDENT: 39,
    FaultClass.ENV_DEP_NONTRANSIENT: 3,
    FaultClass.ENV_DEP_TRANSIENT: 3,
}


def test_bench_table2_gnome(benchmark, gnome_archive_reports):
    def regenerate():
        mined = mine_gnome(gnome_archive_reports)
        return classify_and_tabulate(Application.GNOME, mined.items), mined.trace

    table, trace = benchmark(regenerate)
    assert table.counts == EXPECTED
    assert trace.initial == 500
    assert trace.final == 45
    benchmark.extra_info["paper_counts"] = "39/3/3 of 45"
    benchmark.extra_info["measured_counts"] = "/".join(
        str(table.counts[c]) for c in FaultClass
    ) + f" of {table.total}"
