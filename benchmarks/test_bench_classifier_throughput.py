"""Substrate bench -- classifier throughput at scale.

The paper's corpus is 139 faults; a library should classify archives
orders of magnitude larger.  Throughput is measured over a 5000-fault
synthetic corpus (text pipeline, no curated evidence), with correctness
asserted against the synthetic ground truth.
"""

import pytest

from repro.bugdb.enums import Application
from repro.classify.text import TextClassifier
from repro.corpus.synthetic import synthetic_corpus


@pytest.fixture(scope="module")
def big_corpus():
    return synthetic_corpus(
        Application.APACHE,
        env_independent=4000,
        nontransient=500,
        transient=500,
        seed=17,
    )


def test_bench_classifier_throughput(benchmark, big_corpus):
    reports = big_corpus.to_reports(attach_evidence=False)
    classifier = TextClassifier()

    results = benchmark(classifier.classify_all, reports)

    assert len(results) == 5000
    truth = big_corpus.ground_truth()
    correct = sum(
        1
        for report, result in zip(reports, results)
        if result.fault_class is truth[report.report_id]
    )
    assert correct == 5000
    benchmark.extra_info["reports_classified"] = 5000
    benchmark.extra_info["accuracy"] = correct / 5000
