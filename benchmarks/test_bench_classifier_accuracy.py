"""C1 -- methodology fidelity: the text classifier vs. the paper's labels.

The curated corpus carries the paper's per-fault classifications; the
mechanical pipeline (evidence extraction from free text + the Section 3
decision rules) must recover them.  Any misclassification here would
corrupt Tables 1-3.
"""

from repro.bugdb.enums import FaultClass
from repro.classify.evaluation import evaluate_classifier
from repro.classify.text import TextClassifier


def test_bench_classifier_accuracy(benchmark, study):
    classifier = TextClassifier()
    reports = []
    truth = {}
    for corpus in study.corpora.values():
        reports.extend(corpus.to_reports(attach_evidence=False))
        truth.update(corpus.ground_truth())

    matrix = benchmark(evaluate_classifier, classifier, reports, truth)

    assert matrix.total == 139
    assert matrix.accuracy == 1.0
    for fault_class in FaultClass:
        assert matrix.precision(fault_class) == 1.0
        assert matrix.recall(fault_class) == 1.0

    benchmark.extra_info["paper"] = "manual classification of 139 faults"
    benchmark.extra_info["measured"] = (
        f"accuracy {matrix.accuracy:.0%} over {matrix.total} faults "
        "(text-only pipeline, no curated evidence)"
    )
