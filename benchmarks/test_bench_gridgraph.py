"""Parameter-grid scaling and perfdb-informed longest-first dispatch.

Two claims behind the grid refactor, measured:

1. Registry structure scales: a 1000+ point grid family registers and
   topo-sorts in linear-ish time (the dependents index is built at
   registration; Kahn's algorithm replaces the old per-wave rescans),
   and the memoized re-ask is effectively free.
2. Longest-first dispatch beats FIFO on a stall-skewed wave: with one
   slow point registered last, FIFO strands the slow unit in the final
   dispatch slot while longest-first starts it immediately -- at equal
   payload digests, because dispatch order is scheduling-only.
"""

import time

from repro.obs.perfdb import NodePerf, PerfDB, PerfRecord
from repro.studygraph import GridSpec, NodeSpec, StudyContext, run_study
from repro.studygraph.registry import Registry

#: Stall-skewed wave: the slow point dwarfs its siblings.
FAST_STALL = 0.1
SLOW_STALL = 0.6
FAST_POINTS = 8


def _counted(ctx, inputs, params):
    return {"point": params["i"]}


def _stalled_point(ctx, inputs, params):
    time.sleep(SLOW_STALL if params["i"] == 0 else FAST_STALL)
    return {"point": params["i"]}


def _grid_registry(size, producer=_counted):
    # The slow point (i=0) is declared LAST so FIFO dispatches it last.
    axis = tuple(range(1, size)) + (0,)
    registry = Registry()
    grid = GridSpec.build(
        "sweep.bench", producer, axes={"i": axis}, kind="artifact"
    )
    registry.register_grid(
        grid,
        aggregate=NodeSpec.build(
            "sweep.bench", _aggregate, deps=tuple(grid.point_names())
        ),
    )
    return registry, grid


def _aggregate(ctx, inputs, params):
    return {"points": sorted(payload["point"] for payload in inputs.values())}


def _topo_walls(size):
    started = time.perf_counter()
    registry, _ = _grid_registry(size)
    build_wall = time.perf_counter() - started
    started = time.perf_counter()
    order = registry.topo_order()
    cold_wall = time.perf_counter() - started
    started = time.perf_counter()
    assert registry.topo_order() == order
    warm_wall = time.perf_counter() - started
    assert len(order) == size + 1
    assert order[-1] == "sweep.bench"
    return build_wall, cold_wall, warm_wall


def test_bench_grid_registry_scaling(benchmark):
    build_1k, cold_1k, warm_1k = _topo_walls(1500)
    build_6k, cold_6k, warm_6k = _topo_walls(6000)

    # Absolute bounds: thousands of points must stay interactive.
    assert build_6k < 2.0, f"6000-point registration took {build_6k:.3f}s"
    assert cold_6k < 1.0, f"6000-point topo sort took {cold_6k:.3f}s"
    assert warm_6k < 0.05, f"memoized topo re-ask took {warm_6k:.4f}s"
    # Scaling bound: 4x the nodes must not cost quadratically (16x);
    # the generous 12x margin absorbs timer noise at millisecond scale.
    if cold_1k > 0.005:
        assert cold_6k / cold_1k < 12, (
            f"topo scaling looks quadratic: {cold_1k:.4f}s -> {cold_6k:.4f}s"
        )

    registry, _ = _grid_registry(1500)
    benchmark.pedantic(
        lambda: Registry(registry.nodes()).topo_order(), rounds=3, iterations=1
    )
    benchmark.extra_info["wall_seconds"] = {
        "build_1500": round(build_1k, 4),
        "topo_cold_1500": round(cold_1k, 4),
        "build_6000": round(build_6k, 4),
        "topo_cold_6000": round(cold_6k, 4),
        "topo_warm_6000": round(warm_6k, 6),
    }


def _run_wave(priorities=None):
    registry, _ = _grid_registry(FAST_POINTS + 1, producer=_stalled_point)
    context = StudyContext.default(workers=4)
    started = time.perf_counter()
    result = run_study(context, registry=registry, priorities=priorities)
    return result, time.perf_counter() - started


def test_bench_longest_first_beats_fifo(benchmark, tmp_path):
    registry, grid = _grid_registry(FAST_POINTS + 1, producer=_stalled_point)

    # The perfdb history the scheduler orders by: one recorded run with
    # each point's true stall, read back through the real medians path.
    db = PerfDB(tmp_path / "perf.jsonl")
    db.append(
        PerfRecord.new(
            {
                name: NodePerf(
                    wall_seconds=SLOW_STALL if name.endswith("[i=0]") else FAST_STALL,
                    version="1",
                )
                for name in grid.point_names()
            },
            source="study-run",
            sha="bench",
        )
    )
    priorities = db.node_medians()
    assert priorities["sweep.bench[i=0]"] == SLOW_STALL

    fifo, fifo_wall = _run_wave()
    longest, lf_wall = _run_wave(priorities)

    # Equal results first: dispatch order must never move a payload.
    assert longest.outputs == fifo.outputs
    assert {name: run.digest for name, run in longest.runs.items()} == {
        name: run.digest for name, run in fifo.runs.items()
    }

    # FIFO strands the slow point in the last dispatch slot
    # (~fast-rounds + slow); longest-first overlaps it with the fast
    # points (~max(slow, fast-rounds)).
    assert lf_wall < fifo_wall, (
        f"longest-first ({lf_wall:.3f}s) must beat FIFO ({fifo_wall:.3f}s) "
        f"on a stall-skewed wave at 4 workers"
    )

    benchmark.pedantic(_run_wave, args=(priorities,), rounds=2, iterations=1)
    benchmark.extra_info["wall_seconds"] = {
        "fifo_4": round(fifo_wall, 4),
        "longest_first_4": round(lf_wall, 4),
    }
    benchmark.extra_info["speedup"] = (
        f"longest-first {fifo_wall / lf_wall:.2f}x over FIFO "
        f"({FAST_POINTS}x{FAST_STALL * 1000:.0f}ms + 1x{SLOW_STALL * 1000:.0f}ms "
        f"stall wave, equal digests)"
    )
