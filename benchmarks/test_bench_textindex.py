"""Substrate bench -- inverted index vs. linear scan on the full archive.

Keyword filtering over the ~44,000-message MySQL archive two ways: the
linear regex scan the miner uses, and the inverted
:class:`~repro.bugdb.textindex.TextIndex`.  Both must find exactly the
same messages; the index amortises after one build.
"""

import pytest

from repro.bugdb.textindex import TextIndex
from repro.mining.keywords import KeywordMatcher, MYSQL_STUDY_KEYWORDS


@pytest.fixture(scope="module")
def corpus_texts(mysql_archive_messages):
    return [
        (message.message_id, message.subject + "\n" + message.body)
        for message in mysql_archive_messages
    ]


@pytest.fixture(scope="module")
def built_index(corpus_texts):
    index = TextIndex()
    index.add_all(corpus_texts)
    return index


@pytest.fixture(scope="module")
def linear_hits(corpus_texts):
    matcher = KeywordMatcher(MYSQL_STUDY_KEYWORDS)
    return {doc_id for doc_id, text in corpus_texts if matcher.matches(text)}


def test_bench_linear_scan(benchmark, corpus_texts, linear_hits):
    matcher = KeywordMatcher(MYSQL_STUDY_KEYWORDS)

    def scan():
        return {doc_id for doc_id, text in corpus_texts if matcher.matches(text)}

    hits = benchmark(scan)
    assert hits == linear_hits
    benchmark.extra_info["messages"] = len(corpus_texts)
    benchmark.extra_info["hits"] = len(hits)


def test_bench_index_query(benchmark, built_index, linear_hits, corpus_texts):
    hits = benchmark(built_index.search_any, MYSQL_STUDY_KEYWORDS)
    assert hits == linear_hits
    benchmark.extra_info["messages"] = len(corpus_texts)
    benchmark.extra_info["hits"] = len(hits)


def test_bench_index_build(benchmark, corpus_texts):
    def build():
        index = TextIndex()
        index.add_all(corpus_texts)
        return index

    index = benchmark(build)
    assert index.document_count == len(corpus_texts)
