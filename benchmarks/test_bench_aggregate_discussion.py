"""A1 -- Section 5.4 aggregate numbers.

"Of the 139 bugs we looked at, we found 14 (10%) environment-dependent-
nontransient faults and 12 (9%) environment-dependent-transient faults";
abstract: 72-87% environment-independent, 5-14% transient.
"""

from repro.analysis.aggregate import aggregate_summary
from repro.analysis.stats import wilson_interval
from repro.bugdb.enums import FaultClass


def test_bench_aggregate_discussion(benchmark, study):
    summary = benchmark(aggregate_summary, study)

    assert summary.total_faults == 139
    assert summary.counts[FaultClass.ENV_DEP_NONTRANSIENT] == 14
    assert summary.counts[FaultClass.ENV_DEP_TRANSIENT] == 12
    assert round(summary.fraction(FaultClass.ENV_DEP_NONTRANSIENT) * 100) == 10
    assert round(summary.fraction(FaultClass.ENV_DEP_TRANSIENT) * 100) == 9

    ei_low, ei_high = summary.fraction_range(FaultClass.ENV_INDEPENDENT)
    assert (round(ei_low * 100), round(ei_high * 100)) == (72, 87)
    edt_low, edt_high = summary.fraction_range(FaultClass.ENV_DEP_TRANSIENT)
    assert (round(edt_low * 100), round(edt_high * 100)) == (5, 14)

    low, high = wilson_interval(summary.counts[FaultClass.ENV_DEP_TRANSIENT], 139)
    benchmark.extra_info["paper"] = "139 faults; 14 (10%) EDN; 12 (9%) EDT; EI 72-87%; EDT 5-14%"
    benchmark.extra_info["measured"] = (
        f"{summary.total_faults} faults; "
        f"{summary.counts[FaultClass.ENV_DEP_NONTRANSIENT]} EDN; "
        f"{summary.counts[FaultClass.ENV_DEP_TRANSIENT]} EDT; "
        f"EI {ei_low:.0%}-{ei_high:.0%}; EDT {edt_low:.0%}-{edt_high:.0%}"
    )
    benchmark.extra_info["edt_wilson_95"] = f"{low:.3f}-{high:.3f}"
