"""A2 -- Section 7: reconciliation with Lee & Iyer's Tandem study.

Lee & Iyer reported 82% process-pair recovery; after removing the
non-generic effects the paper identifies, "only 29% of the software
faults are transient bugs in the operating system" -- still above this
study's 5-14%, for the two reasons the paper conjectures.
"""

from repro.analysis.aggregate import aggregate_summary
from repro.analysis.leeiyer import lee_iyer_reconciliation
from repro.bugdb.enums import FaultClass


def test_bench_leeiyer_comparison(benchmark, study):
    def regenerate():
        reconciliation = lee_iyer_reconciliation()
        return reconciliation, reconciliation.steps()

    reconciliation, steps = benchmark(regenerate)

    assert reconciliation.reported_recovery_rate == 0.82
    assert abs(reconciliation.purely_generic_rate - 0.29) < 1e-12
    assert [round(rate, 2) for _, rate in steps] == [0.82, 0.53, 0.39, 0.29]

    # The residual gap: 29% exceeds this study's per-app transient range.
    summary = aggregate_summary(study)
    _, edt_high = summary.fraction_range(FaultClass.ENV_DEP_TRANSIENT)
    assert reconciliation.purely_generic_rate > edt_high
    assert len(reconciliation.residual_gap_explanations()) == 2

    benchmark.extra_info["paper"] = "82% reported -> 29% purely generic"
    benchmark.extra_info["measured_steps"] = [
        f"{description}: {rate:.2f}" for description, rate in steps
    ]
