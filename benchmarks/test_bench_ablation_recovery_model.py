"""Ablation -- moving the transient/nontransient boundary (Section 5.4).

The paper concedes the transient boundary "depends upon the recovery
system in place" but argues the environment-independent majority is
unaffected.  This ablation reclassifies all 139 faults under four
recovery models and checks exactly that: the EDN/EDT split moves, the
environment-independent count never does.
"""

import pytest

from repro.bugdb.enums import FaultClass
from repro.classify.recovery_model import (
    ELASTIC_ENVIRONMENT,
    PAPER_DEFAULT,
    RESTART_FRESH,
    RecoveryModel,
)
from repro.classify.rules import RuleClassifier

EI = FaultClass.ENV_INDEPENDENT
EDN = FaultClass.ENV_DEP_NONTRANSIENT
EDT = FaultClass.ENV_DEP_TRANSIENT

PESSIMAL = RecoveryModel(kills_application_processes=False, expects_external_repair=False)

MODELS = [
    ("paper-default", PAPER_DEFAULT),
    ("restart-fresh", RESTART_FRESH),
    ("elastic-environment", ELASTIC_ENVIRONMENT),
    ("pessimal", PESSIMAL),
]


@pytest.mark.parametrize("label,model", MODELS, ids=[label for label, _ in MODELS])
def test_bench_ablation_recovery_model(benchmark, study, label, model):
    classifier = RuleClassifier(model)
    faults = study.all_faults()

    def reclassify():
        counts = {fault_class: 0 for fault_class in FaultClass}
        for fault in faults:
            counts[classifier.classify_evidence(fault.evidence).fault_class] += 1
        return counts

    counts = benchmark(reclassify)

    # The environment-independent majority never moves.
    assert counts[EI] == 113
    assert counts[EDN] + counts[EDT] == 26
    if label == "paper-default":
        assert counts == {EI: 113, EDN: 14, EDT: 12}
    if label == "elastic-environment":
        # Storage and descriptor conditions become survivable.
        assert counts[EDT] > 12
    if label == "pessimal":
        # Process-kill and external-repair benefits withdrawn.
        assert counts[EDT] < 12

    benchmark.extra_info["model"] = label
    benchmark.extra_info["counts"] = (
        f"EI {counts[EI]}, EDN {counts[EDN]}, EDT {counts[EDT]}"
    )
