"""Study-graph scheduling: cold parallel and warm memoized full-study runs.

Real experiment campaigns are dominated by per-node stalls (process
spawn, archive I/O, injection timeouts) rather than Python compute, and
the wave scheduler must convert independent nodes into overlapped
stalls.  The miniature study's producers run in milliseconds, so -- as
in the harness-scaling benchmark -- every node here carries a fixed
simulated stall, and the scheduler must turn 4 workers into > 1.5x
wall-time speedup over the serial reference while producing payloads
bit-identical to an unstalled serial run.  A warm re-run resolves every
node from the memo cache (skipping producers, stalls and all) and must
beat the cold parallel run by > 5x.

Archives run at reduced scale so the stall regime dominates; the
full-scale graph equivalence is covered by tests/studygraph/ and the CI
study-smoke job.
"""

import dataclasses
import functools
import time

from repro.studygraph import StudyContext, default_registry, run_study
from repro.studygraph.registry import Registry

#: Simulated per-node stall (process spawn / archive I/O) in seconds.
STALL_SECONDS = 0.08

#: Reduced archive scales: the stall, not the parse, must dominate.
SCALE_OVERRIDES = {
    "parsed.apache": {"scale": 300},
    "parsed.mysql": {"scale": 800},
}


def _stalled(producer, ctx, inputs, params):
    """One real producer behind a fixed stall.

    Module-level (wrapped via ``functools.partial``) so forked pool
    workers resolve it by reference.
    """
    time.sleep(STALL_SECONDS)
    return producer(ctx, inputs, params)


def _scaled_registry():
    return default_registry().with_overrides(SCALE_OVERRIDES)


def _stalled_registry():
    return Registry(
        dataclasses.replace(
            node, producer=functools.partial(_stalled, node.producer)
        )
        for node in _scaled_registry().nodes()
    )


def _run(registry, *, workers=1, cache_dir=None):
    context = StudyContext.default(workers=workers, cache_dir=cache_dir)
    return run_study(context, registry=registry)


def test_bench_studygraph(benchmark, tmp_path):
    reference = _run(_scaled_registry())

    stalled = _stalled_registry()
    started = time.perf_counter()
    serial = _run(stalled)
    serial_wall = time.perf_counter() - started

    cache_dir = tmp_path / "memo"
    started = time.perf_counter()
    cold = _run(stalled, workers=4, cache_dir=cache_dir)
    cold_wall = time.perf_counter() - started

    started = time.perf_counter()
    warm = _run(stalled, workers=4, cache_dir=cache_dir)
    warm_wall = time.perf_counter() - started

    # Equality first: parallelism, stalls, and the memo cache must never
    # change a payload (the unstalled serial run is the reference).
    assert serial.outputs == reference.outputs
    assert cold.outputs == reference.outputs
    assert warm.outputs == reference.outputs
    for name, run in reference.runs.items():
        assert cold.runs[name].digest == run.digest, f"digest drift at {name}"
        assert warm.runs[name].digest == run.digest, f"digest drift at {name}"
    assert cold.executed == len(reference.runs)
    assert warm.executed == 0 and warm.cached == len(reference.runs)

    cold_speedup = serial_wall / cold_wall
    assert cold_speedup > 1.5, (
        f"4 workers must beat serial by >1.5x on a stall-bound study, "
        f"got {cold_speedup:.2f}x ({serial_wall:.3f}s -> {cold_wall:.3f}s)"
    )
    warm_speedup = cold_wall / warm_wall
    assert warm_speedup > 5, (
        f"the warm memoized re-run must beat the cold parallel run by >5x, "
        f"got {warm_speedup:.1f}x ({cold_wall:.3f}s -> {warm_wall:.3f}s)"
    )

    benchmark.pedantic(
        _run, args=(stalled,),
        kwargs={"workers": 4, "cache_dir": cache_dir},
        rounds=2, iterations=1,
    )
    benchmark.extra_info["wall_seconds"] = {
        "serial_cold": round(serial_wall, 4),
        "parallel_cold_4": round(cold_wall, 4),
        "parallel_warm_4": round(warm_wall, 4),
    }
    benchmark.extra_info["speedup"] = (
        f"cold @4 workers {cold_speedup:.2f}x over serial, "
        f"warm {warm_speedup:.1f}x over cold ({len(reference.runs)} nodes, "
        f"{STALL_SECONDS * 1000:.0f} ms stall each)"
    )
    benchmark.extra_info["equality"] = (
        "payloads and digests bit-identical across serial, 4-worker cold, "
        "and fully-memoized warm runs"
    )
