"""Extension bench -- availability under each recovery technique.

Quantifies the paper's conclusion as an availability statement: because
generic recovery survives only the transient 5-14%, all techniques
deliver nearly the same availability -- the unsurvivable fault majority
sets the budget.  Uses common random numbers so technique differences
are not sampling noise.
"""

import pytest

from repro.recovery import (
    CheckpointRollback,
    ProcessPairs,
    RestartFresh,
    replay_study,
    simulate_availability,
)


@pytest.mark.parametrize(
    "factory",
    [ProcessPairs, CheckpointRollback, RestartFresh],
    ids=lambda factory: factory.name,
)
def test_bench_availability(benchmark, study, factory):
    report = replay_study(study, factory)

    result = benchmark(simulate_availability, report, seed=7)

    assert 0.9 <= result.availability < 1.0
    assert result.automatic_recoveries + result.manual_repairs == result.fault_arrivals
    # The dominating term: operator pages outnumber automatic recoveries
    # for every technique, generic or not.
    assert result.manual_repairs > result.automatic_recoveries

    benchmark.extra_info["technique"] = result.technique
    benchmark.extra_info["availability"] = f"{result.availability:.4%}"
    benchmark.extra_info["auto_vs_manual"] = (
        f"{result.automatic_recoveries} auto / {result.manual_repairs} manual "
        f"of {result.fault_arrivals} faults"
    )


def test_bench_availability_spread_is_tiny(benchmark, study):
    """The availability gap across techniques is a fraction of a percent."""

    def spread():
        results = [
            simulate_availability(replay_study(study, factory), seed=7)
            for factory in (ProcessPairs, CheckpointRollback, RestartFresh)
        ]
        values = [result.availability for result in results]
        return max(values) - min(values)

    gap = benchmark(spread)
    assert 0.0 < gap < 0.01
    benchmark.extra_info["availability_spread"] = f"{gap:.4%}"
