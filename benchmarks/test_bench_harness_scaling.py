"""Harness scaling: full-study replay wall time at 1/2/4 workers.

Real fault-injection campaigns are dominated by per-replay stalls
(process spawn, I/O, timeouts) rather than Python compute -- ZOFI-style
injection runs scale near-linearly with workers because every unit
mostly *waits*.  The miniature study replays in microseconds, so this
benchmark reintroduces that regime: every work unit carries a fixed
simulated stall, and the harness must convert 4 workers into > 1.5x
wall-time speedup while producing verdicts bit-identical to the serial
baseline.
"""

import time

from repro.harness import ReplayContext, build_replay_units, outcome_from_result, run_campaign
from repro.harness.campaigns import replay_runner
from repro.recovery import CheckpointRollback, replay_study
from repro.rng import DEFAULT_SEED

#: Simulated per-replay stall (process spawn / I/O) in seconds.
STALL_SECONDS = 0.008

#: Timing repetitions per worker count (min is reported).
REPETITIONS = 3


def stalled_runner(unit, context):
    """The real replay runner behind a fixed per-unit stall.

    Module-level so forked pool workers resolve it by reference.
    """
    time.sleep(STALL_SECONDS)
    return replay_runner(unit, context)


def _run_stalled_campaign(study, workers):
    faults = study.all_faults()
    units = build_replay_units(faults, "checkpoint-rollback", DEFAULT_SEED)
    context = ReplayContext(
        faults={fault.fault_id: fault for fault in faults},
        technique_for=lambda unit: CheckpointRollback(),
    )
    return run_campaign(units, stalled_runner, context=context, workers=workers)


def test_bench_harness_scaling(benchmark, study):
    baseline = replay_study(study, CheckpointRollback)

    wall = {}
    outcomes = {}
    for workers in (1, 2, 4):
        best = float("inf")
        for _ in range(REPETITIONS):
            started = time.perf_counter()
            campaign = _run_stalled_campaign(study, workers)
            best = min(best, time.perf_counter() - started)
        wall[workers] = best
        outcomes[workers] = tuple(
            outcome_from_result(result) for result in campaign.results
        )

    # Verdict equality: the parallel campaign is the same experiment.
    for workers, replayed in outcomes.items():
        assert replayed == baseline.outcomes, f"verdict drift at workers={workers}"

    speedup_2 = wall[1] / wall[2]
    speedup_4 = wall[1] / wall[4]
    assert speedup_4 > 1.5, (
        f"4 workers must beat serial by >1.5x on a stall-bound campaign, "
        f"got {speedup_4:.2f}x ({wall[1]:.3f}s -> {wall[4]:.3f}s)"
    )

    benchmark.pedantic(
        _run_stalled_campaign, args=(study, 4), rounds=2, iterations=1
    )
    benchmark.extra_info["wall_seconds"] = {
        str(workers): round(seconds, 4) for workers, seconds in wall.items()
    }
    benchmark.extra_info["speedup"] = (
        f"2 workers {speedup_2:.2f}x, 4 workers {speedup_4:.2f}x "
        f"over serial ({len(baseline.outcomes)} units, "
        f"{STALL_SECONDS * 1000:.0f} ms stall each)"
    )
    benchmark.extra_info["determinism"] = (
        "verdicts bit-identical to serial replay_study at 1/2/4 workers"
    )
