"""A2 supplement -- the error-latency mechanism behind Lee & Iyer's 82%.

Section 7 attributes the biggest slice of Tandem's process-pair
recoveries to the backup's checkpoint *predating* the state corruption.
The sweep reproduces the mechanism: fresh checkpoints re-create the
failure; stale checkpoints "recover" it.  Under field-style uniform
checkpoint ages, a leakier system scores a *higher* recovery rate.
"""

from repro.recovery.error_latency import (
    LatencyExperiment,
    recovery_rate_with_random_latency,
    sweep_checkpoint_age,
)


def test_bench_error_latency_sweep(benchmark):
    experiment = LatencyExperiment(leak_limit=100, task_operations=40)

    outcomes = benchmark(sweep_checkpoint_age, experiment)

    flags = [outcome.survived for outcome in outcomes]
    assert not flags[0]          # truly generic (fresh) checkpoint fails
    assert flags[-1]             # maximally stale checkpoint survives
    assert flags == sorted(flags)  # monotone in staleness

    rate_tight = recovery_rate_with_random_latency(
        LatencyExperiment(leak_limit=50, task_operations=40)
    )
    rate_loose = recovery_rate_with_random_latency(
        LatencyExperiment(leak_limit=400, task_operations=40)
    )
    assert rate_loose > rate_tight

    benchmark.extra_info["paper"] = (
        "Lee & Iyer recoveries owed to backup state divergence (82% -> 29%)"
    )
    benchmark.extra_info["survival_by_age"] = {
        outcome.checkpoint_age: outcome.survived for outcome in outcomes
    }
    benchmark.extra_info["random_latency_rates"] = {
        "tight (limit=50)": round(rate_tight, 3),
        "loose (limit=400)": round(rate_loose, 3),
    }
