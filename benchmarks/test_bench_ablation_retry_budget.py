"""Ablation -- retry budget vs. Heisenbug survival (Section 6.3).

"Retrying the same operation at a later time will usually succeed" --
this sweep quantifies "usually" over the study's timing-triggered
faults: survival rises geometrically with the retry budget and degrades
as the racy window widens.
"""

from repro.recovery import CheckpointRollback, sweep_race_window, sweep_retry_budget


def test_bench_ablation_retry_budget(benchmark, study):
    points = benchmark(
        sweep_retry_budget,
        study,
        lambda budget: CheckpointRollback(max_attempts=budget),
        budgets=(1, 2, 4, 8),
        race_window=0.5,
        replications=4,
    )

    rates = [point.survival_rate for point in points]
    assert all(later >= earlier - 1e-9 for earlier, later in zip(rates, rates[1:]))
    assert rates[-1] >= 0.9
    benchmark.extra_info["survival_by_budget"] = {
        int(point.parameter): round(point.survival_rate, 2) for point in points
    }


def test_bench_ablation_race_window(benchmark, study):
    points = benchmark(
        sweep_race_window,
        study,
        CheckpointRollback,
        windows=(0.1, 0.5, 0.9),
        replications=4,
    )

    rates = [point.survival_rate for point in points]
    assert rates[0] > rates[-1]
    benchmark.extra_info["survival_by_window"] = {
        point.parameter: round(point.survival_rate, 2) for point in points
    }
