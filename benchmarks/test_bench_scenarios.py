"""Multi-fault scenario sweeps: parallel scaling and sampling fidelity.

Two claims behind the scenario engine, measured:

1. The pair grid parallelises: on a stall-bound sweep (each point padded
   to archive-replay cost) four workers beat one by well over 1.5x, at a
   bit-identical interaction matrix -- worker count is scheduling-only
   because every seed derives from the scenario content digest.
2. Stratified sampling preserves verdicts: every pair the default budget
   samples classifies identically to the same pair under exhaustive
   enumeration, and the interaction-dense timing stratum is covered
   whole, so the sampled matrix never invents or loses an interaction.
"""

import time

from repro.scenarios import nodes as scenario_nodes
from repro.scenarios.engine import (
    CLASS_RECOVERY_DEFEATED,
    baseline_outcomes,
    classify_interaction,
    run_scenario,
)
from repro.scenarios.enumerate import (
    TIMING_LABEL,
    class_label,
    enumerate_pairs,
    fault_index,
    stratified_pair_sample,
)
from repro.scenarios.nodes import SCENARIO_TECHNIQUE
from repro.studygraph import GridSpec, NodeSpec, StudyContext, run_study
from repro.studygraph.node import KIND_ARTIFACT
from repro.studygraph.registry import Registry

#: Per-point stall modelling archive-scale replay cost (the simulated
#: replay itself is sub-millisecond).
POINT_STALL = 0.05

#: Points in the stall-bound benchmark grid.
BENCH_POINTS = 12


def _stalled_pair_point(ctx, inputs, params):
    time.sleep(POINT_STALL)
    return scenario_nodes.scenario_pair_point(ctx, inputs, params)


def _bench_registry(study):
    """The scenario subgraph with stall-padded points (no corpus chain)."""
    labels = scenario_nodes.scenario_pair_labels(study)[:BENCH_POINTS]
    registry = Registry()
    registry.register(
        NodeSpec.build(
            scenario_nodes.BASELINE_NODE,
            scenario_nodes.scenario_baseline,
            params={"technique": SCENARIO_TECHNIQUE},
            kind=KIND_ARTIFACT,
        )
    )
    grid = GridSpec.build(
        scenario_nodes.PAIRS_FAMILY,
        _stalled_pair_point,
        axes={"pair": tuple(labels)},
        deps=(scenario_nodes.BASELINE_NODE,),
        params={
            "technique": SCENARIO_TECHNIQUE,
            "shape": scenario_nodes.SCENARIO_SHAPE,
            "window": 0.25,
        },
        kind=KIND_ARTIFACT,
    )
    registry.register_grid(
        grid,
        aggregate=NodeSpec.build(
            scenario_nodes.PAIRS_FAMILY,
            scenario_nodes.scenario_pair_matrix,
            deps=tuple(grid.point_names()),
            params={"technique": SCENARIO_TECHNIQUE, "budget": len(labels)},
        ),
    )
    return registry


def _run_sweep(registry, workers):
    context = StudyContext.default(workers=workers)
    started = time.perf_counter()
    result = run_study(
        context,
        registry=registry,
        outputs=[scenario_nodes.PAIRS_FAMILY],
    )
    return result, time.perf_counter() - started


def test_bench_scenario_grid_parallel_scaling(benchmark, study):
    registry = _bench_registry(study)
    serial, serial_wall = _run_sweep(registry, 1)
    parallel, parallel_wall = _run_sweep(registry, 4)

    # Bit-identical matrices first: worker count must never move a verdict.
    assert parallel.outputs == serial.outputs
    assert {name: run.digest for name, run in parallel.runs.items()} == {
        name: run.digest for name, run in serial.runs.items()
    }
    matrix = parallel.outputs[scenario_nodes.PAIRS_FAMILY]
    assert sum(matrix["counts"].values()) == BENCH_POINTS

    speedup = serial_wall / parallel_wall
    assert speedup > 1.5, (
        f"stall-bound scenario grid speedup {speedup:.2f}x at 4 workers "
        f"(serial {serial_wall:.3f}s, parallel {parallel_wall:.3f}s)"
    )

    benchmark.pedantic(_run_sweep, args=(registry, 4), rounds=2, iterations=1)
    benchmark.extra_info["wall_seconds"] = {
        "serial_1": round(serial_wall, 4),
        "parallel_4": round(parallel_wall, 4),
    }
    benchmark.extra_info["speedup"] = (
        f"{speedup:.2f}x at 4 workers over {BENCH_POINTS} stall-bound points "
        f"({POINT_STALL * 1000:.0f}ms each), equal digests"
    )


def test_bench_sampled_matches_exhaustive(benchmark, study):
    faults = fault_index(study)
    baselines = baseline_outcomes(study, SCENARIO_TECHNIQUE)

    def _classify_all(scenarios):
        return {
            s.scenario_id: classify_interaction(
                run_scenario(s, faults, SCENARIO_TECHNIQUE), baselines
            )
            for s in scenarios
        }

    started = time.perf_counter()
    # The exhaustive reference for the interaction-dense stratum: every
    # timing x timing pair in the catalog.
    timing_pairs = [
        s
        for s in enumerate_pairs(study)
        if all(class_label(faults[fid]) == TIMING_LABEL for fid in s.fault_ids)
    ]
    exhaustive = _classify_all(timing_pairs)
    sampled = _classify_all(stratified_pair_sample(study, 40))
    wall = time.perf_counter() - started

    # The sample covers the whole timing stratum, and every sampled pair
    # classifies exactly as exhaustive enumeration classifies it.
    assert set(exhaustive) <= set(sampled)
    for scenario_id, verdict in exhaustive.items():
        assert sampled[scenario_id] == verdict
    resampled = _classify_all(stratified_pair_sample(study, 40))
    assert resampled == sampled

    defeated = [v for v in sampled.values() if v == CLASS_RECOVERY_DEFEATED]
    assert defeated, "the default budget must retain a recovery-defeated pair"

    benchmark.pedantic(
        lambda: _classify_all(stratified_pair_sample(study, 40)),
        rounds=3,
        iterations=1,
    )
    benchmark.extra_info["wall_seconds"] = {"exhaustive_plus_sampled": round(wall, 4)}
    benchmark.extra_info["agreement"] = (
        f"{len(exhaustive)}/15 exhaustive timing pairs classified identically "
        f"in the 40-pair sample; {len(defeated)} recovery-defeated"
    )
