"""Ablation -- the MySQL mining keyword set (Section 4).

The paper chose "crash", "segmentation", "race", "died" after reading a
few hundred messages.  This ablation measures the recall of keyword
subsets against the 44 curated bugs: the full set reaches 100%, every
proper subset loses bugs.
"""

import pytest

from repro.mining import mine_mysql
from repro.mining.keywords import MYSQL_STUDY_KEYWORDS

SUBSETS = [
    MYSQL_STUDY_KEYWORDS,
    ("crash",),
    ("crash", "segmentation"),
    ("crash", "segmentation", "race"),
    ("segmentation", "race", "died"),
]


@pytest.mark.parametrize("keywords", SUBSETS, ids=["+".join(s) for s in SUBSETS])
def test_bench_ablation_keywords(benchmark, mysql_archive_messages, keywords):
    result = benchmark(mine_mysql, mysql_archive_messages, keywords=keywords)

    recall = len(result.items) / 44
    if keywords == MYSQL_STUDY_KEYWORDS:
        assert recall == 1.0
    else:
        assert recall < 1.0

    benchmark.extra_info["keywords"] = list(keywords)
    benchmark.extra_info["unique_bugs_found"] = len(result.items)
    benchmark.extra_info["recall_vs_paper_44"] = round(recall, 3)
