"""M1 -- Section 4 narrowing at the paper's full archive scale.

5220 Apache problem reports -> 50 unique bugs; ~500 GNOME reports -> 45;
~44,000 MySQL mailing-list messages -> 44.  Benchmarks the whole
parse-and-narrow path per application.
"""

from repro.bugdb import debbugs, gnats, mbox
from repro.corpus.render import apache_raw_archive, gnome_raw_archive, mysql_raw_archive
from repro.mining import GNOME_STUDY_COMPONENTS, mine_apache, mine_gnome, mine_mysql


def test_bench_mining_apache_full_scale(benchmark, apache):
    archive = apache_raw_archive(apache)

    def narrow():
        return mine_apache(gnats.parse_archive(archive))

    result = benchmark(narrow)
    assert result.trace.initial == 5220
    assert result.trace.final == 50
    benchmark.extra_info["paper"] = "5220 reports -> 50 unique bugs"
    benchmark.extra_info["measured_trace"] = result.trace.as_rows()


def test_bench_mining_gnome_full_scale(benchmark, gnome):
    archive = gnome_raw_archive(gnome, study_components=GNOME_STUDY_COMPONENTS)

    def narrow():
        return mine_gnome(debbugs.parse_archive(archive))

    result = benchmark(narrow)
    assert result.trace.initial == 500
    assert result.trace.final == 45
    benchmark.extra_info["paper"] = "~500 reports -> 45 unique bugs"
    benchmark.extra_info["measured_trace"] = result.trace.as_rows()


def test_bench_mining_mysql_full_scale(benchmark, mysql):
    archive = mysql_raw_archive(mysql)

    def narrow():
        return mine_mysql(mbox.parse_archive(archive))

    result = benchmark(narrow)
    assert result.trace.initial >= 44000
    assert result.trace.final == 44
    benchmark.extra_info["paper"] = "~44,000 messages -> 44 unique bugs"
    benchmark.extra_info["measured_trace"] = result.trace.as_rows()
