"""M1 -- Section 4 narrowing at the paper's full archive scale.

5220 Apache problem reports -> 50 unique bugs; ~500 GNOME reports -> 45;
~44,000 MySQL mailing-list messages -> 44.  Benchmarks the whole
parse-and-narrow path per application, then the fast archive path on
top of it: parallel sharded parsing (stall-bound regime, as in the
harness scaling benchmark) and the content-addressed warm cache.  Both
fast-path variants assert traces and mined records identical to the
serial cold path -- speed never buys a different answer.
"""

import dataclasses
import time

from repro.bugdb import debbugs, gnats, mbox
from repro.bugdb.enums import Application
from repro.corpus.render import apache_raw_archive, gnome_raw_archive, mysql_raw_archive
from repro.mining import GNOME_STUDY_COMPONENTS, mine_apache, mine_gnome, mine_mysql
from repro.pipeline import (
    ParseMineCache,
    format_for,
    mine_archive_text,
    parse_archive_sharded,
)

#: Simulated per-record stall (I/O, decompression) for the parallel
#: parse benchmark, mirroring the harness scaling benchmark's regime:
#: real archive mining is dominated by waits, not Python compute, and
#: the timing container exposes a single core.
PARSE_STALL_SECONDS = 0.006

#: Records in the stall-bound parallel parse benchmark.
PARSE_STALL_RECORDS = 150

#: Timing repetitions per configuration (min is reported).
REPETITIONS = 2


def test_bench_mining_apache_full_scale(benchmark, apache):
    archive = apache_raw_archive(apache)

    def narrow():
        return mine_apache(gnats.parse_archive(archive))

    result = benchmark(narrow)
    assert result.trace.initial == 5220
    assert result.trace.final == 50
    benchmark.extra_info["paper"] = "5220 reports -> 50 unique bugs"
    benchmark.extra_info["measured_trace"] = result.trace.as_rows()


def test_bench_mining_gnome_full_scale(benchmark, gnome):
    archive = gnome_raw_archive(gnome, study_components=GNOME_STUDY_COMPONENTS)

    def narrow():
        return mine_gnome(debbugs.parse_archive(archive))

    result = benchmark(narrow)
    assert result.trace.initial == 500
    assert result.trace.final == 45
    benchmark.extra_info["paper"] = "~500 reports -> 45 unique bugs"
    benchmark.extra_info["measured_trace"] = result.trace.as_rows()


def test_bench_mining_mysql_full_scale(benchmark, mysql):
    archive = mysql_raw_archive(mysql)

    def narrow():
        return mine_mysql(mbox.parse_archive(archive))

    result = benchmark(narrow)
    assert result.trace.initial >= 44000
    assert result.trace.final == 44
    benchmark.extra_info["paper"] = "~44,000 messages -> 44 unique bugs"
    benchmark.extra_info["measured_trace"] = result.trace.as_rows()


def _stalled_parse_pr(chunk):
    """gnats.parse_pr behind a fixed per-record stall.

    Module-level so forked pool workers resolve it by reference.
    """
    time.sleep(PARSE_STALL_SECONDS)
    return gnats.parse_pr(chunk)


def test_bench_mining_parallel_parse_scaling(benchmark, apache):
    fmt = dataclasses.replace(
        format_for(Application.APACHE), parse_record=_stalled_parse_pr
    )
    archive = gnats.render_archive(
        gnats.parse_archive(apache_raw_archive(apache, total_reports=400))[
            :PARSE_STALL_RECORDS
        ]
    )
    serial_records = gnats.parse_archive(archive)
    assert len(serial_records) == PARSE_STALL_RECORDS

    wall = {}
    for workers in (1, 2, 4):
        best = float("inf")
        for _ in range(REPETITIONS):
            started = time.perf_counter()
            parsed = parse_archive_sharded(fmt, archive, workers=workers)
            best = min(best, time.perf_counter() - started)
            # Output equality: sharding can reorder completion, never
            # the record stream.
            assert parsed.records == serial_records, f"drift at workers={workers}"
        wall[workers] = best

    speedup_2 = wall[1] / wall[2]
    speedup_4 = wall[1] / wall[4]
    assert speedup_4 > 1.5, (
        f"4 workers must beat serial by >1.5x on a stall-bound parse, "
        f"got {speedup_4:.2f}x ({wall[1]:.3f}s -> {wall[4]:.3f}s)"
    )

    benchmark.pedantic(
        parse_archive_sharded,
        args=(fmt, archive),
        kwargs={"workers": 4},
        rounds=2,
        iterations=1,
    )
    benchmark.extra_info["wall_seconds"] = {
        str(workers): round(seconds, 4) for workers, seconds in wall.items()
    }
    benchmark.extra_info["speedup"] = (
        f"2 workers {speedup_2:.2f}x, 4 workers {speedup_4:.2f}x over serial "
        f"({PARSE_STALL_RECORDS} records, "
        f"{PARSE_STALL_SECONDS * 1000:.0f} ms stall each)"
    )
    benchmark.extra_info["determinism"] = (
        "record stream bit-identical to serial parse_archive at 1/2/4 workers"
    )


def test_bench_mining_mysql_warm_cache(benchmark, mysql, tmp_path):
    archive = mysql_raw_archive(mysql)
    serial = mine_mysql(mbox.parse_archive(archive))
    cache = ParseMineCache(tmp_path)

    started = time.perf_counter()
    cold = mine_archive_text(Application.MYSQL, archive, cache=cache)
    cold_wall = time.perf_counter() - started

    warm_wall = float("inf")
    for _ in range(REPETITIONS + 1):
        started = time.perf_counter()
        warm = mine_archive_text(Application.MYSQL, archive, cache=cache)
        warm_wall = min(warm_wall, time.perf_counter() - started)
        assert warm.mine_cache_hit

    # Equality first: the cache may only ever return the serial answer.
    for run in (cold, warm):
        assert run.result.items == serial.items
        assert run.result.trace.as_rows() == serial.trace.as_rows()
    assert warm.result.trace.final == 44

    speedup = cold_wall / warm_wall
    assert speedup > 5, (
        f"warm cache must beat the cold path by >5x, got {speedup:.1f}x "
        f"({cold_wall:.3f}s -> {warm_wall:.4f}s)"
    )

    benchmark.pedantic(
        mine_archive_text,
        args=(Application.MYSQL, archive),
        kwargs={"cache": cache},
        rounds=3,
        iterations=1,
    )
    benchmark.extra_info["cold_wall_seconds"] = round(cold_wall, 4)
    benchmark.extra_info["warm_wall_seconds"] = round(warm_wall, 4)
    benchmark.extra_info["speedup"] = f"{speedup:.1f}x cold -> warm"
    benchmark.extra_info["determinism"] = (
        "items and trace bit-identical to serial mine_mysql, cold and warm"
    )
