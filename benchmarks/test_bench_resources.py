"""Resource-sampling overhead: a sampled campaign must cost < 5%.

The sampler's contract mirrors the tracer's: observing a run may not
change it.  This benchmark drives a stall-bound 4-worker campaign --
the regime real campaigns live in, where workers wait on simulated
process spawns rather than the CPU -- and asserts that turning the
sampler on (dispatcher plus every forked worker, 20ms interval, samples
shipped through the trace channel) adds less than 5% wall time, while
every payload digest stays bit-identical to the unsampled run.

The sampled run must also actually produce evidence: span-attributed
samples from more than one process, and a nonzero peak-RSS gauge --
overhead under budget buys nothing if nothing was observed.
"""

import time

import pytest

from repro import obs
from repro.harness import Telemetry, WorkUnit, run_campaign
from repro.harness.pool import fork_available
from repro.obs import resources
from repro.obs.resources import proc_available
from repro.studygraph.artifact import artifact_digest

pytestmark = [
    pytest.mark.skipif(not proc_available(), reason="no /proc on this platform"),
    pytest.mark.skipif(not fork_available(), reason="no fork start method"),
]

#: Simulated per-unit stall (process spawn / IO wait) in seconds.
STALL_SECONDS = 0.05

#: Units per campaign; at 4 workers the run is ~6 stalls deep.
UNIT_COUNT = 24

WORKERS = 4

#: Sampled wall-time budget over the unsampled run.
OVERHEAD_BUDGET = 0.05

SAMPLE_INTERVAL = 0.02


def stall_runner(unit, context):
    """Module-level for fork: a stall plus a deterministic payload."""
    time.sleep(STALL_SECONDS)
    return {"fault": unit.fault_id, "value": unit.seed * 3, "squares": [
        i * i for i in range(unit.seed % 7 + 1)
    ]}


def _units():
    return [WorkUnit.build("toy", f"F-{i}", seed=i) for i in range(UNIT_COUNT)]


def _digests(campaign):
    return [artifact_digest(result) for result in campaign.results]


@pytest.fixture(autouse=True)
def _sampling_off_between_tests(monkeypatch):
    monkeypatch.delenv(resources.SAMPLE_ENV, raising=False)
    resources.configure(None)
    yield
    resources.configure(None)


def test_bench_sampling_overhead(benchmark):
    # Interleave off/on pairs so drift in machine load hits both sides.
    off_walls, on_walls = [], []
    off_campaign = on_campaign = None
    sink = None
    telemetry = None
    for _ in range(2):
        resources.configure(None)
        started = time.perf_counter()
        off_campaign = run_campaign(_units(), stall_runner, workers=WORKERS)
        off_walls.append(time.perf_counter() - started)

        resources.configure(SAMPLE_INTERVAL)
        sink = obs.MemorySink()
        telemetry = Telemetry()
        started = time.perf_counter()
        with obs.tracing(sink):
            on_campaign = run_campaign(
                _units(), stall_runner, workers=WORKERS, telemetry=telemetry
            )
        on_walls.append(time.perf_counter() - started)

    # Sampling must never change a payload: digests bit-identical.
    assert _digests(on_campaign) == _digests(off_campaign)

    off_wall = min(off_walls)
    on_wall = min(on_walls)
    overhead = on_wall / off_wall - 1.0
    assert overhead < OVERHEAD_BUDGET, (
        f"sampling must cost < {OVERHEAD_BUDGET:.0%} on a stall-bound "
        f"{WORKERS}-worker campaign, measured {overhead:.1%} "
        f"({off_wall:.3f}s -> {on_wall:.3f}s)"
    )

    # The overhead must have bought actual observation.
    samples = resources.resource_records(sink.records)
    assert samples, "sampled run emitted no resource records"
    pids = {record["pid"] for record in samples}
    assert len(pids) >= 2, f"expected dispatcher + workers, saw pids {pids}"
    attributed = [
        record for record in samples
        if record.get("span_id") or record.get("span_name")
    ]
    assert attributed, "no sample carries a span attribution"
    assert telemetry.gauge_value("resources.peak_rss_bytes") > 0

    def _sampled_run():
        resources.configure(SAMPLE_INTERVAL)
        with obs.tracing(obs.MemorySink()):
            return run_campaign(_units(), stall_runner, workers=WORKERS)

    benchmark.pedantic(_sampled_run, rounds=2, iterations=1)
    benchmark.extra_info["wall_seconds"] = {
        "unsampled": round(off_wall, 4),
        "sampled": round(on_wall, 4),
    }
    benchmark.extra_info["overhead"] = (
        f"{overhead:+.2%} with {len(samples)} samples from {len(pids)} "
        f"process(es) at {SAMPLE_INTERVAL * 1000:.0f}ms interval"
    )
