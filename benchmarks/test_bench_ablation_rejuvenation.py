"""Ablation -- rejuvenation interval vs. availability (Section 6.2).

"Apache ... can be rejuvenated by sending it a special signal ... This
technique is widely used by web administrators to reduce failures."
The sweep quantifies the administrator's scheduling problem: rejuvenate
before the leak kills the server, but not so often that planned downtime
dominates — availability has an interior optimum.
"""

from repro.recovery.rejuvenation_schedule import LeakModel, sweep_rejuvenation_interval

INTERVALS = (None, 0.5, 2.0, 8.0, 15.0, 19.0, 30.0)


def test_bench_ablation_rejuvenation_interval(benchmark, study):
    leak = LeakModel()  # 20 hours of uptime to failure

    results = benchmark(
        sweep_rejuvenation_interval,
        INTERVALS,
        leak,
        rejuvenation_downtime_minutes=10.0,
        crash_repair_hours=1.0,
    )

    availability = {interval: outcome.availability for interval, outcome in results}
    crashes = {interval: outcome.crashes for interval, outcome in results}

    # Baseline (no rejuvenation) crashes repeatedly.
    assert crashes[None] > 0
    # Any pre-failure interval prevents all crashes.
    assert crashes[15.0] == 0
    # Interior optimum: a sane interval beats both extremes.
    assert availability[15.0] > availability[None]
    assert availability[15.0] > availability[0.5]
    # Too-late rejuvenation degenerates to the baseline.
    assert crashes[30.0] == crashes[None]

    benchmark.extra_info["availability_by_interval"] = {
        str(interval): f"{value:.4f}" for interval, value in availability.items()
    }
    benchmark.extra_info["crashes_by_interval"] = {
        str(interval): count for interval, count in crashes.items()
    }
