"""Tracing overhead: a traced study run must cost < 5% over untraced.

The zero-overhead-by-default contract is structural (a disabled span is
one module-global check returning a shared no-op), but the *enabled*
path also has a budget: recording every wave, memo probe, node, and
unit span to a flushed JSONL trace must add less than 5% wall time to a
stall-bound study run -- and must never change a payload.  Coverage is
asserted here too: the trace has to attribute >= 95% of the scheduler's
wall time to named spans, or the overhead it does cost buys nothing.

As in the scheduling benchmark, every node carries a fixed simulated
stall so the benchmark measures the regime real campaigns live in, with
archives at reduced scale.
"""

import dataclasses
import functools
import time

from repro import obs
from repro.studygraph import StudyContext, default_registry, run_study
from repro.studygraph.registry import Registry

#: Simulated per-node stall (process spawn / archive I/O) in seconds.
STALL_SECONDS = 0.08

#: Reduced archive scales: the stall, not the parse, must dominate.
SCALE_OVERRIDES = {
    "parsed.apache": {"scale": 300},
    "parsed.mysql": {"scale": 800},
}

#: Enabled-tracing wall-time budget over the untraced run.
OVERHEAD_BUDGET = 0.05


def _stalled(producer, ctx, inputs, params):
    """One real producer behind a fixed stall (module-level for fork)."""
    time.sleep(STALL_SECONDS)
    return producer(ctx, inputs, params)


def _stalled_registry():
    return Registry(
        dataclasses.replace(
            node, producer=functools.partial(_stalled, node.producer)
        )
        for node in default_registry().with_overrides(SCALE_OVERRIDES).nodes()
    )


def _run(registry):
    return run_study(StudyContext.default(), registry=registry)


def test_bench_tracing_overhead(benchmark, tmp_path):
    registry = _stalled_registry()

    # Interleave untraced/traced pairs so drift in machine load hits both.
    untraced_walls, traced_walls = [], []
    trace_path = tmp_path / "bench.trace"
    untraced = traced = None
    for _ in range(2):
        started = time.perf_counter()
        untraced = _run(registry)
        untraced_walls.append(time.perf_counter() - started)

        started = time.perf_counter()
        with obs.tracing(trace_path):
            traced = _run(registry)
        traced_walls.append(time.perf_counter() - started)

    # Tracing must never change a payload.
    assert traced.outputs == untraced.outputs
    for name, run in untraced.runs.items():
        assert traced.runs[name].digest == run.digest, f"digest drift at {name}"

    untraced_wall = min(untraced_walls)
    traced_wall = min(traced_walls)
    overhead = traced_wall / untraced_wall - 1.0
    assert overhead < OVERHEAD_BUDGET, (
        f"enabled tracing must cost < {OVERHEAD_BUDGET:.0%} on a stall-bound "
        f"study run, measured {overhead:.1%} "
        f"({untraced_wall:.3f}s -> {traced_wall:.3f}s)"
    )

    # The trace the overhead paid for must actually attribute the time.
    records = obs.read_trace(trace_path)
    summary = obs.summarize_trace(records)
    assert summary.root["name"] == "study.run"
    assert summary.coverage >= 0.95, (
        f"trace attributes only {summary.coverage:.1%} of scheduler wall "
        "time to named spans (acceptance bar is 95%)"
    )

    def _traced_run():
        with obs.tracing(tmp_path / "bench-round.trace"):
            return _run(registry)

    benchmark.pedantic(_traced_run, rounds=2, iterations=1)
    benchmark.extra_info["wall_seconds"] = {
        "untraced_serial": round(untraced_wall, 4),
        "traced_serial": round(traced_wall, 4),
    }
    benchmark.extra_info["overhead"] = (
        f"{overhead:+.2%} with full span recording to flushed JSONL "
        f"({len(records)} spans, coverage {summary.coverage:.1%})"
    )
